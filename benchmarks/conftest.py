"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic datasets, times its core operation with pytest-benchmark, and
writes the rendered report to ``benchmarks/results/`` so the artefacts
survive output capturing.

Scale: ``ISOBAR_BENCH_ELEMENTS`` controls the per-dataset element count
(default 60 000 — quick; set 375 000 to match the paper's settled chunk
size, at several minutes of extra runtime).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.tables import evaluate_many
from repro.core.preferences import IsobarConfig

BENCH_ELEMENTS = int(os.environ.get("ISOBAR_BENCH_ELEMENTS", "60000"))

_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_elements() -> int:
    """Element count per dataset for this benchmark run."""
    return BENCH_ELEMENTS


@pytest.fixture(scope="session")
def bench_config() -> IsobarConfig:
    """Workflow configuration shared by all benchmarks."""
    return IsobarConfig(sample_elements=8_192)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory collecting the rendered tables and figures."""
    _RESULTS_DIR.mkdir(exist_ok=True)
    return _RESULTS_DIR


@pytest.fixture(scope="session")
def all_evaluations(bench_elements, bench_config):
    """One shared measurement pass over all 24 datasets.

    Tables II, V, VI, VII, VIII and IX all consume these evaluations;
    sharing them keeps the suite's wall-clock in check and makes the
    tables mutually consistent.
    """
    return evaluate_many(n_elements=bench_elements, config=bench_config)


def save_report(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered report and echo it to stdout."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
