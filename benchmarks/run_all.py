#!/usr/bin/env python
"""Regenerate every reproduced table, figure and ablation in one pass.

Convenience entry point around the pytest-benchmark suite::

    python benchmarks/run_all.py [--elements N]

Equivalent to ``ISOBAR_BENCH_ELEMENTS=N pytest benchmarks/
--benchmark-only`` but prints a compact progress line per experiment
and leaves all rendered artefacts in ``benchmarks/results/``.

``--checks`` skips the benchmark sweep and runs the repo's static
gates instead — the invariant linter (``isobar lint``), the docs link
checker, the docs snippet executor, an ``isobar fsck`` of a freshly
written archive (the self-healing container gate), the selector
smoke (predict-first decisions must beat the EUPA probe), and the
concurrency sanitizer smoke (``isobar sanitize --smoke`` must come
back clean, and a seeded lock inversion must turn the report dirty)::

    PYTHONPATH=src python benchmarks/run_all.py --checks
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path


# Writes a fresh streaming archive into a temp dir, fscks it (must be
# CLEAN, exit 0), then strips its footer and proves `fsck --repair`
# restores the file byte-identically.
_FSCK_CHECK = """
import os, tempfile
import numpy as np
from repro.cli import main
from repro.core.metadata import locate_footer
from repro.core.preferences import IsobarConfig
from repro.core.stream import stream_compress
from repro.datasets.synthetic import build_structured

with tempfile.TemporaryDirectory() as tmp:
    path = os.path.join(tmp, "fresh.isbr")
    values = build_structured(60_000, np.float64, 6,
                              np.random.default_rng(0))
    stream_compress(
        (values[i:i + 20_000] for i in range(0, 60_000, 20_000)),
        path, np.float64, IsobarConfig(chunk_elements=20_000),
    )
    assert main(["fsck", path]) == 0, "fresh archive must fsck clean"
    original = open(path, "rb").read()
    assert locate_footer(original).ok, "writer must emit a footer"
    with open(path, "wb") as sink:
        sink.write(original[:-7])  # tear the footer trailer off
    assert main(["fsck", path]) == 2, "footer loss must be repairable"
    assert main(["fsck", path, "--repair"]) == 0
    assert open(path, "rb").read() == original, "rebuild not identical"
print("fsck round-trip ok")
"""


# The sanitizer gate's own self-test: a seeded two-thread lock
# inversion must turn the smoke report dirty and name the cycle —
# proving the harness still catches what it exists to catch.
_SANITIZER_SELFTEST = """
from repro.devtools.sanitizer.harness import run_smoke

report = run_smoke(seed_inversion=True, stall_threshold_seconds=5.0)
assert not report.ok, "seeded inversion must fail the smoke run"
paths = {tuple(sorted(c["path"])) for c in report.lock_cycles}
assert ("seeded.alpha", "seeded.beta") in paths, report.lock_cycles
print("seeded inversion caught:", report.lock_cycles[0]["path"])
"""


def run_checks(bench_dir: Path, env: dict) -> int:
    """The static gates: linter, docs links/snippets, archive fsck."""
    repo_root = bench_dir.parent
    src = str(repo_root / "src")
    env = dict(env)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    checks = [
        ("repo invariant linter (isobar lint)",
         [sys.executable, "-m", "repro.devtools.lint"]),
        ("docs link checker",
         [sys.executable, str(bench_dir / "run_docs_linkcheck.py")]),
        ("docs snippet executor",
         [sys.executable, str(bench_dir / "run_docs_snippets.py")]),
        ("archive fsck (isobar fsck on a fresh archive)",
         [sys.executable, "-c", _FSCK_CHECK]),
        ("selector smoke (predict-first vs EUPA probe)",
         [sys.executable, str(bench_dir / "run_selector.py"), "--smoke"]),
        ("concurrency sanitizer smoke (isobar sanitize --smoke)",
         [sys.executable, str(bench_dir / "run_sanitizer.py")]),
        ("sanitizer self-test (seeded inversion must be caught)",
         [sys.executable, "-c", _SANITIZER_SELFTEST]),
    ]
    failed = []
    for label, command in checks:
        print(f"check: {label}...", flush=True)
        completed = subprocess.run(command, env=env, cwd=repo_root)
        if completed.returncode:
            failed.append(label)
    if failed:
        print(f"{len(failed)} check(s) FAILED: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"all {len(checks)} checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--elements", type=int, default=60_000,
                        help="per-dataset element count (375000 = paper "
                             "chunk scale)")
    parser.add_argument("--only", default=None,
                        help="substring filter on benchmark file names")
    parser.add_argument("--checks", action="store_true",
                        help="run the static gates (lint, docs links, "
                             "docs snippets) instead of the benchmarks")
    args = parser.parse_args()

    bench_dir = Path(__file__).parent
    env = dict(os.environ)
    env["ISOBAR_BENCH_ELEMENTS"] = str(args.elements)

    if args.checks:
        return run_checks(bench_dir, env)

    command = [
        sys.executable, "-m", "pytest", str(bench_dir),
        "--benchmark-only", "-p", "no:cacheprovider", "-q",
    ]
    if args.only:
        command.extend(["-k", args.only])
    print("service load smoke (baseline + chaos scenarios)...")
    service_smoke = subprocess.run(
        [sys.executable, str(bench_dir / "run_service_load.py"),
         "--smoke",
         "--json", str(bench_dir / "results" / "BENCH_service_smoke.json")],
        env=env,
    )
    if service_smoke.returncode:
        print("service load smoke FAILED", file=sys.stderr)
        return service_smoke.returncode

    print(f"regenerating all experiments at {args.elements} elements "
          f"per dataset...")
    completed = subprocess.run(command, env=env)
    results = bench_dir / "results"
    if results.is_dir():
        print(f"\nartefacts in {results}:")
        for path in sorted(results.glob("*.txt")):
            print(f"  {path.name}")
    return completed.returncode


if __name__ == "__main__":
    sys.exit(main())
