#!/usr/bin/env python
"""Chaos smoke: misbehaving solvers × the compress-side resilience layer.

Compresses seeded datasets while the registered codec misbehaves
(:mod:`repro.testing.chaos`) and asserts the fault-containment
contract of :mod:`repro.core.resilience`:

* compression **completes** under injected faults — no exception
  escapes, the worst case is a degraded (zlib-fallback or raw) chunk;
* the degraded set is **deterministic** and exactly matches the set of
  chunks whose solver payload the chaos trigger dooms;
* ``isobar_chunks_degraded_total`` matches the injected fault count;
* the circuit breaker opens after K *consecutive* failures and routes
  subsequent chunks straight to the fallback (with half-open probes);
* the resulting container decodes **bit-exactly** through all four
  readers — strict serial, parallel, streaming and salvage — in a
  *pristine* process (the chaos wrapper shadows the real codec name,
  so no chaos code is needed to read the output).

Usage::

    PYTHONPATH=src python benchmarks/run_chaos_smoke.py [--seed 0]

Faults are keyed on payload *content*, never call order or wall-clock,
so every run (serial or parallel) degrades the same chunks.  The same
driver backs the ``chaos``-marked pytest tests (``pytest -m chaos``).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

import numpy as np

from repro.core.parallel import ParallelIsobarCompressor
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig, Linearization
from repro.core.resilience import BreakerState, ResiliencePolicy
from repro.core.salvage import salvage_decompress
from repro.core.stream import stream_decompress
from repro.datasets.synthetic import build_structured
from repro.testing.chaos import (
    FlakyCodec,
    HangingCodec,
    chaos_codec,
    solver_payloads,
)

_CHUNK_ELEMENTS = 2048
_DEGRADATION_CAUSES = ("error", "timeout", "breaker_open")


def _build_values(seed: int, n_chunks: int = 10) -> np.ndarray:
    """A structured float64 dataset spanning ``n_chunks`` chunks."""
    rng = np.random.default_rng(seed)
    return build_structured(
        n_chunks * _CHUNK_ELEMENTS - _CHUNK_ELEMENTS // 3,
        np.dtype(np.float64), 3, rng,
    )


def _base_config(policy: ResiliencePolicy) -> IsobarConfig:
    """Pin codec and linearization so chunk payloads are predictable."""
    return IsobarConfig(
        codec="zlib",
        linearization=Linearization.ROW,
        chunk_elements=_CHUNK_ELEMENTS,
        sample_elements=1024,
        resilience=policy,
    )


def _payloads(values: np.ndarray, config: IsobarConfig) -> list[bytes]:
    """The exact byte string each chunk submits to the solver."""
    return solver_payloads(
        values,
        chunk_elements=config.chunk_elements,
        tau=config.tau,
        linearization=config.linearization,
    )


def _pick_fault_seed(payloads, make_trigger, start: int):
    """First seed (scanning from ``start``) whose content-keyed trigger
    dooms some but not all chunk payloads — deterministic for a given
    dataset, never degenerate."""
    for seed in range(start, start + 500):
        trigger = make_trigger(seed)
        doomed = {
            i for i, payload in enumerate(payloads)
            if trigger.is_doomed(payload)
        }
        if 0 < len(doomed) < len(payloads):
            return seed, doomed
    raise RuntimeError("no non-degenerate fault seed in 500 tries")


def _degraded_total(compressor) -> float:
    """Sum of ``isobar_chunks_degraded_total`` across all causes."""
    counter = compressor.metrics.get("isobar_chunks_degraded_total")
    if counter is None:
        return 0.0
    return sum(counter.value(cause=c) for c in _DEGRADATION_CAUSES)


def _check_all_readers(
    payload: bytes, values: np.ndarray, tag: str, failures: list[str]
) -> None:
    """Decode ``payload`` with every reader (pristine registry) and
    demand bit-exact equality with ``values``."""
    flat = np.asarray(values).reshape(-1)

    def _stream_read(data: bytes) -> np.ndarray:
        fd, path = tempfile.mkstemp(suffix=".isobar")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            return np.concatenate(list(stream_decompress(path)))
        finally:
            os.unlink(path)

    readers = (
        ("serial", lambda d: IsobarCompressor().decompress(d)),
        ("parallel",
         lambda d: ParallelIsobarCompressor(n_workers=2).decompress(d)),
        ("stream", _stream_read),
        ("salvage", lambda d: salvage_decompress(d, policy="skip").values),
    )
    for name, reader in readers:
        try:
            restored = np.asarray(reader(payload)).reshape(-1)
        except Exception as exc:  # noqa: BLE001 - the point of the smoke
            failures.append(
                f"{tag} reader={name}: {type(exc).__name__} escaped: {exc}"
            )
            continue
        if restored.dtype != flat.dtype or not np.array_equal(restored, flat):
            failures.append(f"{tag} reader={name}: round-trip mismatch")


def scenario_flaky(seed: int) -> list[str]:
    """Partial flakiness: doomed chunks degrade, the rest stay healthy."""
    failures: list[str] = []
    tag = f"scenario=flaky seed={seed}"
    policy = ResiliencePolicy(max_attempts=2, breaker_threshold=10_000)
    config = _base_config(policy)
    values = _build_values(seed)

    fault_seed, doomed = _pick_fault_seed(
        _payloads(values, config),
        lambda s: FlakyCodec("zlib", fail_percent=35.0, seed=s),
        seed * 1000,
    )
    flaky = FlakyCodec("zlib", fail_percent=35.0, seed=fault_seed)

    with chaos_codec(flaky):
        compressor = IsobarCompressor(config, collect_metrics=True)
        try:
            result = compressor.compress_detailed(values)
        except Exception as exc:  # noqa: BLE001
            return [f"{tag}: compression failed to complete: "
                    f"{type(exc).__name__}: {exc}"]

    degraded = {event.chunk_index for event in result.degradation.events}
    if degraded != doomed:
        failures.append(
            f"{tag}: degraded chunks {sorted(degraded)} != doomed "
            f"{sorted(doomed)} (nondeterministic or leaked fault)"
        )
    # Content-keyed faults fail the retry too: 2 attempts per doomed chunk.
    expected_retries = len(doomed) * (policy.max_attempts - 1)
    if result.degradation.retries != expected_retries:
        failures.append(
            f"{tag}: {result.degradation.retries} retries, "
            f"expected {expected_retries}"
        )
    for event in result.degradation.events:
        if event.cause != "error" or event.encoding != "zlib-fallback":
            failures.append(
                f"{tag}: chunk {event.chunk_index} degraded as "
                f"{event.cause}/{event.encoding}, expected "
                f"error/zlib-fallback"
            )
    metric = _degraded_total(compressor)
    if metric != len(doomed):
        failures.append(
            f"{tag}: isobar_chunks_degraded_total={metric}, "
            f"expected {len(doomed)}"
        )
    _check_all_readers(result.payload, values, tag, failures)
    return failures


def scenario_hang(seed: int) -> list[str]:
    """Hung solver calls: the chunk deadline fires, chunks degrade."""
    failures: list[str] = []
    tag = f"scenario=hang seed={seed}"
    policy = ResiliencePolicy(
        max_attempts=1,
        chunk_deadline_seconds=0.05,
        breaker_threshold=10_000,
    )
    config = _base_config(policy)
    values = _build_values(seed + 1)

    fault_seed, doomed = _pick_fault_seed(
        _payloads(values, config),
        lambda s: HangingCodec("zlib", hang_percent=20.0, seed=s),
        seed * 1000,
    )
    hanging = HangingCodec(
        "zlib", hang_seconds=0.4, hang_percent=20.0, seed=fault_seed
    )

    with chaos_codec(hanging):
        compressor = IsobarCompressor(config, collect_metrics=True)
        try:
            result = compressor.compress_detailed(values)
        except Exception as exc:  # noqa: BLE001
            return [f"{tag}: compression failed to complete: "
                    f"{type(exc).__name__}: {exc}"]

    degraded = {event.chunk_index for event in result.degradation.events}
    if degraded != doomed:
        failures.append(
            f"{tag}: degraded chunks {sorted(degraded)} != doomed "
            f"{sorted(doomed)}"
        )
    for event in result.degradation.events:
        if event.cause != "timeout":
            failures.append(
                f"{tag}: chunk {event.chunk_index} cause={event.cause}, "
                f"expected timeout"
            )
    metric = _degraded_total(compressor)
    if metric != len(doomed):
        failures.append(
            f"{tag}: isobar_chunks_degraded_total={metric}, "
            f"expected {len(doomed)}"
        )
    _check_all_readers(result.payload, values, tag, failures)
    return failures


def scenario_breaker(seed: int) -> list[str]:
    """Total codec outage: the breaker opens after K consecutive
    failures, short-circuits the rest, and half-open probes keep
    re-testing the (still broken) codec."""
    failures: list[str] = []
    tag = f"scenario=breaker seed={seed}"
    threshold, probe_after = 3, 2
    policy = ResiliencePolicy(
        max_attempts=1,
        breaker_threshold=threshold,
        breaker_probe_after=probe_after,
    )
    config = _base_config(policy)
    values = _build_values(seed + 2)
    n_chunks = len(_payloads(values, config))

    with chaos_codec(FlakyCodec("zlib", fail_percent=100.0, seed=seed)):
        compressor = IsobarCompressor(config, collect_metrics=True)
        try:
            result = compressor.compress_detailed(values)
        except Exception as exc:  # noqa: BLE001
            return [f"{tag}: compression failed to complete: "
                    f"{type(exc).__name__}: {exc}"]
        state = compressor.breakers.for_codec("zlib").state

    if state is not BreakerState.OPEN:
        failures.append(f"{tag}: breaker ended {state.value}, expected open")
    if result.degradation.degraded_chunks != n_chunks:
        failures.append(
            f"{tag}: {result.degradation.degraded_chunks}/{n_chunks} "
            f"chunks degraded under a total outage"
        )
    causes = [event.cause for event in result.degradation.events]
    # Chunks 0..K-1 fail through the codec; the breaker then opens and
    # alternates probe_after short-circuits with one failing probe.
    expected: list[str] = []
    while len(expected) < n_chunks:
        if len(expected) < threshold:
            expected.append("error")
        elif (len(expected) - threshold) % (probe_after + 1) < probe_after:
            expected.append("breaker_open")
        else:
            expected.append("error")  # the failed half-open probe
    if causes != expected:
        failures.append(f"{tag}: causes {causes} != expected {expected}")
    if any(
        event.cause == "breaker_open" and event.attempts != 0
        for event in result.degradation.events
    ):
        failures.append(f"{tag}: breaker-open chunk reported attempts > 0")
    _check_all_readers(result.payload, values, tag, failures)
    return failures


SCENARIOS = (
    ("flaky", scenario_flaky),
    ("hang", scenario_hang),
    ("breaker", scenario_breaker),
)


def run(seed: int = 0, *, verbose: bool = True) -> list[str]:
    """Run every scenario; return the list of assertion failures."""
    failures: list[str] = []
    for name, scenario in SCENARIOS:
        scenario_failures = scenario(seed)
        failures.extend(scenario_failures)
        if verbose:
            status = "FAIL" if scenario_failures else "ok"
            print(f"scenario {name:8s} seed={seed:<6d} {status}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed (default 0)")
    args = parser.parse_args()

    failures = run(args.seed)
    if failures:
        print(f"\n{len(failures)} containment failure(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nall {len(SCENARIOS)} chaos scenarios contained "
          f"(4 readers each, pristine decode)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
