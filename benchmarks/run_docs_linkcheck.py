#!/usr/bin/env python
"""Docs link check: every relative Markdown link must resolve on disk.

Walks every ``*.md`` file in the repository (root, ``docs/``, and any
other tracked directory), extracts inline Markdown links and image
references, and verifies that each **relative** target exists relative
to the file containing it.  External links (``http://``, ``https://``,
``mailto:``) and pure in-page anchors (``#section``) are skipped — the
check needs no network and stays deterministic.

Usage::

    python benchmarks/run_docs_linkcheck.py [--root PATH] [--verbose]

Exits non-zero and prints one line per broken link.  The same driver
backs ``tests/test_docs_links.py``, so a doc reorganisation that breaks
cross-references fails the suite, not a reader.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Inline links/images: ``[text](target)`` / ``![alt](target)``.
#: Stops at the first unescaped closing paren; titles ("...") allowed.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*(<[^>]*>|[^)\s]+)")

#: Fenced code blocks are prose-free zones; links inside them are
#: examples, not navigation.
_FENCE_RE = re.compile(r"^\s*(```|~~~)")

#: Directories never scanned for Markdown (generated or third-party).
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
              ".hypothesis", "results"}

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path) -> list[Path]:
    """Every ``*.md`` under ``root``, skipping generated directories."""
    files = []
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        files.append(path)
    return files


def extract_links(text: str) -> list[str]:
    """Relative link targets from one Markdown document."""
    targets = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1).strip()
            if target.startswith("<") and target.endswith(">"):
                target = target[1:-1]
            if not target or target.startswith(_EXTERNAL_PREFIXES):
                continue
            if target.startswith("#"):
                continue  # in-page anchor
            targets.append(target)
    return targets


def check_file(path: Path, root: Path) -> list[str]:
    """Broken-link descriptions for one Markdown file."""
    failures = []
    for target in extract_links(path.read_text(encoding="utf-8")):
        resolved = target.split("#", 1)[0]  # drop section anchors
        if not resolved:
            continue
        candidate = (path.parent / resolved).resolve()
        if not candidate.exists():
            failures.append(
                f"{path.relative_to(root)}: broken link -> {target}"
            )
    return failures


def run(root: Path | str = ".", verbose: bool = False) -> list[str]:
    """Check every Markdown file under ``root``; return failure lines."""
    root = Path(root).resolve()
    failures = []
    for path in iter_markdown_files(root):
        file_failures = check_file(path, root)
        failures.extend(file_failures)
        if verbose:
            n_links = len(extract_links(path.read_text(encoding="utf-8")))
            status = "FAIL" if file_failures else "ok"
            print(f"{status:4s} {path.relative_to(root)} ({n_links} links)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(Path(__file__).parent.parent),
                        help="repository root to scan (default: repo root)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    failures = run(args.root, verbose=args.verbose)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        print(f"{len(failures)} broken link(s)", file=sys.stderr)
        return 1
    print("all relative Markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
