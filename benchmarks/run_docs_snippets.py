#!/usr/bin/env python
"""Docs snippet executor: runnable examples in the docs must run.

Walks every ``*.md`` file under ``docs/`` (plus the repo-root README),
extracts fenced code blocks whose info string is ``python runnable``,
and executes each one in a fresh namespace with the working directory
set to a throwaway temp dir.  A snippet that raises fails the check —
so the examples in ``docs/api.md``, ``docs/performance.md`` and
friends can never rot silently.

Tagging contract (documented in ``docs/README.md``)::

    ```python runnable
    from repro.api import compress
    ...
    ```

Snippets must be self-contained: they import what they use, build
their own data, and only write below the current directory (the
executor chdirs into a temp dir per snippet).  Plain ``python`` fences
stay non-executed — use them for fragments and pseudo-code.

Usage::

    PYTHONPATH=src python benchmarks/run_docs_snippets.py [--root PATH]
        [--verbose] [--list]

Exits non-zero and prints one line per failing snippet.  The same
driver backs ``tests/test_docs_snippets.py``, so a broken example
fails the suite, not a reader.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path

#: Opening fence of an executable example.  The info string must be
#: exactly ``python runnable`` (the tag is the opt-in).
_OPEN_RE = re.compile(r"^\s*```python runnable\s*$")
_CLOSE_RE = re.compile(r"^\s*```\s*$")

#: Directories never scanned (mirrors run_docs_linkcheck).
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
              ".hypothesis", "results"}


@dataclass(frozen=True)
class Snippet:
    """One runnable fenced block: where it lives and what it says."""

    path: Path
    lineno: int  # 1-based line of the opening fence
    source: str

    @property
    def label(self) -> str:
        return f"{self.path}:{self.lineno}"


def iter_doc_files(root: Path) -> list[Path]:
    """The Markdown files whose snippets we execute."""
    files = []
    docs = root / "docs"
    if docs.is_dir():
        for path in sorted(docs.rglob("*.md")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            files.append(path)
    readme = root / "README.md"
    if readme.is_file():
        files.append(readme)
    return files


def extract_snippets(path: Path, root: Path) -> list[Snippet]:
    """Runnable snippets from one Markdown document, in order."""
    snippets = []
    lines = path.read_text(encoding="utf-8").splitlines()
    block: list[str] | None = None
    open_line = 0
    for lineno, line in enumerate(lines, start=1):
        if block is None:
            if _OPEN_RE.match(line):
                block = []
                open_line = lineno
        elif _CLOSE_RE.match(line):
            snippets.append(Snippet(
                path=path.relative_to(root),
                lineno=open_line,
                source="\n".join(block) + "\n",
            ))
            block = None
        else:
            block.append(line)
    if block is not None:
        raise ValueError(
            f"{path}:{open_line}: unterminated ```python runnable fence"
        )
    return snippets


def collect_snippets(root: Path | str = ".") -> list[Snippet]:
    """Every runnable snippet under ``root``, document order."""
    root = Path(root).resolve()
    snippets = []
    for path in iter_doc_files(root):
        snippets.extend(extract_snippets(path, root))
    return snippets


def run_snippet(snippet: Snippet) -> str | None:
    """Execute one snippet; return a failure description or None.

    Each snippet runs in a fresh module-like namespace with the
    working directory switched to a private temp dir, so examples may
    write files without littering the repo and cannot see each
    other's state.
    """
    cwd = os.getcwd()
    namespace = {"__name__": "__docs_snippet__"}
    try:
        with tempfile.TemporaryDirectory(prefix="isobar-docs-") as tmp:
            os.chdir(tmp)
            code = compile(snippet.source, snippet.label, "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs
    except BaseException:
        return f"{snippet.label}: snippet raised\n{traceback.format_exc()}"
    finally:
        os.chdir(cwd)
    return None


def run(root: Path | str = ".", verbose: bool = False) -> list[str]:
    """Execute every runnable snippet; return failure lines."""
    failures = []
    for snippet in collect_snippets(root):
        failure = run_snippet(snippet)
        if failure is not None:
            failures.append(failure)
        if verbose:
            status = "FAIL" if failure else "ok"
            print(f"{status:4s} {snippet.label}", flush=True)
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=str(Path(__file__).parent.parent),
                        help="repository root to scan (default: repo root)")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--list", action="store_true",
                        help="list discovered snippets without running")
    args = parser.parse_args(argv)
    if args.list:
        for snippet in collect_snippets(args.root):
            print(snippet.label)
        return 0
    failures = run(args.root, verbose=args.verbose)
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        print(f"{len(failures)} failing snippet(s)", file=sys.stderr)
        return 1
    n = len(collect_snippets(args.root))
    print(f"all {n} runnable docs snippets executed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
