#!/usr/bin/env python
"""Fuzz smoke: random containers × random faults × salvage.

Round-trips ``--n`` seeded random containers through random fault
injection (:mod:`repro.testing.faults`), then exercises every reader on
the wreckage — strict decode, both lenient salvage policies and the
validator — asserting the containment contract: **no exception other
than** :class:`repro.core.exceptions.IsobarError` **may escape**, and
whatever skip-mode salvage recovers must be bit-exact chunks of the
original data.

Usage::

    PYTHONPATH=src python benchmarks/run_fuzz_smoke.py [--n 50] [--seed 0]

Every case derives from ``(seed, case_index)`` alone, so a reported
failure reproduces exactly from its printed case line.  The same driver
backs the ``fuzz``-marked pytest tests (``pytest -m fuzz``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.exceptions import IsobarError
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.core.salvage import salvage_decompress
from repro.core.validate import validate_container
from repro.datasets.synthetic import build_structured
from repro.testing.faults import FAULT_TYPES, inject

_DTYPES = (np.float64, np.float32)


def _build_case(rng: np.random.Generator) -> tuple[bytes, np.ndarray, int]:
    """One random container: random dtype, size, noise level, chunking."""
    dtype = np.dtype(_DTYPES[int(rng.integers(0, len(_DTYPES)))])
    n_chunks = int(rng.integers(1, 5))
    chunk_elements = int(rng.integers(512, 4096))
    n_elements = n_chunks * chunk_elements - int(
        rng.integers(0, chunk_elements // 2)
    )
    n_noise = int(rng.integers(0, dtype.itemsize + 1))
    values = build_structured(n_elements, dtype, n_noise,
                              np.random.default_rng(int(rng.integers(1 << 31))))
    config = IsobarConfig(chunk_elements=chunk_elements,
                          sample_elements=min(chunk_elements, 1024))
    return IsobarCompressor(config).compress(values), values, chunk_elements


def run_case(case_seed: int) -> list[str]:
    """Run every fault × every reader for one container; return failures."""
    rng = np.random.default_rng(case_seed)
    failures: list[str] = []
    payload, values, chunk_elements = _build_case(rng)
    source_chunks = {
        values[i:i + chunk_elements].tobytes()
        for i in range(0, values.size, chunk_elements)
    }

    for fault in FAULT_TYPES:
        fault_seed = int(rng.integers(1 << 31))
        tag = f"case_seed={case_seed} fault={fault} fault_seed={fault_seed}"
        try:
            injected = inject(payload, fault, fault_seed)
        except IsobarError:
            continue  # e.g. truncate-to-0 then re-inject: fine to refuse

        for reader_name, reader in (
            ("strict", lambda d: IsobarCompressor().decompress(d)),
            ("skip", lambda d: salvage_decompress(d, policy="skip").values),
            ("zero_fill",
             lambda d: salvage_decompress(d, policy="zero_fill").values),
            ("validate", validate_container),
        ):
            try:
                result = reader(injected.data)
            except IsobarError:
                continue  # contained failure: the contract holds
            except Exception as exc:  # noqa: BLE001 - the point of the fuzz
                failures.append(
                    f"{tag} reader={reader_name}: {type(exc).__name__} "
                    f"escaped containment: {exc} ({injected.description})"
                )
                continue
            # stale_footer legitimately *appends* a copy of an existing
            # chunk, shifting every later boundary — re-slicing the
            # restored stream at chunk_elements no longer lines up with
            # the original chunk grid, so the fabrication check below
            # does not apply (the appended data is still original data).
            if reader_name == "skip" and fault != "stale_footer":
                restored = np.asarray(result).reshape(-1)
                whole, tail = divmod(restored.size, chunk_elements)
                for i in range(whole):
                    piece = restored[
                        i * chunk_elements:(i + 1) * chunk_elements
                    ].tobytes()
                    if piece not in source_chunks:
                        failures.append(
                            f"{tag}: skip-mode fabricated chunk {i} "
                            f"({injected.description})"
                        )
                if tail and restored[whole * chunk_elements:].tobytes() \
                        not in source_chunks:
                    failures.append(
                        f"{tag}: skip-mode fabricated the tail chunk "
                        f"({injected.description})"
                    )
    return failures


def run(n_cases: int, seed: int, *, verbose: bool = True) -> list[str]:
    root = np.random.default_rng(seed)
    failures: list[str] = []
    for case in range(n_cases):
        case_seed = int(root.integers(1 << 31))
        case_failures = run_case(case_seed)
        failures.extend(case_failures)
        if verbose:
            status = "FAIL" if case_failures else "ok"
            print(f"case {case + 1:3d}/{n_cases} seed={case_seed:<12d} "
                  f"{status}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--n", type=int, default=25,
                        help="number of random containers (default 25)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed (default 0)")
    args = parser.parse_args()

    failures = run(args.n, args.seed)
    if failures:
        print(f"\n{len(failures)} containment failure(s):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"\nall {args.n} cases contained "
          f"({len(FAULT_TYPES)} faults x 4 readers each)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
