#!/usr/bin/env python
"""Static-analysis report: run the repo invariant linter, emit JSON.

Wraps ``repro.devtools`` for automation: lints the source tree (and the
benchmark/test trees when asked), optionally runs mypy when it is
installed, and writes one machine-readable JSON document combining
both — the shape CI artifacts and the results directory expect.

Usage::

    python benchmarks/run_lint.py                      # text summary
    python benchmarks/run_lint.py --json report.json   # JSON ('-' for stdout)
    python benchmarks/run_lint.py --mypy               # include mypy (if present)

Exits 0 when clean, 1 when any lint finding survives suppression (or
mypy, when requested and available, reports errors).
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)

from repro.devtools import default_rules, lint_paths  # noqa: E402


def mypy_available() -> bool:
    """Whether mypy can be imported (it is optional tooling here)."""
    return importlib.util.find_spec("mypy") is not None


def run_mypy() -> dict[str, object]:
    """Run mypy with the repo config; report status + raw output."""
    proc = subprocess.run(
        [
            sys.executable, "-m", "mypy",
            "--config-file", os.path.join(REPO_ROOT, "pyproject.toml"),
        ],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )
    return {
        "ran": True,
        "ok": proc.returncode == 0,
        "output": proc.stdout.strip().splitlines(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the repo invariant linter and emit a report."
    )
    parser.add_argument(
        "paths", nargs="*",
        help="paths to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the JSON report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--mypy", action="store_true",
        help="also run mypy when it is installed (skipped otherwise)",
    )
    args = parser.parse_args(argv)

    paths = args.paths or [os.path.join(SRC, "repro")]
    report = lint_paths(paths, default_rules())
    document: dict[str, object] = {
        "lint": report.to_dict(),
        "paths": [os.path.relpath(p, REPO_ROOT) for p in paths],
    }

    ok = report.ok
    if args.mypy:
        if mypy_available():
            mypy_result = run_mypy()
            ok = ok and bool(mypy_result["ok"])
        else:
            mypy_result = {"ran": False, "ok": None,
                           "output": ["mypy not installed; skipped"]}
        document["mypy"] = mypy_result

    if args.json is not None:
        text = json.dumps(document, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote lint report -> {args.json}")
    else:
        print(report.render_text())
        if args.mypy:
            for line in document["mypy"]["output"]:  # type: ignore[index]
                print(f"mypy: {line}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
