#!/usr/bin/env python
"""Seekable-container benchmark: footer opens vs scan opens vs full decode.

Measures, across container sizes:

* **open latency** — `ContainerFile` via the index footer (O(footer)),
  the same file with its footer stripped (fallback structural scan),
  and the in-memory `ContainerReader` (load + scan);
* **random range reads** — many small `read_range` calls through a
  footer-opened `ContainerFile` against the strict decompress-then-
  slice baseline.

Canonical invocation (records the repo's benchmark artifact)::

    PYTHONPATH=src python benchmarks/run_random_access.py --json BENCH_random_access.json

Results are wall-clock measurements: run on an idle machine, and do
not run the test suite concurrently.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

from repro.core.metadata import locate_footer
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.core.random_access import ContainerFile, ContainerReader
from repro.datasets.synthetic import build_structured

_CHUNK = 50_000


def _best_of(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_case(n_elements: int, repeats: int, n_reads: int,
                  seed: int, tmp: str) -> dict:
    rng = np.random.default_rng(seed)
    values = build_structured(n_elements, np.float64, 6, rng)
    config = IsobarConfig(chunk_elements=_CHUNK, sample_elements=2048)
    payload = IsobarCompressor(config).compress(values)
    footer_start = locate_footer(payload).start

    footered = os.path.join(tmp, f"footer_{n_elements}.isbr")
    stripped = os.path.join(tmp, f"scan_{n_elements}.isbr")
    with open(footered, "wb") as sink:
        sink.write(payload)
    with open(stripped, "wb") as sink:
        sink.write(payload[:footer_start])

    def open_footer():
        with ContainerFile(footered) as reader:
            assert reader.opened_via == "footer"

    def open_scan():
        with ContainerFile(stripped) as reader:
            assert reader.opened_via == "scan"

    def open_memory():
        ContainerReader(payload)

    row = {
        "n_elements": n_elements,
        "n_chunks": -(-n_elements // _CHUNK),
        "container_bytes": len(payload),
        "footer_bytes": len(payload) - footer_start,
        "open_footer_us": round(_best_of(repeats, open_footer) * 1e6, 1),
        "open_scan_us": round(_best_of(repeats, open_scan) * 1e6, 1),
        "open_memory_us": round(_best_of(repeats, open_memory) * 1e6, 1),
    }
    row["open_speedup_vs_scan"] = round(
        row["open_scan_us"] / row["open_footer_us"], 2
    )

    # Narrow windows — the checkpoint-inspection access pattern random
    # access exists for; wide spans degenerate to a full decode.
    window = 1_000
    starts = rng.integers(0, n_elements - window, size=n_reads)
    spans = [(int(a), int(a) + window) for a in starts]

    with ContainerFile(footered) as reader:
        start = time.perf_counter()
        for a, b in spans:
            reader.read_range(a, b)
        ranged = time.perf_counter() - start

    decoder = IsobarCompressor()
    start = time.perf_counter()
    restored = decoder.decompress(payload)
    for a, b in spans:
        restored[a:b]
    full = time.perf_counter() - start

    row.update(
        n_range_reads=n_reads,
        range_reads_ms=round(ranged * 1e3, 2),
        full_decode_then_slice_ms=round(full * 1e3, 2),
        range_speedup_vs_full=round(full / ranged, 2) if ranged else None,
    )
    return row


def run(n_sizes: list[int], repeats: int, n_reads: int, seed: int) -> dict:
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for n_elements in n_sizes:
            row = _measure_case(n_elements, repeats, n_reads, seed, tmp)
            rows.append(row)
            print(
                f"n={n_elements:<10d} open footer={row['open_footer_us']}us "
                f"scan={row['open_scan_us']}us "
                f"({row['open_speedup_vs_scan']}x)  "
                f"{n_reads} range reads={row['range_reads_ms']}ms vs "
                f"full decode={row['full_decode_then_slice_ms']}ms",
                flush=True,
            )
    return {
        "benchmark": "random_access",
        "chunk_elements": _CHUNK,
        "seed": seed,
        "repeats": repeats,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "rows": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", nargs="+", type=int,
                        default=[200_000, 800_000, 3_200_000],
                        help="container sizes in elements")
    parser.add_argument("--repeats", type=int, default=7,
                        help="open-latency repeats (best-of)")
    parser.add_argument("--reads", type=int, default=64,
                        help="random range reads per container")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the result as JSON")
    args = parser.parse_args(argv)

    result = run(args.sizes, args.repeats, args.reads, args.seed)
    if args.json:
        with open(args.json, "w") as sink:
            json.dump(result, sink, indent=2)
            sink.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
