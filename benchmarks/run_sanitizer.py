#!/usr/bin/env python
"""Concurrency sanitizer smoke: the tsan-lite harness as a CI gate.

Runs the ``isobar sanitize --smoke`` scenario battery — lock-discipline
exercise, parallel compress/decompress round-trip, process-pool
shared-memory round-trip, and a live service request — under the
runtime probes (lock-order graph, resource leak tracker, event-loop
stall probe) and writes the probe report as a JSON artefact::

    PYTHONPATH=src python benchmarks/run_sanitizer.py \\
        [--json benchmarks/results/BENCH_sanitizer.json] [--seed-inversion]

Exit status is the report verdict: 0 when every probe comes back clean,
1 on any lock-order cycle, leaked resource, loop stall or scenario
error.  ``--seed-inversion`` plants a deliberate two-thread lock
inversion and therefore must exit 1 — that mode is the gate's own
self-test, proving the harness still catches what it exists to catch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.devtools.sanitizer.harness import run_smoke


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--json",
        default=str(Path(__file__).parent / "results"
                    / "BENCH_sanitizer.json"),
        help="where to write the probe report artefact",
    )
    parser.add_argument(
        "--seed-inversion", action="store_true",
        help="plant a deliberate lock inversion (self-test: must exit 1)",
    )
    parser.add_argument(
        "--stall-threshold-ms", type=float, default=1000.0,
        help="loop-stall threshold for the service scenario",
    )
    args = parser.parse_args()

    report = run_smoke(
        seed_inversion=args.seed_inversion,
        stall_threshold_seconds=args.stall_threshold_ms / 1000.0,
    )

    artefact = Path(args.json)
    artefact.parent.mkdir(parents=True, exist_ok=True)
    artefact.write_text(json.dumps(report.to_dict(), indent=2) + "\n")

    print(report.render_text())
    print(f"\nreport written to {artefact}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
