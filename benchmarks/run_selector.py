#!/usr/bin/env python
"""Selector benchmark: predict-first decisions vs the EUPA timing probe.

For every dataset in the registry, measures three decision paths on
identical inputs and an identical candidate space:

* **probe** — ``EupaSelector.select``: the paper's oracle, which times
  every (codec, linearization) candidate on the sample;
* **predict** — ``LearnedSelector.select`` after warm-up: the online
  regressor decides from content features without any timing;
* **cached** — ``CachedSelector.select`` on a warm cache: the decision
  replays from the LRU + TTL map.

and the **ratio regret** of the learned choice against the probed
oracle: ``(best_measured_ratio - chosen_measured_ratio) / best``.

Acceptance gate (see ISSUE/ROADMAP): predict- and cache-path decision
latency >= 5x below the probe, mean regret <= 5 %.

Canonical invocation (records the repo's benchmark artifact)::

    PYTHONPATH=src python benchmarks/run_selector.py --json BENCH_selector.json

``--smoke`` runs three datasets at reduced size for the checks gate.
Results are wall-clock measurements: run on an idle machine, and do
not run the test suite concurrently.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.core.preferences import IsobarConfig
from repro.core.selector import EupaSelector
from repro.core.selector_learned import (
    CachedSelector,
    LearnedSelector,
    OnlineRatioModel,
    SelectorDecisionCache,
)
from repro.datasets import dataset_names, generate_dataset

_SMOKE_DATASETS = ("gts_phi_l", "msg_bt", "obs_error")


def _best_of(repeats: int, fn) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _measure_dataset(
    name: str, n_elements: int, repeats: int, seed: int, config: IsobarConfig
) -> dict:
    values = generate_dataset(name, n_elements=n_elements, seed=seed)

    # Fresh model and cache per dataset: the benchmark reports cold
    # warm-up behaviour, not whatever earlier datasets taught the
    # process-wide singletons.
    model = OnlineRatioModel()
    learned = LearnedSelector(config, model=model)
    cache = SelectorDecisionCache()
    cached = CachedSelector(config, cache=cache, inner=learned)

    probe_seconds, oracle = _best_of(
        repeats, lambda: EupaSelector(config).select(values)
    )
    measured = {
        (c.codec_name, c.linearization): c.ratio for c in oracle.candidates
    }

    # Warm-up: probes on the same seeded sample train the model until
    # the predict path engages (2 observations suffice by default, the
    # cap only guards against a pathological residual).
    warmups = 0
    while warmups < 6:
        decision = learned.select(values)
        warmups += 1
        if decision.origin == "predicted":
            break

    predict_seconds, predicted = _best_of(
        repeats, lambda: learned.select(values)
    )
    cached.select(values)  # populate the cache
    cached_seconds, replayed = _best_of(
        repeats, lambda: cached.select(values)
    )

    chosen = measured.get((predicted.codec_name, predicted.linearization))
    best = max(measured.values()) if measured else None
    regret = (
        max(0.0, (best - chosen) / best)
        if chosen is not None and best else None
    )

    row = {
        "dataset": name,
        "n_elements": n_elements,
        "warmup_probes": warmups,
        "probe_origin": oracle.origin,
        "predict_origin": predicted.origin,
        "cached_origin": replayed.origin,
        "probe_choice": f"{oracle.codec_name}+{oracle.linearization.value}",
        "predict_choice": (
            f"{predicted.codec_name}+{predicted.linearization.value}"
        ),
        "probe_ms": round(probe_seconds * 1e3, 3),
        "predict_ms": round(predict_seconds * 1e3, 3),
        "cached_ms": round(cached_seconds * 1e3, 3),
        "ratio_regret": round(regret, 5) if regret is not None else None,
    }
    row["predict_speedup"] = (
        round(probe_seconds / predict_seconds, 2) if predict_seconds else None
    )
    row["cached_speedup"] = (
        round(probe_seconds / cached_seconds, 2) if cached_seconds else None
    )
    return row


def run(names: tuple[str, ...], n_elements: int, repeats: int,
        seed: int) -> dict:
    config = IsobarConfig(selector_seed=seed)
    rows = []
    for name in names:
        row = _measure_dataset(name, n_elements, repeats, seed, config)
        rows.append(row)
        print(
            f"{name:<14s} probe={row['probe_ms']:>8.3f}ms "
            f"predict={row['predict_ms']:>7.3f}ms "
            f"({row['predict_speedup']}x) "
            f"cached={row['cached_ms']:>7.3f}ms "
            f"({row['cached_speedup']}x)  "
            f"regret={row['ratio_regret']}  "
            f"[{row['probe_choice']} vs {row['predict_choice']}]",
            flush=True,
        )

    regrets = [r["ratio_regret"] for r in rows if r["ratio_regret"] is not None]
    predicted = [r for r in rows if r["predict_origin"] == "predicted"]
    summary = {
        "datasets": len(rows),
        "predicted_path_engaged": len(predicted),
        "mean_ratio_regret": (
            round(sum(regrets) / len(regrets), 5) if regrets else None
        ),
        "max_ratio_regret": round(max(regrets), 5) if regrets else None,
        "mean_predict_speedup": round(
            sum(r["predict_speedup"] for r in rows) / len(rows), 2
        ),
        "mean_cached_speedup": round(
            sum(r["cached_speedup"] for r in rows) / len(rows), 2
        ),
        "min_predict_speedup": min(r["predict_speedup"] for r in rows),
        "min_cached_speedup": min(r["cached_speedup"] for r in rows),
    }
    return {
        "benchmark": "selector",
        "seed": seed,
        "repeats": repeats,
        "n_elements": n_elements,
        "sample_elements": config.sample_elements,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "rows": rows,
        "summary": summary,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--elements", type=int, default=200_000,
                        help="elements per dataset")
    parser.add_argument("--repeats", type=int, default=5,
                        help="latency repeats (best-of)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="three datasets at reduced size (checks gate)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the result as JSON")
    args = parser.parse_args(argv)

    names = _SMOKE_DATASETS if args.smoke else dataset_names()
    elements = min(args.elements, 60_000) if args.smoke else args.elements
    repeats = min(args.repeats, 3) if args.smoke else args.repeats
    result = run(names, elements, repeats, args.seed)

    summary = result["summary"]
    print(
        f"mean regret={summary['mean_ratio_regret']} "
        f"mean predict speedup={summary['mean_predict_speedup']}x "
        f"mean cached speedup={summary['mean_cached_speedup']}x"
    )
    failures = []
    if summary["predicted_path_engaged"] != summary["datasets"]:
        failures.append(
            "predict path failed to engage on "
            f"{summary['datasets'] - summary['predicted_path_engaged']} "
            "dataset(s)"
        )
    if summary["mean_ratio_regret"] is None or (
        summary["mean_ratio_regret"] > 0.05
    ):
        failures.append(
            f"mean ratio regret {summary['mean_ratio_regret']} above 5%"
        )
    if not args.smoke and summary["mean_predict_speedup"] < 5.0:
        failures.append(
            f"mean predict speedup {summary['mean_predict_speedup']}x "
            "below the 5x gate"
        )
    if not args.smoke and summary["mean_cached_speedup"] < 5.0:
        failures.append(
            f"mean cached speedup {summary['mean_cached_speedup']}x "
            "below the 5x gate"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)

    if args.json:
        with open(args.json, "w") as sink:
            json.dump(result, sink, indent=2)
            sink.write("\n")
        print(f"wrote {args.json}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
