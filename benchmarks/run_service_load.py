#!/usr/bin/env python
"""Load the compression service, with and without injected chaos.

Stands a real :class:`~repro.service.app.IsobarService` up on a
background thread, fires concurrent compress / decompress / salvage
traffic at it from worker threads, and reports what the resilience
machinery did about it::

    PYTHONPATH=src python benchmarks/run_service_load.py \
        --json BENCH_service.json

Two scenarios run by default:

* **baseline** — no faults.  The acceptance bar: every request
  answers 200/206, zero 5xx, zero sheds.
* **chaos** — wire-level faults (delays, mid-body stalls, truncated
  responses) *and* a flaky solver shadowing ``zlib``, against a
  deliberately small admission queue.  The bar changes shape: every
  request must still **terminate** with a documented status — 200
  (possibly degraded), 429 shed, 503, 504, or a detected transport
  failure (bucketed as the synthetic status 599) — and the report
  must account for sheds, degraded responses and injected faults.

Each request is a single raw attempt (client retries disabled) so the
histogram reflects what the *service* did, not what retries papered
over.  Latency is per-exchange wall clock; p50/p99 over the scenario.

The ``service``-marked pytest entry and ``run_all.py`` both reuse
:func:`run` in ``--smoke`` form.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # allow running straight from a checkout
    _SRC = Path(__file__).resolve().parents[1] / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.datasets.synthetic import build_structured
from repro.service.app import ServiceConfig, ServiceThread
from repro.service.chaos import NetworkChaos, NetworkChaosPolicy
from repro.service.client import ServiceClient
from repro.service.errors import ServiceUnavailableError
from repro.testing.chaos import FlakyCodec, chaos_codec

#: Synthetic status for requests that ended in a transport failure the
#: client *detected* (refused, reset, truncated chunked body).  Keeps
#: the "every request terminates with a documented status" ledger
#: closed under chaos.
TRANSPORT_FAILURE_STATUS = 599

#: Statuses the service contract documents (``docs/service.md``).
DOCUMENTED_STATUSES = frozenset(
    {200, 206, 400, 404, 405, 408, 413, 422, 429, 500, 503, 504,
     TRANSPORT_FAILURE_STATUS}
)


def _build_bodies(seed: int, n_bodies: int, elements: int) -> list[bytes]:
    """Distinct request bodies (chaos triggers key on content)."""
    rng = np.random.default_rng(seed)
    bodies = []
    for index in range(n_bodies):
        values = build_structured(
            elements + 17 * index, np.dtype(np.float64), 3, rng
        )
        bodies.append(np.ascontiguousarray(values).tobytes())
    return bodies


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


class _Ledger:
    """Thread-safe per-scenario accounting."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.wall_seconds = 0.0
        self.latencies_ms: list[float] = []
        self.status_counts: dict[int, int] = {}
        self.degraded = 0
        self.roundtrip_failures = 0

    def record(self, status: int, latency_ms: float,
               *, degraded: bool = False, roundtrip_ok: bool = True) -> None:
        with self.lock:
            self.latencies_ms.append(latency_ms)
            self.status_counts[status] = self.status_counts.get(status, 0) + 1
            if degraded:
                self.degraded += 1
            if not roundtrip_ok:
                self.roundtrip_failures += 1


def _worker(
    worker_id: int,
    host: str,
    port: int,
    bodies: list[bytes],
    containers: list[bytes],
    n_requests: int,
    ledger: _Ledger,
) -> None:
    client = ServiceClient(
        host, port, timeout_seconds=30.0, max_retries=0,
        jitter_seed=worker_id,
    )
    no_retry: frozenset[int] = frozenset()
    for i in range(n_requests):
        kind = ("compress", "compress", "decompress", "salvage")[i % 4]
        start = time.perf_counter()
        degraded = False
        roundtrip_ok = True
        try:
            if kind == "compress":
                body = bodies[(worker_id + i) % len(bodies)]
                response = client.request(
                    "POST", "/v1/compress", body,
                    {"X-Isobar-Dtype": "float64"}, retryable=no_retry,
                )
                status = response.status
                if status == 200:
                    degraded = response.header("x-isobar-degraded") is not None
            elif kind == "decompress":
                container = containers[(worker_id + i) % len(containers)]
                response = client.request(
                    "POST", "/v1/decompress", container, retryable=no_retry,
                )
                status = response.status
                if status == 200:
                    declared = response.header("x-isobar-elements")
                    roundtrip_ok = (
                        declared is not None
                        and len(response.body) == int(declared) * 8
                    )
            else:
                container = containers[(worker_id + i) % len(containers)]
                response = client.request(
                    "POST", "/v1/salvage?policy=skip", container,
                    retryable=no_retry,
                )
                status = response.status
        except ServiceUnavailableError:
            status = TRANSPORT_FAILURE_STATUS
        ledger.record(
            status, (time.perf_counter() - start) * 1000.0,
            degraded=degraded, roundtrip_ok=roundtrip_ok,
        )


def _run_scenario(
    *,
    name: str,
    chaos: NetworkChaos | None,
    flaky_percent: float,
    workers: int,
    requests_per_worker: int,
    bodies: list[bytes],
    config: ServiceConfig,
    verbose: bool,
) -> dict:
    # Containers for the decompress/salvage traffic, produced locally
    # so scenario setup cannot be wrecked by the injected faults.
    from repro.core.pipeline import IsobarCompressor

    local = IsobarCompressor(config.isobar)
    containers = [
        local.compress(np.frombuffer(body, dtype=np.float64))
        for body in bodies
    ]

    handle = ServiceThread(config, chaos=chaos)
    host, port = handle.start()
    ledger = _Ledger()
    try:
        seed_client = ServiceClient(host, port, max_retries=2)

        def _drive() -> None:
            threads = [
                threading.Thread(
                    target=_worker,
                    args=(wid, host, port, bodies, containers,
                          requests_per_worker, ledger),
                )
                for wid in range(workers)
            ]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            ledger.wall_seconds = time.perf_counter() - started

        if flaky_percent > 0:
            # Shadow the solver for the duration of the measured run;
            # the resilience layer degrades the doomed chunks and the
            # response stays 200 with X-Isobar-Degraded.
            with chaos_codec(FlakyCodec(
                "zlib", fail_percent=flaky_percent, seed=1,
            )):
                _drive()
        else:
            _drive()

        stats = seed_client.stats()
    finally:
        handle.stop()

    total = len(ledger.latencies_ms)
    report = {
        "scenario": name,
        "requests": total,
        "workers": workers,
        "wall_seconds": round(ledger.wall_seconds, 3),
        "req_per_second": round(total / ledger.wall_seconds, 1)
        if ledger.wall_seconds else 0.0,
        "latency_ms": {
            "p50": round(_percentile(ledger.latencies_ms, 50), 2),
            "p99": round(_percentile(ledger.latencies_ms, 99), 2),
            "max": round(max(ledger.latencies_ms, default=0.0), 2),
        },
        "status_counts": {
            str(k): v for k, v in sorted(ledger.status_counts.items())
        },
        "shed": stats["shed"],
        "degraded_responses": stats["degraded_responses"],
        "degraded_seen_by_clients": ledger.degraded,
        "aborted_responses": stats["aborted_responses"],
        "roundtrip_failures": ledger.roundtrip_failures,
        "chaos_injected": chaos.counts() if chaos is not None else None,
    }
    if verbose:
        print(f"[{name}] {total} requests in {report['wall_seconds']}s "
              f"({report['req_per_second']} req/s), "
              f"p50 {report['latency_ms']['p50']}ms "
              f"p99 {report['latency_ms']['p99']}ms")
        print(f"[{name}] statuses {report['status_counts']}, "
              f"shed {report['shed']}, "
              f"degraded {report['degraded_responses']}, "
              f"aborted {report['aborted_responses']}")
    return report


def _verify(report: dict, *, chaos: bool) -> list[str]:
    """The acceptance assertions; returns human-readable violations."""
    problems = []
    statuses = {int(k) for k in report["status_counts"]}
    undocumented = statuses - DOCUMENTED_STATUSES
    if undocumented:
        problems.append(
            f"{report['scenario']}: undocumented statuses {undocumented}"
        )
    if report["roundtrip_failures"]:
        problems.append(
            f"{report['scenario']}: {report['roundtrip_failures']} "
            "decompress bodies did not match their declared element count"
        )
    if not chaos:
        bad = {s for s in statuses if s >= 500}
        if bad:
            problems.append(
                f"{report['scenario']}: 5xx with no chaos injected: "
                f"{sorted(bad)}"
            )
        if report["shed"]:
            problems.append(
                f"{report['scenario']}: shed {report['shed']} requests "
                "with no chaos and a generous queue"
            )
    return problems


def run(
    *,
    smoke: bool = False,
    seed: int = 0,
    verbose: bool = True,
) -> tuple[dict, list[str]]:
    """Both scenarios; returns ``(report, violations)``."""
    if smoke:
        workers, per_worker, n_bodies, elements = 4, 6, 4, 6_000
    else:
        workers, per_worker, n_bodies, elements = 8, 25, 8, 40_000
    bodies = _build_bodies(seed, n_bodies, elements)

    baseline_config = ServiceConfig(
        max_inflight=4, max_queue=64,
        isobar=ServiceConfig().isobar.replace(chunk_elements=2048),
    )
    baseline = _run_scenario(
        name="baseline", chaos=None, flaky_percent=0.0,
        workers=workers, requests_per_worker=per_worker,
        bodies=bodies, config=baseline_config, verbose=verbose,
    )

    chaos = NetworkChaos(NetworkChaosPolicy(
        seed=seed, delay_percent=25.0, delay_seconds=0.02,
        stall_percent=20.0, stall_seconds=0.05,
        truncate_percent=25.0,
    ))
    chaos_config = ServiceConfig(
        max_inflight=2, max_queue=3,  # small on purpose: force sheds
        isobar=ServiceConfig().isobar.replace(chunk_elements=2048),
    )
    chaotic = _run_scenario(
        name="chaos", chaos=chaos, flaky_percent=20.0,
        workers=workers, requests_per_worker=per_worker,
        bodies=bodies, config=chaos_config, verbose=verbose,
    )

    violations = _verify(baseline, chaos=False) + _verify(chaotic, chaos=True)
    report = {
        "harness": "run_service_load",
        "smoke": smoke,
        "seed": seed,
        "scenarios": {"baseline": baseline, "chaos": chaotic},
        "documented_statuses": sorted(DOCUMENTED_STATUSES),
        "violations": violations,
    }
    return report, violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast pass (used by run_all / pytest)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full report as JSON to PATH")
    args = parser.parse_args(argv)

    report, violations = run(smoke=args.smoke, seed=args.seed)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote report -> {args.json}")
    if violations:
        for problem in violations:
            print(f"VIOLATION: {problem}", file=sys.stderr)
        return 1
    print("service load: all acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
