#!/usr/bin/env python
"""Hot-path throughput sweep: dataset × codec × chunk size × execution mode.

Measures end-to-end and per-stage MB/s of the compress pipeline (and
end-to-end decompress) across

* seeded synthetic datasets with different byte fingerprints,
* solver codecs (stdlib ``zlib`` and the ``isal-zlib`` codec, which
  runs on ISA-L when python-isal is installed and on stdlib zlib
  otherwise),
* chunk sizes around the paper's 375 000-element operating point, and
* the three execution paths: serial pipeline, thread-parallel
  pipeline, and the streaming writer/reader.

Per-stage rates come from the observability layer's stage timings
(:class:`repro.observability.PipelineReport.stage_seconds`), so the
numbers decompose exactly the way ``docs/observability.md`` describes:
analyze / partition / solve / merge on the way in, decode / merge on
the way out.

Canonical invocation (records the repo's benchmark artifact)::

    PYTHONPATH=src python benchmarks/run_throughput.py --json BENCH_throughput.json

Results are wall-clock measurements: run on an idle machine, and do
not run the test suite concurrently.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

from repro.analysis import native_available, native_backend_description
from repro.codecs import isal_available
from repro.core.parallel import ParallelIsobarCompressor
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.core.stream import stream_compress, stream_decompress
from repro.datasets.synthetic import (
    build_particle_ids,
    build_repetitive,
    build_structured,
)

MEGABYTE = 1024.0 * 1024.0

#: dataset name -> builder(n_elements, rng).  Fingerprints span the
#: paper's regimes: improvable (noise columns), fully compressible
#: (repetitive), and integer identifier streams.
DATASETS = {
    "field_f64": lambda n, rng: build_structured(
        n, np.float64, n_noise_bytes=3, rng=rng
    ),
    "repetitive_f64": lambda n, rng: build_repetitive(n, np.float64, rng),
    "particles_i64": lambda n, rng: build_particle_ids(n, rng=rng),
}


def _rate(n_bytes: int, seconds: float) -> float | None:
    """MB/s, or None when the denominator is unmeasurably small."""
    if seconds <= 0.0:
        return None
    return round(n_bytes / MEGABYTE / seconds, 3)


def _stage_rates(input_bytes: int, stage_seconds: dict) -> dict:
    """Per-stage MB/s of ``input_bytes`` against each stage's seconds."""
    return {
        stage: _rate(input_bytes, seconds)
        for stage, seconds in sorted(stage_seconds.items())
    }


def _measure_serial(values, config):
    comp = IsobarCompressor(config, collect_metrics=True)
    start = time.perf_counter()
    result = comp.compress_detailed(values)
    compress_wall = time.perf_counter() - start
    compress_report = comp.last_report

    start = time.perf_counter()
    restored = comp.decompress(result.payload)
    decompress_wall = time.perf_counter() - start
    decompress_report = comp.last_report
    assert np.array_equal(restored, values), "round-trip mismatch"
    return (result, compress_wall, compress_report,
            decompress_wall, decompress_report)


def _measure_parallel(values, config, n_workers):
    comp = ParallelIsobarCompressor(
        config, n_workers=n_workers, collect_metrics=True
    )
    start = time.perf_counter()
    result = comp.compress_detailed(values)
    compress_wall = time.perf_counter() - start
    compress_report = comp.last_report

    start = time.perf_counter()
    restored = comp.decompress(result.payload)
    decompress_wall = time.perf_counter() - start
    decompress_report = comp.last_report
    assert np.array_equal(restored, values), "round-trip mismatch"
    return (result, compress_wall, compress_report,
            decompress_wall, decompress_report)


def _measure_stream(values, config, chunk_elements):
    from repro.observability import MetricsRegistry

    chunks = [
        values[i:i + chunk_elements]
        for i in range(0, values.size, chunk_elements)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.isbr")
        registry = MetricsRegistry()
        start = time.perf_counter()
        written = stream_compress(
            iter(chunks), path, values.dtype, config, metrics=registry
        )
        compress_wall = time.perf_counter() - start

        start = time.perf_counter()
        pieces = list(stream_decompress(path))
        decompress_wall = time.perf_counter() - start
        restored = np.concatenate(pieces)
    assert np.array_equal(restored, values), "round-trip mismatch"
    return written, compress_wall, decompress_wall


def _attach_parallel_speedups(rows: list) -> None:
    """Annotate each parallel row with its speedup over the serial row.

    ``parallel_speedup.compress`` / ``.decompress`` is the parallel
    row's MB/s divided by the serial row's for the same (dataset,
    codec, chunk_elements), so the ROADMAP regression check is one jq
    expression::

        jq '.rows[] | select(.mode=="parallel")
            | {dataset, codec, n_workers, parallel_speedup}'
    """
    serial = {
        (row["dataset"], row["codec"], row["chunk_elements"]): row
        for row in rows
        if row["mode"] == "serial"
    }
    for row in rows:
        if row["mode"] != "parallel":
            continue
        base = serial.get(
            (row["dataset"], row["codec"], row["chunk_elements"])
        )
        if base is None:
            continue
        speedup = {}
        for key in ("compress_mb_s", "decompress_mb_s"):
            if row.get(key) and base.get(key):
                speedup[key.replace("_mb_s", "")] = round(
                    row[key] / base[key], 3
                )
        row["parallel_speedup"] = speedup


def run_sweep(
    *,
    n_elements: int,
    codecs: list[str],
    chunk_sizes: list[int],
    modes: list[str],
    datasets: list[str],
    n_workers: int,
    seed: int,
) -> dict:
    """Run the full sweep and return the JSON-serialisable result."""
    rows = []
    for dataset in datasets:
        rng = np.random.default_rng(seed)
        values = DATASETS[dataset](n_elements, rng)
        raw_bytes = values.nbytes
        for codec in codecs:
            for chunk_elements in chunk_sizes:
                config = IsobarConfig(
                    codec=codec, chunk_elements=chunk_elements
                )
                for mode in modes:
                    row = {
                        "dataset": dataset,
                        "codec": codec,
                        "chunk_elements": chunk_elements,
                        "mode": mode,
                        # Workers actually used by THIS row, not the
                        # sweep-level flag: serial and stream rows run
                        # single-worker whatever --workers says.
                        "n_workers": n_workers if mode == "parallel" else 1,
                        "n_elements": int(values.size),
                        "raw_bytes": int(raw_bytes),
                    }
                    if mode == "serial" or mode == "parallel":
                        if mode == "serial":
                            measured = _measure_serial(values, config)
                        else:
                            measured = _measure_parallel(
                                values, config, n_workers
                            )
                        (result, c_wall, c_report,
                         d_wall, d_report) = measured
                        row.update(
                            compressed_bytes=result.compressed_bytes,
                            container_overhead_bytes=(
                                result.container_overhead_bytes
                            ),
                            ratio=round(result.ratio, 4),
                            payload_ratio=round(result.payload_ratio, 4),
                            compress_mb_s=_rate(raw_bytes, c_wall),
                            decompress_mb_s=_rate(raw_bytes, d_wall),
                            compress_stage_mb_s=_stage_rates(
                                raw_bytes, c_report.stage_seconds
                            ),
                            decompress_stage_mb_s=_stage_rates(
                                raw_bytes, d_report.stage_seconds
                            ),
                        )
                    elif mode == "stream":
                        written, c_wall, d_wall = _measure_stream(
                            values, config, chunk_elements
                        )
                        row.update(
                            compressed_bytes=int(written),
                            ratio=round(raw_bytes / written, 4),
                            compress_mb_s=_rate(raw_bytes, c_wall),
                            decompress_mb_s=_rate(raw_bytes, d_wall),
                        )
                    else:
                        raise ValueError(f"unknown mode {mode!r}")
                    rows.append(row)
                    rate = row.get("compress_mb_s")
                    print(
                        f"{dataset:16s} {codec:10s} "
                        f"chunk={chunk_elements:<8d} {mode:8s} "
                        f"ratio={row['ratio']:.3f} "
                        f"compress={rate if rate is not None else '-'} MB/s",
                        flush=True,
                    )
    _attach_parallel_speedups(rows)
    return {
        "benchmark": "throughput_sweep",
        "n_elements": n_elements,
        "seed": seed,
        "n_workers": n_workers,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "isal_available": isal_available(),
            "native_histogram": native_available(),
            "native_backend": native_backend_description(),
        },
        "rows": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--elements", type=int, default=750_000,
                        help="elements per dataset (default: 750000)")
    parser.add_argument("--codecs", nargs="+",
                        default=["zlib", "isal-zlib"],
                        help="codec registry names to sweep")
    parser.add_argument("--chunk-sizes", nargs="+", type=int,
                        default=[93_750, 375_000],
                        help="chunk sizes (elements) to sweep")
    parser.add_argument("--modes", nargs="+",
                        default=["serial", "parallel", "stream"],
                        choices=["serial", "parallel", "stream"])
    parser.add_argument("--datasets", nargs="+",
                        default=list(DATASETS),
                        choices=list(DATASETS))
    parser.add_argument("--workers", type=int, default=2,
                        help="thread count for the parallel mode")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the full sweep as JSON to PATH")
    args = parser.parse_args(argv)

    payload = run_sweep(
        n_elements=args.elements,
        codecs=args.codecs,
        chunk_sizes=args.chunk_sizes,
        modes=args.modes,
        datasets=args.datasets,
        n_workers=args.workers,
        seed=args.seed,
    )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {len(payload['rows'])} rows -> {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
