"""Ablation: automated tau selection vs the paper's fixed 1.42.

Runs the plateau-finding autotuner on several datasets and checks that
(a) its chosen tau compresses within a whisker of the fixed-1.42
configuration (the paper's calibration is recoverable automatically),
and (b) the statistical floor correctly separates the paper's chunk
size from the unreliable small-chunk regime.
"""

from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.autotune import autotune_tau, minimum_reliable_tau
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset

_DATASETS = ("gts_chkp_zion", "s3d_vmag", "msg_sweep3d", "num_comet")


def _run():
    rows = []
    for name in _DATASETS:
        values = generate_dataset(name, n_elements=BENCH_ELEMENTS)
        sweep = autotune_tau(values, sample_elements=BENCH_ELEMENTS,
                             config=IsobarConfig(sample_elements=8_192))
        auto_ratio = IsobarCompressor(
            IsobarConfig(tau=sweep.chosen_tau, sample_elements=8_192)
        ).compress_detailed(values).ratio
        fixed_ratio = IsobarCompressor(
            IsobarConfig(tau=1.42, sample_elements=8_192)
        ).compress_detailed(values).ratio
        rows.append([name, sweep.chosen_tau,
                     f"{min(sweep.plateau)}..{max(sweep.plateau)}",
                     auto_ratio, fixed_ratio])
    return rows


def test_autotune_matches_paper_calibration(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    for name, chosen, plateau, auto_ratio, fixed_ratio in rows:
        assert auto_ratio > fixed_ratio * 0.99, (
            f"{name}: autotuned tau={chosen} lost ratio vs 1.42"
        )

    # The closed-form floor: paper chunk size supports tau=1.42, small
    # chunks do not.
    assert minimum_reliable_tau(375_000) < 1.42 < minimum_reliable_tau(8_000)

    text = render_table(
        ["Dataset", "chosen tau", "plateau", "autotuned CR", "fixed-1.42 CR"],
        rows,
        title="Automated tau selection vs the paper's fixed 1.42",
    )
    save_report(results_dir, "ablation_autotune", text)
