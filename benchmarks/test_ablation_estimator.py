"""Ablation: the order-0 compressed-size estimator vs real solvers.

For every improvable dataset, compare the entropy-bound prediction of
the partitioned container size against what zlib actually achieves.
Real solvers exploit cross-byte structure the order-0 model cannot see,
so actual ratios may exceed predictions on correlated data; on our
pattern-pool data the two should track each other closely.
"""

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.analysis.estimator import estimate_partition_size
from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset, improvable_dataset_names


def _run():
    rows = []
    config = IsobarConfig(codec="zlib", sample_elements=8_192)
    for name in improvable_dataset_names():
        values = generate_dataset(name, n_elements=BENCH_ELEMENTS)
        predicted = estimate_partition_size(values).predicted_ratio
        actual = IsobarCompressor(config).compress_detailed(values).ratio
        rows.append([name, predicted, actual,
                     100.0 * (actual - predicted) / predicted])
    return rows


def test_estimator_accuracy(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    errors = [abs(row[3]) for row in rows]
    # The order-0 model ignores cross-element correlation (LZ matches
    # along the autocorrelated field), so real solvers can exceed the
    # prediction substantially on a few datasets; the bulk should still
    # track closely.
    assert max(errors) < 80.0, f"worst-case prediction error {max(errors):.1f}%"
    assert float(np.mean(errors)) < 20.0
    within_10 = sum(1 for err in errors if err < 10.0)
    assert within_10 >= len(errors) * 2 // 3

    text = render_table(
        ["Dataset", "predicted CR", "actual CR (zlib)", "error %"],
        rows,
        title="Order-0 size estimator vs achieved compression",
    )
    save_report(results_dir, "ablation_estimator", text)
