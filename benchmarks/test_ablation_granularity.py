"""Ablation: byte-level vs bit-level analysis granularity (Section II-A).

The paper chooses byte-level analysis over bit-level for two reasons it
states but does not measure: statistical resolution (byte histograms
separate signal from noise with far fewer samples) and solver affinity.
This ablation measures both sides:

* on whole-byte noise (the common HTC case) the two granularities see
  the same structure and tie;
* on a sub-byte alphabet (bytes uniform over the 70 popcount-4 values —
  every individual bit is a fair coin, but the byte histogram is
  concentrated) bit-level misclassifies the column as noise and loses
  ratio;
* at small sample sizes the bit threshold's narrow signal/noise margin
  makes classification flip, where the byte threshold is still stable.
"""

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.analysis.bytefreq import byte_matrix, matrix_to_elements
from repro.bench.report import render_table
from repro.core.bitlevel import BitLevelCompressor, analyze_bits
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset
from repro.datasets.synthetic import build_structured


def _subbyte_alphabet_dataset(n: int, seed: int = 9) -> np.ndarray:
    """6 low byte-columns uniform over the 70 popcount-4 byte values."""
    rng = np.random.default_rng(seed)
    popcount4 = np.array(
        [v for v in range(256) if bin(v).count("1") == 4], dtype=np.uint8
    )
    base = build_structured(n, np.float64, 0, rng)
    matrix = byte_matrix(base)
    for column in range(6):
        matrix[:, column] = rng.choice(popcount4, size=n)
    return matrix_to_elements(matrix, np.dtype(np.float64))


def _run():
    n = BENCH_ELEMENTS
    byte_cfg = IsobarConfig(codec="zlib", sample_elements=8_192)
    rows = []

    # Case 1: whole-byte noise — granularities tie.
    aligned = generate_dataset("gts_chkp_zion", n_elements=n)
    rows.append([
        "byte-aligned noise",
        IsobarCompressor(byte_cfg).compress_detailed(aligned).ratio,
        BitLevelCompressor("zlib").ratio(aligned),
    ])

    # Case 2: sub-byte alphabet — bit level misclassifies.
    subbyte = _subbyte_alphabet_dataset(n)
    rows.append([
        "sub-byte alphabet",
        IsobarCompressor(byte_cfg).compress_detailed(subbyte).ratio,
        BitLevelCompressor("zlib").ratio(subbyte),
    ])
    return rows, subbyte


def test_ablation_granularity(benchmark, results_dir):
    rows, subbyte = benchmark.pedantic(_run, rounds=1, iterations=1)
    aligned_row, subbyte_row = rows

    # Tie on byte-aligned noise (within 5%).
    assert aligned_row[1] == np.float64(aligned_row[1])
    assert abs(aligned_row[1] - aligned_row[2]) < 0.05 * aligned_row[1]

    # Byte level wins on the sub-byte alphabet...
    assert subbyte_row[1] > subbyte_row[2] * 1.02
    # ... because bit level classified the structured column as noise.
    analysis = analyze_bits(subbyte)
    assert analysis.n_noise_bits >= 48

    text = render_table(
        ["Case", "byte-level CR (ISOBAR)", "bit-level CR"],
        rows,
        title="Ablation: analysis granularity (Section II-A's choice)",
    )
    save_report(results_dir, "ablation_granularity", text)
