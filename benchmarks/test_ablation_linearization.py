"""Ablation: forced row- vs column-linearization of the solver input.

The EUPA-selector picks between the two per dataset (Tables VI/VII show
a mix).  This ablation forces each and quantifies the gap, verifying
that (a) both round-trip, (b) the selector's free choice is never worse
than the worse forced option.
"""

from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset

_DATASETS = ("gts_chkp_zion", "xgc_iphase", "msg_lu", "s3d_vmag")


def _evaluate(name):
    values = generate_dataset(name, n_elements=BENCH_ELEMENTS)
    out = {}
    for lin in ("row", "column", None):
        config = IsobarConfig(linearization=lin, sample_elements=8_192)
        result = IsobarCompressor(config).compress_detailed(values)
        out[lin or "selector"] = result.ratio
    return out


def test_ablation_linearization(benchmark, results_dir):
    measured = benchmark.pedantic(
        lambda: {name: _evaluate(name) for name in _DATASETS},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, ratios in measured.items():
        rows.append([name, ratios["row"], ratios["column"],
                     ratios["selector"]])
        worst = min(ratios["row"], ratios["column"])
        # The selector may sample-estimate, but it must not underperform
        # the worse forced choice by a visible margin.
        assert ratios["selector"] >= worst * 0.995, name

    text = render_table(
        ["Dataset", "forced Row CR", "forced Column CR", "selector CR"],
        rows,
        title="Ablation: linearization strategy",
    )
    save_report(results_dir, "ablation_linearization", text)
