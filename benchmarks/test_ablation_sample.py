"""Ablation: EUPA-selector training-sample size.

The selector times candidates on a sample; too small a sample risks a
bad pick, too large wastes the one-off selection budget.  This ablation
sweeps the sample size and compares the ratio of the picked candidate
against the best achievable (oracle over forced choices).
"""

from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset

_SAMPLES = (1_024, 4_096, 16_384, 49_152)


def _oracle_ratio(values):
    best = 0.0
    for codec in ("zlib", "bzip2"):
        for lin in ("row", "column"):
            config = IsobarConfig(codec=codec, linearization=lin,
                                  sample_elements=1_024)
            ratio = IsobarCompressor(config).compress_detailed(values).ratio
            best = max(best, ratio)
    return best


def _sweep(values):
    oracle = _oracle_ratio(values)
    rows = []
    for sample in _SAMPLES:
        config = IsobarConfig(sample_elements=sample)
        result = IsobarCompressor(config).compress_detailed(values)
        rows.append([sample, result.decision.codec_name,
                     result.decision.linearization.value, result.ratio,
                     100.0 * result.ratio / oracle])
    return rows, oracle


def test_ablation_sample_size(benchmark, results_dir):
    values = generate_dataset("msg_sweep3d", n_elements=BENCH_ELEMENTS)
    rows, oracle = benchmark.pedantic(_sweep, args=(values,), rounds=1,
                                      iterations=1)
    # Every sample size must land within ~10% of the oracle — the
    # candidate space is small, so even thin samples avoid disasters.
    for sample, codec, lin, ratio, pct in rows:
        assert pct > 90.0, f"sample={sample} picked a poor candidate"
    # A full-size sample essentially matches the oracle.
    assert rows[-1][4] > 97.0
    # Larger samples never do worse than the smallest.
    assert rows[-1][3] >= rows[0][3] * 0.99

    text = render_table(
        ["Sample elements", "codec", "linearization", "CR", "% of oracle"],
        rows,
        title=f"Ablation: selector sample size (msg_sweep3d, "
              f"oracle CR {oracle:.3f})",
    )
    save_report(results_dir, "ablation_sample", text)
