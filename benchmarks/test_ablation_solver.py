"""Ablation: solver choice behind the preconditioner.

ISOBAR claims solver-agnosticism: any general-purpose lossless codec
slots in.  This ablation runs the same dataset through zlib (levels 1,
6, 9), bzip2 and lzma, all preconditioned, verifying every combination
round-trips and showing the ratio/throughput trade-off surface.
"""

import time

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset

_SOLVERS = ("zlib-1", "zlib", "zlib-9", "bzip2", "bzip2-1", "lzma")


def _evaluate(values):
    rows = []
    for solver in _SOLVERS:
        config = IsobarConfig(codec=solver, sample_elements=8_192)
        compressor = IsobarCompressor(config)
        start = time.perf_counter()
        result = compressor.compress_detailed(values)
        seconds = time.perf_counter() - start
        restored = compressor.decompress(result.payload)
        assert np.array_equal(restored, values), solver
        rows.append([solver, result.ratio,
                     values.nbytes / 1e6 / seconds])
    return rows


def test_ablation_solver(benchmark, results_dir):
    values = generate_dataset("flash_velx", n_elements=BENCH_ELEMENTS)
    rows = benchmark.pedantic(_evaluate, args=(values,), rounds=1,
                              iterations=1)
    ratios = {row[0]: row[1] for row in rows}
    # Every preconditioned solver beats raw storage on this dataset.
    assert all(ratio > 1.1 for ratio in ratios.values())
    # Deflate level ordering holds under the preconditioner too.
    assert ratios["zlib-9"] >= ratios["zlib-1"]

    text = render_table(
        ["Solver", "CR", "TP_C (MB/s)"],
        rows,
        title="Ablation: solver behind the ISOBAR preconditioner "
              "(flash_velx)",
    )
    save_report(results_dir, "ablation_solver", text)
