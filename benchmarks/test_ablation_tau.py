"""Ablation: the analyzer tolerance tau.

The paper fixes tau = 1.42 after observing that the compression-ratio
improvement is stable for tau in [1.4, 1.5].  This ablation sweeps tau
and checks that plateau exists — and that leaving it hurts:

* tau too low -> uniform noise columns sneak over the threshold, the
  mask goes all-compressible, and the gain disappears into passthrough;
* tau too high -> genuine signal columns get discarded as noise and the
  ratio falls toward the raw-storage floor.
"""

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_series
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset

_TAUS = (1.05, 1.2, 1.40, 1.42, 1.45, 1.50, 32.0, 100.0)


def _sweep(values):
    ratios = {}
    for tau in _TAUS:
        config = IsobarConfig(tau=tau, sample_elements=8_192)
        result = IsobarCompressor(config).compress_detailed(values)
        ratios[tau] = result.ratio
    return ratios


def test_ablation_tau(benchmark, results_dir):
    values = generate_dataset("gts_chkp_zion", n_elements=BENCH_ELEMENTS)
    ratios = benchmark.pedantic(_sweep, args=(values,), rounds=1, iterations=1)

    plateau = [ratios[t] for t in (1.40, 1.42, 1.45, 1.50)]
    # The paper's stability claim: the plateau is flat.
    assert max(plateau) - min(plateau) < 0.01 * np.mean(plateau)

    # Too-lenient tau lets uniform noise clear the threshold: the mask
    # goes all-compressible, the chunk passes through whole, and the
    # gain collapses to the standalone-solver ratio.
    assert ratios[1.05] < min(plateau) * 0.90

    # Overly aggressive tau discards signal columns into raw storage
    # and loses ratio.
    assert ratios[100.0] < min(plateau) * 0.97

    text = render_series(
        "tau", "compression ratio",
        [(t, ratios[t]) for t in _TAUS],
        title="Ablation: analyzer tolerance tau (gts_chkp_zion)",
    )
    save_report(results_dir, "ablation_tau", text)
