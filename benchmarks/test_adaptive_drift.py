"""Adaptive re-selection under regime drift (extension experiment).

Concatenates two regimes with different byte fingerprints (6 vs 2 noise
bytes per double) and shows the adaptive compressor detecting the
transition, re-running the selector exactly once, and staying within
sampling noise of the per-regime oracle.
"""

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.adaptive import AdaptiveIsobarCompressor
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.synthetic import build_structured

_CFG = IsobarConfig(chunk_elements=30_000, sample_elements=8_192)


def _run():
    half = max(BENCH_ELEMENTS, 60_000)
    rng = np.random.default_rng(31)
    regime_a = build_structured(half, np.float64, 6, rng)
    regime_b = build_structured(half, np.float64, 2, rng)
    mixed = np.concatenate([regime_a, regime_b])

    adaptive = AdaptiveIsobarCompressor(_CFG)
    result = adaptive.compress_detailed(mixed)
    assert np.array_equal(adaptive.decompress(result.payload), mixed)

    static_size = len(IsobarCompressor(_CFG).compress(mixed))
    oracle_size = (
        len(IsobarCompressor(_CFG).compress(regime_a))
        + len(IsobarCompressor(_CFG).compress(regime_b))
    )
    rows = [
        ["static (one decision)", static_size, mixed.nbytes / static_size],
        ["adaptive", len(result.payload), mixed.nbytes / len(result.payload)],
        ["per-regime oracle", oracle_size, mixed.nbytes / oracle_size],
    ]
    return result, rows


def test_adaptive_drift(benchmark, results_dir):
    result, rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    # Exactly one re-selection at the regime boundary.
    assert result.n_decisions == 2
    masks = [segment.mask_bits for segment in result.segments]
    assert masks[0] != masks[1]

    sizes = {row[0]: row[1] for row in rows}
    # Adaptive stays within a few percent of the per-regime oracle.
    assert sizes["adaptive"] < sizes["per-regime oracle"] * 1.05

    text = render_table(
        ["Strategy", "stored bytes", "ratio"],
        rows,
        title="Adaptive re-selection on a regime-switching stream",
    )
    save_report(results_dir, "adaptive_drift", text)
