"""Multi-rank aggregate write throughput (parallel-file-system model).

Sweeps the writer count over one timestep split SPMD-style, comparing
raw writes against per-rank ISOBAR compression (decision fixed once for
the run).  On a bandwidth-starved shared file system, compression
multiplies the aggregate throughput at every rank count — the machine-
level version of the paper's motivation.
"""

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset
from repro.insitu.aggregation import MultiWriterModel, ParallelFileSystem
from repro.insitu.staging import raw_writer

_RANK_COUNTS = (1, 4, 16)
_FS_BANDWIDTH = 3.0  # MB/s total — a starved shared target


def _run():
    # Each rank's partition must stay above the analyzer's reliable
    # size at tau=1.42 (~25k elements; see autotune.minimum_reliable_tau),
    # so the timestep scales with the largest rank count.
    timestep = generate_dataset(
        "gts_phi_l",
        n_elements=max(BENCH_ELEMENTS, 30_000 * max(_RANK_COUNTS)),
    )
    model = MultiWriterModel(
        ParallelFileSystem(total_bandwidth_mb_s=_FS_BANDWIDTH)
    )
    compressor = IsobarCompressor(IsobarConfig(
        codec="zlib", linearization="column", sample_elements=1024,
    ))
    rows = []
    for n_ranks in _RANK_COUNTS:
        raw = model.sweep_ranks(timestep, raw_writer, "raw", (n_ranks,))[0]
        isobar = model.sweep_ranks(
            timestep, compressor.compress, "isobar", (n_ranks,)
        )[0]
        rows.append([
            n_ranks,
            raw.aggregate_throughput_mb_s,
            isobar.aggregate_throughput_mb_s,
            isobar.raw_bytes / isobar.stored_bytes,
        ])
        restored = compressor.decompress(compressor.compress(timestep))
        assert np.array_equal(restored, timestep)
    return rows


def test_aggregation_ranks(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    for n_ranks, raw_tp, isobar_tp, ratio in rows:
        assert ratio > 1.1, f"{n_ranks} ranks: compression gain"
        if n_ranks > 1:
            assert isobar_tp > raw_tp, (
                f"{n_ranks} ranks: ISOBAR must raise aggregate throughput "
                "on a starved file system"
            )
        else:
            # Single writer: the serial compression stage sits on the
            # critical path, so only near-parity is guaranteed here.
            assert isobar_tp > raw_tp * 0.9

    text = render_table(
        ["Ranks", "raw agg MB/s", "ISOBAR agg MB/s", "CR"],
        rows,
        title=f"Aggregate write throughput, shared FS at "
              f"{_FS_BANDWIDTH} MB/s (gts_phi_l)",
    )
    save_report(results_dir, "aggregation_ranks", text)
