"""Figure 10: compression speed-up robustness across linearizations.

Paper: the throughput advantage of ISOBAR over standalone compression
is also insensitive to the element ordering.
"""

from conftest import BENCH_ELEMENTS, save_report

from repro.bench.figures import figure10_linearization_sp

_SIDE = max(int(BENCH_ELEMENTS ** 0.5), 150)


def test_figure10_linearization_sp(benchmark, results_dir):
    figure = benchmark.pedantic(
        figure10_linearization_sp,
        kwargs={"n_side": _SIDE},
        rounds=1,
        iterations=1,
    )
    points = dict(figure.series["2-D field"])
    assert set(points) == {"original", "hilbert", "random", "morton"}

    for ordering, sp in points.items():
        assert sp > 1.0, f"{ordering}: ISOBAR lost its speed advantage"

    # Same-ballpark speed-ups across orderings (within a 4x band —
    # wall-clock noise is larger for throughput than for ratios).
    assert max(points.values()) / min(points.values()) < 4.0

    save_report(results_dir, "figure10_linearization_sp", figure.render())
