"""Figure 1: bit-position probability profiles of 4 representative datasets.

Paper: xgc_igid, gts_zeon and flash_gamc show long ~0.5 plateaus
(hard-to-compress); msg_sppm stays predictable across all 64 positions.
"""

from conftest import BENCH_ELEMENTS, save_report

from repro.bench.figures import FIGURE1_DATASETS, figure1_bit_frequencies


def test_figure1_bit_frequencies(benchmark, results_dir):
    figure = benchmark.pedantic(
        figure1_bit_frequencies,
        kwargs={"n_elements": BENCH_ELEMENTS},
        rounds=1,
        iterations=1,
    )
    assert set(figure.series) == set(FIGURE1_DATASETS)

    def noisy_fraction(name):
        points = figure.series[name]
        return sum(1 for _, p in points if p < 0.51) / len(points)

    # The three HTC datasets have substantial fair-coin regions...
    assert noisy_fraction("xgc_igid") > 0.30
    assert noisy_fraction("gts_chkp_zeon") > 0.60
    assert noisy_fraction("flash_gamc") > 0.50
    # ... and the repetitive sppm does not.
    assert noisy_fraction("msg_sppm") < 0.25

    # Leading (sign/exponent) bits are predictable in every dataset.
    for name, points in figure.series.items():
        leading = [p for x, p in points if x <= 4]
        assert min(leading) > 0.9, name

    save_report(results_dir, "figure1_bitfreq", figure.render())
