"""Figure 8: compression ratio settling with chunk size.

Paper: ratios become stable around 375 000 elements (~3 MB of doubles).
The reproduction sweeps chunk sizes over a fixed input and checks the
curve's tail is flat while the small-chunk region is visibly unsettled
(analyzer misfires and per-chunk overhead).
"""

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.bench.figures import figure8_chunk_size

_CHUNK_SIZES = (1_000, 2_500, 5_000, 15_000, 40_000, 80_000, 160_000)
_TOTAL = max(2 * BENCH_ELEMENTS, 320_000)


def test_figure8_chunk_size(benchmark, results_dir):
    figure = benchmark.pedantic(
        figure8_chunk_size,
        kwargs={
            "dataset": "gts_chkp_zion",
            "chunk_sizes": _CHUNK_SIZES,
            "n_elements": _TOTAL,
        },
        rounds=1,
        iterations=1,
    )
    points = dict(figure.series["gts_chkp_zion"])
    ratios = np.array([points[c] for c in _CHUNK_SIZES])

    # Tail is settled: the last two chunk sizes agree closely.
    assert abs(ratios[-1] - ratios[-2]) < 0.02 * ratios[-1]

    # The settled ratio is a genuine improvement over raw.
    assert ratios[-1] > 1.15

    # Small chunks deviate more from the settled value than large ones
    # (mean absolute deviation of the first three vs last three).
    settled = ratios[-1]
    small_dev = np.abs(ratios[:3] - settled).mean()
    large_dev = np.abs(ratios[-3:] - settled).mean()
    assert small_dev > large_dev

    save_report(results_dir, "figure8_chunksize", figure.render())
