"""Figure 9: dCR robustness across data linearizations.

Paper: the compression-ratio improvement stays nearly constant whether
the data arrives in original order, Hilbert order, or fully random
order (worst case still ~10%).
"""

from conftest import BENCH_ELEMENTS, save_report

from repro.bench.figures import figure9_linearization_cr

_SIDE = max(int(BENCH_ELEMENTS ** 0.5), 150)


def test_figure9_linearization_cr(benchmark, results_dir):
    figure = benchmark.pedantic(
        figure9_linearization_cr,
        kwargs={"n_side": _SIDE},
        rounds=1,
        iterations=1,
    )
    points = dict(figure.series["2-D field"])
    assert set(points) == {"original", "hilbert", "random", "morton"}

    # Positive improvement under every ordering, including the paper's
    # worst case (random).
    for ordering, delta in points.items():
        assert delta > 8.0, f"{ordering}: dCR collapsed to {delta:.2f}%"

    # Robustness: spread across orderings stays within a narrow band.
    spread = max(points.values()) - min(points.values())
    assert spread < 12.0

    save_report(results_dir, "figure9_linearization_cr", figure.render())
