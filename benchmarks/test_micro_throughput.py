"""Micro-benchmarks of the workflow's hot paths.

These are classic pytest-benchmark timings (multiple rounds) of the
individual stages the paper's throughput columns aggregate: analyzer,
partitioner, reassembly, the solvers, and the Hilbert linearizer.
"""

import numpy as np
import pytest
from conftest import BENCH_ELEMENTS

from repro.analysis.bytefreq import byte_matrix
from repro.codecs.base import get_codec
from repro.core.analyzer import analyze
from repro.core.partitioner import partition, reassemble
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset
from repro.linearization.hilbert import hilbert_order_indices


@pytest.fixture(scope="module")
def gts(bench_elements):
    return generate_dataset("gts_chkp_zion", n_elements=bench_elements)


@pytest.fixture(scope="module")
def mask(gts):
    return analyze(gts).mask


def test_analyzer_throughput(benchmark, gts):
    result = benchmark(analyze, gts)
    assert result.improvable


def test_byte_matrix_throughput(benchmark, gts):
    matrix = benchmark(byte_matrix, gts)
    assert matrix.shape == (gts.size, 8)


def test_partition_throughput(benchmark, gts, mask):
    part = benchmark(partition, gts, mask)
    assert part.compressible


def test_reassemble_throughput(benchmark, gts, mask):
    part = partition(gts, mask)
    restored = benchmark(reassemble, part, gts.dtype)
    assert np.array_equal(restored, gts)


def test_zlib_on_partitioned_bytes(benchmark, gts, mask):
    part = partition(gts, mask)
    codec = get_codec("zlib")
    compressed = benchmark(codec.compress, part.compressible)
    assert len(compressed) < len(part.compressible)


def test_zlib_on_raw_bytes(benchmark, gts):
    codec = get_codec("zlib")
    raw = gts.tobytes()
    compressed = benchmark(codec.compress, raw)
    assert len(compressed) < len(raw)


def test_isobar_end_to_end_compress(benchmark, gts):
    compressor = IsobarCompressor(IsobarConfig(sample_elements=8_192))
    payload = benchmark(compressor.compress, gts)
    assert len(payload) < gts.nbytes


def test_isobar_end_to_end_decompress(benchmark, gts):
    compressor = IsobarCompressor(IsobarConfig(sample_elements=8_192))
    payload = compressor.compress(gts)
    restored = benchmark(compressor.decompress, payload)
    assert np.array_equal(restored, gts)


def test_hilbert_order_throughput(benchmark):
    side = max(int(BENCH_ELEMENTS ** 0.5), 128)
    perm = benchmark(hilbert_order_indices, (side, side))
    assert perm.size == side * side
