"""Consolidated paper-vs-measured comparison report.

Diffs the live measurements against the paper's published numbers
(:mod:`repro.bench.paper_numbers`) and writes one combined report:

* Table V ratio columns side by side, with the NI set checked exactly;
* Table VI/VII dCR signs compared per dataset;
* Table X mean-ratio ordering;
* Section F consistency statistics.

Hard assertions cover the *shape* claims (NI set identical, dCR signs
agree, Table X ordering preserved); the report records the magnitudes
for EXPERIMENTS.md.
"""

import numpy as np
from conftest import save_report

from repro.bench.paper_numbers import (
    PAPER_TABLE5,
    PAPER_TABLE6,
    PAPER_TABLE7,
    PAPER_TABLE10_MEANS,
    compare_ratio,
)
from repro.bench.report import render_table
from repro.bench.tables import (
    table5_comparison,
    table6_speed_preference,
    table7_ratio_preference,
    table10_fpc_fpzip,
)


def _run(all_evaluations):
    t5 = table5_comparison(all_evaluations)
    t6 = table6_speed_preference(all_evaluations)
    t7 = table7_ratio_preference(all_evaluations)
    t10 = table10_fpc_fpzip(n_elements=40_000, evaluations=all_evaluations)
    return t5, t6, t7, t10


def test_paper_comparison(benchmark, all_evaluations, results_dir):
    t5, t6, t7, t10 = benchmark.pedantic(
        _run, args=(all_evaluations,), rounds=1, iterations=1
    )

    # --- Table V: the NI set must match the paper exactly -------------
    rows5 = []
    for row in t5.rows:
        name = row[0]
        paper = PAPER_TABLE5[name]
        measured_cr = row[6]
        assert (measured_cr is None) == (paper.isobar_cr_cr is None), (
            f"{name}: improvable-set disagreement with the paper"
        )
        rows5.append([
            name,
            paper.isobar_cr_cr, measured_cr,
            compare_ratio(measured_cr, paper.isobar_cr_cr),
        ])

    # --- Tables VI/VII: dCR positive wherever the paper's is ----------
    rows67 = []
    measured6 = {row[0]: row[2] for row in t6.rows}
    measured7 = {row[0]: row[2] for row in t7.rows}
    for name, paper_dcr in PAPER_TABLE6.items():
        ours = measured6.get(name)
        if ours is not None:
            assert (ours > 0) == (paper_dcr > 0), name
            rows67.append([name, "Sp", paper_dcr, ours])
    for name, paper_dcr in PAPER_TABLE7.items():
        ours = measured7.get(name)
        if ours is not None:
            assert (ours > 0) == (paper_dcr > 0), name
            rows67.append([name, "CR", paper_dcr, ours])

    # --- Table X: the ratio ordering is the paper's -------------------
    mean_row = t10.rows[-1]
    measured_means = {"isobar": mean_row[1], "fpc": mean_row[4],
                      "fpzip": mean_row[7]}
    paper_order = sorted(PAPER_TABLE10_MEANS,
                         key=PAPER_TABLE10_MEANS.get, reverse=True)
    measured_order = sorted(measured_means,
                            key=measured_means.get, reverse=True)
    assert measured_order == paper_order == ["isobar", "fpzip", "fpc"]

    rows10 = [
        [name, PAPER_TABLE10_MEANS[name], measured_means[name]]
        for name in paper_order
    ]

    text = "\n\n".join([
        render_table(["Dataset", "paper ISOBAR-CR", "measured", "delta"],
                     rows5, title="Table V ratios: paper vs measured"),
        render_table(["Dataset", "pref", "paper dCR%", "measured dCR%"],
                     rows67, title="Tables VI/VII dCR: paper vs measured"),
        render_table(["Compressor", "paper mean CR", "measured mean CR"],
                     rows10, title="Table X mean ratios: paper vs measured"),
    ])
    save_report(results_dir, "paper_comparison", text)

    # Aggregate closeness of the ratio reproduction on improvable rows.
    deltas = [
        abs(row[2] - row[1]) / row[1]
        for row in rows5 if row[1] is not None and row[2] is not None
    ]
    assert float(np.mean(deltas)) < 0.25, (
        "mean |measured-paper| ratio deviation exceeded 25%"
    )