"""Paper-scale smoke run: full 375 000-element chunks.

Most of the suite uses scaled-down inputs for speed; this benchmark
runs a handful of datasets at the paper's settled chunk size (Figure 8:
375 000 doubles = 3 MB) to confirm the defaults behave at the geometry
the paper actually used: single-chunk containers, correct analyzer
verdicts, positive dCR, bit-exact round trips.
"""

import numpy as np
from conftest import save_report

from repro.bench.harness import evaluate_dataset
from repro.bench.report import render_table
from repro.core.preferences import DEFAULT_CHUNK_ELEMENTS, IsobarConfig

_DATASETS = ("gts_chkp_zion", "flash_velx", "msg_sppm")
_N = DEFAULT_CHUNK_ELEMENTS  # 375 000


def _run():
    rows = []
    for name in _DATASETS:
        ev = evaluate_dataset(
            name,
            n_elements=_N,
            config=IsobarConfig(sample_elements=16_384),
        )
        if ev.improvable:
            delta = ev.delta_cr_vs_best(ev.isobar_speed)
            rows.append([name, ev.n_bytes / 1e6, True,
                         ev.isobar_speed.ratio, delta,
                         ev.isobar_speed.compress_mb_s])
        else:
            rows.append([name, ev.n_bytes / 1e6, False,
                         ev.best_standard_ratio().ratio, None, None])
    return rows


def test_paper_scale(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    by_name = {row[0]: row for row in rows}

    # The analyzer verdicts hold at full scale.
    assert by_name["gts_chkp_zion"][2] is True
    assert by_name["flash_velx"][2] is True
    assert by_name["msg_sppm"][2] is False

    # Positive improvement on the improvable datasets at 375k elements.
    for name in ("gts_chkp_zion", "flash_velx"):
        assert by_name[name][4] > 5.0, name

    text = render_table(
        ["Dataset", "size MB", "improvable", "CR", "dCR (%)", "TP_C MB/s"],
        rows,
        title=f"Paper-scale run ({_N} elements per dataset, one full "
              "chunk)",
    )
    save_report(results_dir, "paper_scale", text)
