"""Thread-parallel chunk compression scaling.

The bz2/zlib solvers release the GIL while compressing, so the
chunk-parallel pipeline scales with workers *to the extent the solver
dominates each chunk's cost*; the numpy analyzer holds the GIL, so an
analyzer-bound configuration (fast solver on few bytes) sees little
gain — classic Amdahl.  The benchmark uses the solver-bound bzip2
configuration, verifies the container stays byte-identical at every
worker count, and records the speed-up curve.
"""

import time

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.parallel import ParallelIsobarCompressor
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset

_WORKERS = (1, 2, 4, 8)
# bzip2 keeps the solver (which releases the GIL) the dominant cost per
# chunk; with zlib the numpy analyzer — which holds the GIL — dominates
# and threads cannot help.  See the module docstring caveat.
_CFG = IsobarConfig(codec="bzip2", chunk_elements=30_000,
                    sample_elements=8_192)


def _run():
    # Enough chunks to keep every worker busy.
    values = generate_dataset(
        "flash_velx", n_elements=max(8 * 30_000, 4 * BENCH_ELEMENTS)
    )
    start = time.perf_counter()
    serial_blob = IsobarCompressor(_CFG).compress(values)
    serial_seconds = time.perf_counter() - start

    rows = [["serial", serial_seconds, 1.0, True]]
    for workers in _WORKERS:
        compressor = ParallelIsobarCompressor(_CFG, n_workers=workers)
        start = time.perf_counter()
        blob = compressor.compress(values)
        seconds = time.perf_counter() - start
        identical = blob == serial_blob
        rows.append([f"{workers} workers", seconds,
                     serial_seconds / seconds, identical])
    restored = ParallelIsobarCompressor(_CFG, n_workers=4).decompress(
        serial_blob
    )
    assert np.array_equal(restored, values)
    return rows


def test_parallel_scaling(benchmark, results_dir):
    import os

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    # Containers must be byte-identical at every worker count.
    assert all(row[3] for row in rows)
    by_label = {row[0]: row[2] for row in rows}

    n_cpus = len(os.sched_getaffinity(0))
    if n_cpus >= 2:
        # Real hardware parallelism: four workers must pay off.
        assert by_label["4 workers"] > by_label["1 workers"] * 1.2
    else:
        # Single-core environment: threads cannot speed anything up;
        # require the parallel orchestration overhead stays bounded.
        assert by_label["4 workers"] > 0.5

    text = render_table(
        ["Configuration", "seconds", "speed-up vs serial", "identical"],
        rows,
        title=f"Parallel chunk-compression scaling (flash_velx, "
              f"{n_cpus} CPU(s) available)",
    )
    save_report(results_dir, "parallel_scaling", text)
