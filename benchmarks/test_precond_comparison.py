"""Preconditioner comparison: ISOBAR vs shuffle filters vs none.

Byte-shuffle (HDF5/Blosc) and bit-shuffle are the closest prior
techniques to ISOBAR — they also regroup same-significance bytes, but
keep the noise in the solver's input.  This benchmark quantifies the
marginal value: comparable ratios, but ISOBAR's solver only touches the
signal fraction of the stream, so its compression time is a fraction of
the shuffle pipelines'.
"""

import time

import numpy as np
from conftest import BENCH_ELEMENTS, save_report

from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig, Preference
from repro.datasets.registry import generate_dataset
from repro.preconditioners.shuffle import ShuffleCompressor

_DATASETS = ("gts_chkp_zion", "flash_velx", "s3d_vmag")


def _measure(name, compress, decompress, values):
    start = time.perf_counter()
    blob = compress(values)
    compress_seconds = time.perf_counter() - start
    restored = decompress(blob)
    width = values.dtype.itemsize
    assert np.array_equal(
        np.asarray(restored).reshape(-1).view(f"u{width}"),
        values.reshape(-1).view(f"u{width}"),
    ), name
    mb = values.nbytes / 1e6
    return values.nbytes / len(blob), mb / compress_seconds


def _run():
    rows = []
    for dataset in _DATASETS:
        values = generate_dataset(dataset, n_elements=BENCH_ELEMENTS)
        raw_zlib = ShuffleCompressor("zlib", mode="byte")  # for codec reuse
        import zlib as _z

        plain_ratio, plain_tp = _measure(
            "plain",
            lambda v: _z.compress(v.tobytes()),
            lambda b: np.frombuffer(_z.decompress(b), dtype=values.dtype),
            values,
        )
        byte_sc = ShuffleCompressor("zlib", mode="byte")
        byte_ratio, byte_tp = _measure(
            "byteshuffle", byte_sc.compress, byte_sc.decompress, values
        )
        bit_sc = ShuffleCompressor("zlib", mode="bit")
        bit_ratio, bit_tp = _measure(
            "bitshuffle", bit_sc.compress, bit_sc.decompress, values
        )
        isobar = IsobarCompressor(IsobarConfig(
            codec="zlib", preference=Preference.SPEED, sample_elements=8_192,
        ))
        # Consistent with the harness convention: the one-off selector
        # sampling is amortised over a stream and excluded from the
        # per-chunk compression throughput.
        result = isobar.compress_detailed(values)
        restored = isobar.decompress(result.payload)
        assert np.array_equal(restored.reshape(-1), values.reshape(-1))
        iso_ratio = result.ratio
        iso_seconds = result.analyze_seconds + result.compress_seconds
        iso_tp = values.nbytes / 1e6 / iso_seconds
        rows.append([dataset, plain_ratio, plain_tp, byte_ratio, byte_tp,
                     bit_ratio, bit_tp, iso_ratio, iso_tp])
    return rows


def test_precond_comparison(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    strict_wins = 0
    for row in rows:
        name = row[0]
        plain_ratio, byte_ratio, iso_ratio = row[1], row[3], row[7]
        plain_tp, byte_tp, iso_tp = row[2], row[4], row[8]
        # Any byte-regrouping beats plain zlib on HTC data...
        assert byte_ratio > plain_ratio, name
        assert iso_ratio > plain_ratio, name
        # ... ISOBAR's ratio is competitive with the shuffle filter ...
        assert iso_ratio > byte_ratio * 0.9, name
        # ... and its throughput at least keeps pace (single-run
        # wall-clock comparisons jitter a few percent).
        assert iso_tp > byte_tp * 0.85, name
        strict_wins += iso_tp > byte_tp
    # The solver-skips-the-noise advantage must show on most datasets.
    assert strict_wins >= len(rows) * 2 // 3

    text = render_table(
        ["Dataset", "plain CR", "plain MB/s", "byteshuf CR", "byteshuf MB/s",
         "bitshuf CR", "bitshuf MB/s", "ISOBAR CR", "ISOBAR MB/s"],
        rows,
        title="Preconditioner comparison (all over zlib)",
    )
    save_report(results_dir, "precond_comparison", text)
