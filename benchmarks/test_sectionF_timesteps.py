"""Section II-F: consistency over an entire simulated run.

Paper (GTS potential fluctuations): every timestep identified
improvable, a single stable EUPA decision, linear regime dCR
14.4% +/- 1.8 and Sp 5.95 +/- 0.065; nonlinear 13.4% +/- 2.7.

Reproduction: both regimes run for a window of timesteps; the decision
must be unique, every step improvable, and the dCR variance small
relative to its mean.
"""

import pytest
from conftest import save_report

from repro.bench.tables import section_f_consistency

_STEPS = 12
_ELEMENTS = 50_000


@pytest.mark.parametrize("regime", ["linear", "nonlinear"])
def test_section_f_consistency(benchmark, results_dir, regime):
    report = benchmark.pedantic(
        section_f_consistency,
        kwargs={
            "n_steps": _STEPS,
            "n_elements": _ELEMENTS,
            "regime": regime,
        },
        rounds=1,
        iterations=1,
    )
    step_rows = report.rows[:-2]
    mean_row, std_row = report.rows[-2], report.rows[-1]

    # One stable EUPA decision across the whole run.
    decisions = {row[1] for row in step_rows}
    assert len(decisions) == 1, f"unstable decisions: {decisions}"

    # Every timestep identified improvable.
    assert all(row[2] for row in step_rows)

    # Consistently positive improvement with a tight spread.
    assert mean_row[3] > 5.0, "mean dCR"
    assert std_row[3] < mean_row[3] * 0.5, "dCR std too wide"

    save_report(results_dir, f"sectionF_{regime}", report.render())
