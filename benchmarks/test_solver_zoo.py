"""Solver zoo: every from-scratch entropy coder behind the preconditioner.

The paper's central interface claim is solver-agnosticism.  This
benchmark drives one HTC dataset through ISOBAR with each of the
repository's own solvers — canonical Huffman, LZSS, RLE and the
adaptive range coder — next to zlib as the reference, asserting
lossless round trips everywhere and recording the ratio/throughput
surface.  (Pure-Python solvers are interpreter-bound; the input is kept
modest so the suite stays fast.)
"""

import time

import numpy as np
from conftest import save_report

from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig
from repro.datasets.registry import generate_dataset

_SOLVERS = ("zlib", "huffman", "range-coder", "lzss", "rle")
_ELEMENTS = 20_000


def _run():
    values = generate_dataset("gts_chkp_zion", n_elements=_ELEMENTS)
    rows = []
    for solver in _SOLVERS:
        config = IsobarConfig(codec=solver, sample_elements=2_048,
                              chunk_elements=_ELEMENTS)
        compressor = IsobarCompressor(config)
        start = time.perf_counter()
        result = compressor.compress_detailed(values)
        compress_seconds = time.perf_counter() - start
        start = time.perf_counter()
        restored = compressor.decompress(result.payload)
        decompress_seconds = time.perf_counter() - start
        assert np.array_equal(restored, values), solver
        mb = values.nbytes / 1e6
        rows.append([
            solver,
            result.ratio,
            mb / compress_seconds,
            mb / decompress_seconds,
        ])
    return rows


def test_solver_zoo(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    ratios = {row[0]: row[1] for row in rows}

    # Every solver compresses this HTC dataset behind the preconditioner
    # (the partitioner already removed the noise, so even weak solvers
    # improve on raw storage)...
    for solver in ("zlib", "huffman", "range-coder"):
        assert ratios[solver] > 1.1, solver
    # ... except pure RLE, which needs literal runs the signal bytes do
    # not form; it must still round-trip and not explode the size.
    assert ratios["rle"] > 0.85

    # The adaptive range coder is the strongest order-0 solver here.
    assert ratios["range-coder"] >= ratios["huffman"] * 0.98

    text = render_table(
        ["Solver", "CR", "TP_C (MB/s)", "TP_D (MB/s)"],
        rows,
        title=f"Solver zoo behind ISOBAR (gts_chkp_zion, {_ELEMENTS} "
              "elements)",
    )
    save_report(results_dir, "solver_zoo", text)
