"""End-to-end write staging: the paper's FLOPS-vs-filesystem economics.

Sweeps the simulated storage bandwidth and reports the effective output
throughput (raw MB of simulation data persisted per wall-clock second)
of three strategies: raw writes, standalone zlib, and ISOBAR (speed
preference), with overlapped compute/IO staging.

Expected shape: at low bandwidth every compressor wins and ISOBAR leads
(smallest and fastest-to-produce payload); as bandwidth grows a
crossover appears where raw writes take over — quantifying the regime
in which preconditioned compression pays on this substrate.
"""

import zlib as _zlib

from conftest import save_report

from repro.bench.report import render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig, Preference
from repro.insitu.simulation import FieldSimulation, SimulationConfig
from repro.insitu.staging import StagingSimulator, StorageModel, raw_writer

_BANDWIDTHS = (1.0, 4.0, 16.0, 64.0, 100_000.0)
_STEPS = 5
_ELEMENTS = 50_000


def _steps_factory():
    sim = FieldSimulation(SimulationConfig(n_elements=_ELEMENTS, seed=21))
    return list(sim.run(_STEPS))


def _run():
    isobar = IsobarCompressor(IsobarConfig(
        preference=Preference.SPEED, sample_elements=8_192,
    ))
    strategies = {
        "raw": raw_writer,
        "zlib": lambda values: _zlib.compress(values.tobytes()),
        "isobar": isobar.compress,
    }
    steps = _steps_factory()
    rows = []
    for bandwidth in _BANDWIDTHS:
        simulator = StagingSimulator(StorageModel(bandwidth_mb_s=bandwidth))
        reports = simulator.compare(
            lambda: steps, strategies, overlapped=True
        )
        rows.append([
            bandwidth,
            reports["raw"].effective_throughput_mb_s,
            reports["zlib"].effective_throughput_mb_s,
            reports["isobar"].effective_throughput_mb_s,
            reports["isobar"].compression_ratio,
        ])
    return rows


def test_staging_io_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lowest = rows[0]
    highest = rows[-1]
    # At the slowest storage, ISOBAR beats raw writes and zlib.
    assert lowest[3] > lowest[1], "ISOBAR must win at low bandwidth"
    assert lowest[3] > lowest[2], "ISOBAR must beat standalone zlib"
    # At (effectively) infinite bandwidth, raw wins: the crossover exists.
    assert highest[1] > highest[3], "raw must win at infinite bandwidth"

    text = render_table(
        ["Storage MB/s", "raw eff MB/s", "zlib eff MB/s", "ISOBAR eff MB/s",
         "ISOBAR CR"],
        rows,
        title="Effective write throughput vs storage bandwidth "
              "(overlapped staging)",
    )
    save_report(results_dir, "staging_io", text)
