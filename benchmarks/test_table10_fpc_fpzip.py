"""Table X: ISOBAR-Sp vs FPC vs fpzip on the GTS/XGC/FLASH datasets.

Paper means: ISOBAR CR 1.476 vs FPC 1.276 vs fpzip 1.469 — ISOBAR wins
on ratio against FPC and edges fpzip, while dominating on throughput.
Our FPC/fpzip are from-scratch Python reimplementations, so throughput
columns reflect the substrate; the ratio ordering is the target.
"""

from conftest import BENCH_ELEMENTS, save_report

from repro.bench.tables import TABLE10_DATASETS, table10_fpc_fpzip

# FPC's sequential Python predictor dominates this table's runtime;
# cap its input so the whole suite stays snappy.
_T10_ELEMENTS = min(BENCH_ELEMENTS, 40_000)


def test_table10_fpc_fpzip(benchmark, all_evaluations, results_dir):
    report = benchmark.pedantic(
        table10_fpc_fpzip,
        kwargs={
            "n_elements": _T10_ELEMENTS,
            "datasets": TABLE10_DATASETS,
        },
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == len(TABLE10_DATASETS) + 1
    mean_row = report.rows[-1]
    assert mean_row[0] == "mean"
    iso_cr, fpc_cr, fpzip_cr = mean_row[1], mean_row[4], mean_row[7]
    # The paper's ordering: ISOBAR's mean ratio beats FPC's clearly.
    assert iso_cr > fpc_cr, "ISOBAR must out-compress FPC on average"
    # ... and is at least competitive with fpzip (paper: 1.476 vs 1.469).
    assert iso_cr > fpzip_cr * 0.95
    for row in report.rows[:-1]:
        assert row[1] > 1.0, f"{row[0]}: ISOBAR ratio"
        assert row[4] > 0.95, f"{row[0]}: FPC ratio"
        assert row[7] > 0.95, f"{row[0]}: fpzip ratio"
    save_report(results_dir, "table10_fpc_fpzip", report.render())
