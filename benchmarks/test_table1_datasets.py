"""Table I: dataset inventory (static registry contents)."""

from conftest import save_report

from repro.bench.tables import table1_datasets


def test_table1_datasets(benchmark, results_dir):
    report = benchmark.pedantic(table1_datasets, rounds=3, iterations=1)
    assert len(report.rows) == 7
    save_report(results_dir, "table1_datasets", report.render())
