"""Table II: headline ISOBAR performance per application.

Paper values (on Lens, C implementation): dCR 10-33%, compression
speed-ups 8-36x, decompression throughput 342-1617 MB/s.  The
reproduction targets the *signs and ordering*: positive dCR everywhere,
speed-ups above 1, FLASH the fastest of the four.
"""

from conftest import save_report

from repro.bench.tables import table2_summary


def test_table2_summary(benchmark, all_evaluations, results_dir):
    report = benchmark.pedantic(
        table2_summary,
        kwargs={"evaluations": all_evaluations},
        rounds=1,
        iterations=1,
    )
    assert [row[0] for row in report.rows] == ["GTS", "XGC", "S3D", "FLASH"]
    for row in report.rows:
        assert row[1] > 0, f"{row[0]}: dCR must be positive"
        assert row[2] > 0, f"{row[0]}: compression throughput"
        # Single-run wall-clock per row; tolerate jitter but require the
        # decompression advantage in aggregate.
        assert row[5] > 0.6, f"{row[0]}: decompression speed-up collapsed"
    winners = sum(1 for row in report.rows if row[5] > 1.0)
    assert winners >= 3, "decompression speed-up must hold in aggregate"
    save_report(results_dir, "table2_summary", report.render())
