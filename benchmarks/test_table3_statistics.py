"""Table III: statistical characteristics of all 24 datasets.

Checks the synthetic stand-ins land in the paper's qualitative classes:
unique-value ratio (high for fields, tiny for repetitive data) and
randomness.
"""

from conftest import save_report

from repro.bench.tables import table3_statistics


def test_table3_statistics(benchmark, bench_elements, results_dir):
    report = benchmark.pedantic(
        table3_statistics,
        kwargs={"n_elements": bench_elements},
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == 24
    by_name = {row[0]: row for row in report.rows}

    # Field-like datasets: ~100% unique, ~100% randomness (paper).
    for name in ("gts_phi_l", "flash_velx", "num_brain", "obs_temp"):
        assert by_name[name][4] > 95.0, f"{name}: unique %"
        assert by_name[name][6] > 95.0, f"{name}: randomness %"

    # Repetitive datasets: small dictionaries, low randomness.
    for name in ("msg_sppm", "num_plasma", "obs_spitzer"):
        assert by_name[name][4] < 5.0, f"{name}: unique %"
        assert by_name[name][6] < 60.0, f"{name}: randomness %"

    # The integer particle-ID set repeats (paper: 22.6% unique).
    assert by_name["xgc_igid"][4] < 100.0

    save_report(results_dir, "table3_statistics", report.render())
