"""Table IV: analyzer predictions — reproduced EXACTLY.

This is the strongest fidelity claim in the reproduction: for all 24
datasets the analyzer must emit the paper's HTC flag, HTC-bytes
percentage and improvable verdict, row for row.
"""

from conftest import save_report

from repro.bench.tables import table4_analyzer
from repro.datasets.registry import DATASETS

# (HTC?, HTC bytes %, improvable?) transcribed from the paper's Table IV.
PAPER_TABLE4 = {
    "gts_chkp_zeon": (True, 75.0, True),
    "gts_chkp_zion": (True, 75.0, True),
    "gts_phi_l": (True, 75.0, True),
    "gts_phi_nl": (True, 75.0, True),
    "xgc_igid": (True, 37.5, True),
    "xgc_iphase": (True, 75.0, True),
    "s3d_temp": (True, 25.0, True),
    "s3d_vmag": (True, 50.0, True),
    "flash_gamc": (True, 62.5, True),
    "flash_velx": (True, 75.0, True),
    "flash_vely": (True, 75.0, True),
    "msg_bt": (False, 0.0, False),
    "msg_lu": (True, 75.0, True),
    "msg_sp": (True, 62.5, True),
    "msg_sppm": (False, 0.0, False),
    "msg_sweep3d": (True, 50.0, True),
    "num_brain": (True, 75.0, True),
    "num_comet": (True, 37.5, True),
    "num_control": (True, 75.0, True),
    "num_plasma": (False, 0.0, False),
    "obs_error": (False, 0.0, False),
    "obs_info": (True, 75.0, True),
    "obs_spitzer": (False, 0.0, False),
    "obs_temp": (True, 75.0, True),
}


def test_table4_analyzer_matches_paper_exactly(benchmark, bench_elements,
                                               results_dir):
    report = benchmark.pedantic(
        table4_analyzer,
        kwargs={"n_elements": bench_elements},
        rounds=1,
        iterations=1,
    )
    assert len(PAPER_TABLE4) == len(DATASETS) == 24
    measured = {row[0]: (row[1], float(row[2].rstrip("%")), row[3])
                for row in report.rows}
    mismatches = {
        name: (paper, measured[name])
        for name, paper in PAPER_TABLE4.items()
        if measured[name] != paper
    }
    assert not mismatches, f"Table IV rows diverge from paper: {mismatches}"
    save_report(results_dir, "table4_analyzer", report.render())
