"""Table V: full performance comparison across all 24 datasets.

Reproduction targets (the paper's shape, not Lens-absolute numbers):

* the same 5 datasets come out NI (non-improvable);
* every improvable dataset's ISOBAR-CR ratio beats both standalone
  solvers;
* the ISOBAR-Sp variant trades a little ratio for more throughput;
* analyzer throughput exceeds standalone bzip2 throughput everywhere
  (the precondition for net speed-ups).
"""

from conftest import save_report

from repro.bench.tables import table5_comparison

PAPER_NI = {"msg_bt", "msg_sppm", "num_plasma", "obs_error", "obs_spitzer"}


def test_table5_comparison(benchmark, all_evaluations, results_dir):
    report = benchmark.pedantic(
        table5_comparison,
        kwargs={"evaluations": all_evaluations},
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == 24

    measured_ni = {row[0] for row in report.rows if row[6] is None}
    assert measured_ni == PAPER_NI

    for row in report.rows:
        name, zl_cr, zl_tp, bz_cr, bz_tp, tp_a = row[:6]
        assert tp_a > bz_tp, f"{name}: analyzer must outrun bzip2"
        if row[6] is None:
            continue
        cr_cr, cr_tp, sp_cr, sp_tp = row[6:]
        best_standard = max(zl_cr, bz_cr)
        assert cr_cr > best_standard, f"{name}: ISOBAR-CR ratio"
        assert sp_cr > best_standard * 0.97, f"{name}: ISOBAR-Sp ratio"
        assert cr_cr >= sp_cr * 0.995, f"{name}: CR preference >= Sp"

    save_report(results_dir, "table5_comparison", report.render())
