"""Table VI: improvement under the throughput (Sp) preference.

Paper ranges on the 16 double-precision improvable rows: dCR 4.7-18.9%,
Sp 1.5-37x.  The reproduction asserts positive dCR and Sp > 1 for every
improvable dataset (our Python analyzer narrows the speed gap but must
not lose it).
"""

from conftest import save_report

from repro.bench.tables import table6_speed_preference
from repro.datasets.registry import improvable_dataset_names


def test_table6_sp_preference(benchmark, all_evaluations, results_dir):
    report = benchmark.pedantic(
        table6_speed_preference,
        kwargs={"evaluations": all_evaluations},
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == len(improvable_dataset_names()) == 19
    for name, ls, delta, sp, codec in report.rows:
        assert ls in ("Row", "Column"), name
        assert delta > 0, f"{name}: dCR vs fastest standalone"
        assert sp > 0.5, f"{name}: speed-up collapsed"
    # The paper's aggregate: clear majority of datasets see a net
    # compression speed-up on top of the ratio gain.
    speedups = [row[3] for row in report.rows]
    winners = sum(1 for sp in speedups if sp > 1.0)
    assert winners >= len(speedups) * 2 // 3
    save_report(results_dir, "table6_sp_preference", report.render())
