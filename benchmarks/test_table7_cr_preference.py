"""Table VII: improvement under the compression-ratio (CR) preference.

Paper ranges: dCR 5.2-22.8% against the best-ratio standalone solver;
Sp may dip below 1 on some datasets (0.295 for msg_sp) — the ratio
preference is allowed to spend time.  Asserted shape: positive dCR on
every improvable dataset.
"""

from conftest import save_report

from repro.bench.tables import table7_ratio_preference
from repro.datasets.registry import improvable_dataset_names


def test_table7_cr_preference(benchmark, all_evaluations, results_dir):
    report = benchmark.pedantic(
        table7_ratio_preference,
        kwargs={"evaluations": all_evaluations},
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == len(improvable_dataset_names()) == 19
    for name, ls, delta, sp, codec in report.rows:
        assert delta > 0, f"{name}: dCR vs best-ratio standalone"
        assert sp > 0, f"{name}: speed-up must be defined"
    deltas = [row[2] for row in report.rows]
    assert max(deltas) > 10.0  # the paper's biggest gains exceed 20%
    save_report(results_dir, "table7_cr_preference", report.render())
