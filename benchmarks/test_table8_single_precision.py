"""Table VIII: single-precision (float32) datasets.

Paper: both s3d datasets identified improvable; dCR 34.8-46.7% with
speed-ups 2.5-9.4x.  Single-precision is the strongest ISOBAR case
because noise occupies a larger fraction of each element.
"""

from conftest import save_report

from repro.bench.tables import table8_single_precision


def test_table8_single_precision(benchmark, all_evaluations, results_dir):
    report = benchmark.pedantic(
        table8_single_precision,
        kwargs={"evaluations": all_evaluations},
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == 4
    for pref, name, ls, delta, sp in report.rows:
        assert name in ("s3d_temp", "s3d_vmag")
        assert delta > 0, f"{pref}/{name}: dCR"
        assert sp > 0.5, f"{pref}/{name}: speed-up"
    # s3d_temp (25% HTC, float32) shows the biggest relative gain in
    # the paper; ours must be clearly double-digit too.
    temp_rows = [row for row in report.rows if row[1] == "s3d_temp"]
    assert max(row[3] for row in temp_rows) > 15.0
    save_report(results_dir, "table8_single_precision", report.render())
