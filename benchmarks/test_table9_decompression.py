"""Table IX: decompression throughput comparison.

Paper: ISOBAR decompression beats the faster standalone solver on every
improvable dataset (speed-ups 1.2-14.2x) because most bytes skip the
entropy decoder entirely.  The same mechanism must show here.
"""

from conftest import save_report

from repro.bench.tables import table9_decompression
from repro.datasets.registry import improvable_dataset_names


def test_table9_decompression(benchmark, all_evaluations, results_dir):
    report = benchmark.pedantic(
        table9_decompression,
        kwargs={"evaluations": all_evaluations},
        rounds=1,
        iterations=1,
    )
    assert len(report.rows) == len(improvable_dataset_names()) == 19
    for name, zlib_tp, bzip2_tp, isobar_tp, sp in report.rows:
        assert zlib_tp > bzip2_tp, f"{name}: zlib should out-decode bzip2"
        # The speed preference can still select bzip2 when zlib's ratio
        # falls below the acceptability floor (e.g. s3d_temp); such
        # rows decode through the slow solver and may dip below 1.
        assert sp > 0.35, f"{name}: ISOBAR decompression collapsed"
    speedups = [row[4] for row in report.rows]
    winners = sum(1 for sp in speedups if sp > 1.0)
    assert winners >= len(speedups) * 2 // 3
    save_report(results_dir, "table9_decompression", report.render())
