#!/usr/bin/env python
"""Archive maintenance: append, prune, validate — a day in production.

A long campaign accumulates compressed output.  This example walks the
housekeeping loop a production archive needs:

1. per-day containers are **concatenated** into a monthly archive
   without recompression (pure re-framing);
2. the checkpoint store is **pruned** by a retention policy (keep the
   last few steps plus every 5th);
3. the merged archive is **deep-validated** (structure + CRCs) and then
   served through a **random-access** range query.

Run:  python examples/archive_maintenance.py
"""

import tempfile

import numpy as np

from repro import IsobarCompressor, IsobarConfig
from repro.core import ContainerReader, concat_containers, validate_container
from repro.insitu import (
    CheckpointStore,
    FieldSimulation,
    RetentionPolicy,
    SimulationConfig,
    apply_retention,
)

CFG = IsobarConfig(codec="zlib", linearization="row",
                   chunk_elements=30_000, sample_elements=4_096)


def main() -> None:
    sim = FieldSimulation(SimulationConfig(n_elements=30_000, seed=77))
    compressor = IsobarCompressor(CFG)

    # --- 1. daily containers -> one archive, no recompression ---
    days = [sim.step() for _ in range(6)]
    daily_containers = [compressor.compress(day) for day in days]
    archive = concat_containers(daily_containers)
    expected = np.concatenate(days)
    print(f"archive: {len(daily_containers)} daily containers -> "
          f"{len(archive) / 1e6:.2f} MB merged "
          f"(ratio {expected.nbytes / len(archive):.3f})")

    # --- 2. checkpoint pruning ---
    store = CheckpointStore(tempfile.mkdtemp(prefix="isobar_arch_"),
                            config=CFG)
    for step, day in enumerate(days):
        store.write(step, {"phi": day})
    policy = RetentionPolicy(keep_last=2, keep_every=5)
    dropped = apply_retention(store, policy)
    print(f"retention ({policy.keep_last} last + every "
          f"{policy.keep_every}th): dropped steps {dropped}, "
          f"kept {store.steps()}")

    # --- 3. validation + queries over the merged archive ---
    report = validate_container(archive)
    print("validation:", report.summary_lines()[-1],
          f"({report.n_chunks_checked} chunks checked)")
    assert report.valid

    reader = ContainerReader(archive)
    day3 = reader.read_range(3 * 30_000, 4 * 30_000)
    assert np.array_equal(day3, days[3])
    print(f"range query: day 3 extracted from the archive bit-exactly "
          f"({day3.nbytes / 1e3:.0f} kB, touched "
          f"{reader.chunk_for_element(4 * 30_000 - 1).index - reader.chunk_for_element(3 * 30_000).index + 1} "
          f"of {reader.n_chunks} chunks)")

    # Bit-exactness of the whole archive, end to end.
    assert np.array_equal(reader.read_all().reshape(-1), expected)
    print("full archive verified bit-exact.")


if __name__ == "__main__":
    main()
