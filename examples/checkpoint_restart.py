#!/usr/bin/env python
"""In-situ checkpoint/restart: the paper's motivating workload.

Runs a synthetic gyrokinetic-style field simulation (Section II-F's
scenario), writes an ISOBAR-compressed checkpoint every few timesteps,
then simulates a crash and restarts from the latest checkpoint,
verifying the restored state is bit-exact — the property that rules
out lossy compression for this workload.

Run:  python examples/checkpoint_restart.py
"""

import tempfile

import numpy as np

from repro import IsobarConfig, Preference
from repro.insitu import CheckpointStore, FieldSimulation, SimulationConfig


CHECKPOINT_EVERY = 5
TOTAL_STEPS = 20


def main() -> None:
    sim = FieldSimulation(SimulationConfig(n_elements=60_000, regime="linear"))
    # Checkpoint writers prefer throughput: the simulation stalls while
    # the checkpoint is written.
    store = CheckpointStore(
        tempfile.mkdtemp(prefix="isobar_ckpt_"),
        config=IsobarConfig(preference=Preference.SPEED),
    )
    print(f"checkpoint store: {store.root}")

    history = {}
    for step in range(TOTAL_STEPS):
        field = sim.step()
        history[step] = field
        if step % CHECKPOINT_EVERY == 0:
            records = store.write(step, {"phi": field})
            rec = records[0]
            print(f"step {step:3d}: checkpoint written, "
                  f"ratio {rec.ratio:.3f} "
                  f"({rec.original_bytes} -> {rec.stored_bytes} bytes)")

    # --- simulated crash: restart from the newest checkpoint ---
    latest = store.latest_step()
    print(f"\ncrash! restarting from step {latest} "
          f"(steps on disk: {store.steps()})")
    restored = store.read(latest, "phi")
    assert np.array_equal(restored, history[latest]), (
        "restart state differs from the original - lossless guarantee broken"
    )
    print("restart state verified bit-exact against the live run.")

    # Storage accounting across the run.
    total_original = sum(
        history[s].nbytes for s in store.steps()
    )
    total_stored = sum(
        store._variable_path(s, "phi").stat().st_size for s in store.steps()
    )
    print(f"checkpoint footprint: {total_original / 1e6:.1f} MB raw -> "
          f"{total_stored / 1e6:.1f} MB stored "
          f"(ratio {total_original / total_stored:.3f})")


if __name__ == "__main__":
    main()
