#!/usr/bin/env python
"""Codec shoot-out: ISOBAR vs the specialised floating-point compressors.

Reproduces the spirit of Table X on a handful of datasets: ISOBAR with
the speed preference against the from-scratch FPC (FCM/DFCM prediction)
and fpzip-style (Lorenzo prediction) reimplementations, plus standalone
zlib as the common baseline.

Run:  python examples/codec_comparison.py
"""

import time
import zlib

import numpy as np

from repro import IsobarCompressor, IsobarConfig, Preference
from repro.bench.report import render_table
from repro.codecs import FpcCodec, FpzipLikeCodec
from repro.datasets import generate_dataset

DATASETS = ("gts_phi_l", "xgc_igid", "flash_velx")
N_ELEMENTS = 60_000


def timed(fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def main() -> None:
    rows = []
    for name in DATASETS:
        values = generate_dataset(name, n_elements=N_ELEMENTS)
        raw = values.tobytes()
        mb = values.nbytes / 1e6

        plain, z_sec = timed(zlib.compress, raw)

        isobar = IsobarCompressor(IsobarConfig(preference=Preference.SPEED))
        result, i_sec = timed(isobar.compress_detailed, values)
        assert np.array_equal(isobar.decompress(result.payload), values)

        fpc = FpcCodec()
        fpc_blob, f_sec = timed(fpc.encode, values)
        assert np.array_equal(fpc.decode(fpc_blob), values)

        fpzip = FpzipLikeCodec()
        # fpzip is float-only; view integer traces as float64 bits (a
        # bijection, so the round trip stays exact).
        fp_vals = values if values.dtype.kind == "f" else values.view(np.float64)
        fz_blob, p_sec = timed(fpzip.encode, fp_vals)
        assert np.array_equal(
            fpzip.decode(fz_blob).view(values.dtype), values
        )

        rows.append([
            name,
            len(raw) / len(plain), mb / z_sec,
            result.ratio, mb / i_sec,
            values.nbytes / len(fpc_blob), mb / f_sec,
            values.nbytes / len(fz_blob), mb / p_sec,
        ])

    print(render_table(
        ["Dataset", "zlib CR", "zlib MB/s", "ISOBAR CR", "ISOBAR MB/s",
         "FPC CR", "FPC MB/s", "fpzip CR", "fpzip MB/s"],
        rows,
        title="ISOBAR vs FPC vs fpzip-style vs zlib (speed preference)",
    ))
    print("\nAll round trips verified bit-exact. FPC throughput is "
          "pure-Python sequential prediction - ratios are the comparable "
          "quantity (see DESIGN.md).")


if __name__ == "__main__":
    main()
