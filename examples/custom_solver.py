#!/usr/bin/env python
"""Plugging a custom solver into ISOBAR (the paper's extensibility claim).

"A user can specify a preference in compressor to use with little to no
change to our preconditioning method" — this example makes that claim
concrete by writing a tiny custom codec (XOR-delta over bytes followed
by zlib), registering it, and running the full ISOBAR workflow with it,
including EUPA-selector participation.

Run:  python examples/custom_solver.py
"""

import zlib

import numpy as np

from repro import IsobarCompressor, IsobarConfig
from repro.codecs import Codec, register_codec
from repro.datasets import generate_dataset


class XorDeltaZlibCodec(Codec):
    """Example solver: byte-wise XOR-delta transform, then DEFLATE.

    The transform turns slowly varying byte streams into
    near-zero-dominated ones before the entropy stage — 30 lines, and
    it satisfies the full Codec contract (lossless round trip over
    arbitrary bytes).
    """

    name = "xordelta-zlib"

    def compress(self, data: bytes) -> bytes:
        arr = np.frombuffer(data, dtype=np.uint8)
        if arr.size:
            transformed = arr.copy()
            transformed[1:] = arr[1:] ^ arr[:-1]
        else:
            transformed = arr
        return zlib.compress(transformed.tobytes(), 6)

    def decompress(self, data: bytes) -> bytes:
        transformed = np.frombuffer(zlib.decompress(data), dtype=np.uint8)
        if transformed.size == 0:
            return b""
        return np.bitwise_xor.accumulate(transformed).tobytes()


def main() -> None:
    codec = XorDeltaZlibCodec()
    register_codec(codec)
    print(f"registered custom solver: {codec.name!r}")

    # Sanity: the Codec contract holds on arbitrary bytes.
    probe = bytes(range(256)) * 10
    assert codec.decompress(codec.compress(probe)) == probe

    data = generate_dataset("msg_lu", n_elements=100_000)

    # 1. Forced: the whole workflow runs on the custom solver.
    forced = IsobarCompressor(IsobarConfig(
        codec="xordelta-zlib", sample_elements=8_192,
    ))
    result = forced.compress_detailed(data)
    restored = forced.decompress(result.payload)
    assert np.array_equal(restored, data)
    print(f"forced      : ratio {result.ratio:.3f} "
          f"(container names codec {result.header.codec_name!r})")

    # 2. As an EUPA candidate: the selector times it against zlib and
    #    picks whichever wins on this data.
    candidate = IsobarCompressor(IsobarConfig(
        candidate_codecs=("zlib", "xordelta-zlib"),
        sample_elements=8_192,
    ))
    result2 = candidate.compress_detailed(data)
    assert np.array_equal(candidate.decompress(result2.payload), data)
    print(f"as candidate: EUPA chose {result2.decision.codec_name!r} "
          f"(sampled candidates: "
          f"{[(c.codec_name, round(c.ratio, 3)) for c in result2.decision.candidates]})")

    print("custom solver integrated losslessly — no preconditioner "
          "changes required.")


if __name__ == "__main__":
    main()
