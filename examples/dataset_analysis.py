#!/usr/bin/env python
"""Dataset compressibility analysis: Figure 1 and Table IV in miniature.

Walks a selection of the paper's datasets (synthetic stand-ins),
printing for each the bit-frequency profile, the byte-column entropy
map, and the ISOBAR-analyzer verdict — the diagnostics a user would run
before deciding whether preconditioning will pay off on their data.

Run:  python examples/dataset_analysis.py
"""

from repro import analyze
from repro.analysis import bit_frequency_profile, byte_matrix, column_entropies
from repro.datasets import generate_dataset

DATASETS = ("gts_chkp_zeon", "xgc_igid", "s3d_temp", "msg_sppm", "obs_error")


def main() -> None:
    for name in DATASETS:
        values = generate_dataset(name, n_elements=80_000)
        profile = bit_frequency_profile(name, values)
        verdict = analyze(values)
        entropies = column_entropies(byte_matrix(values))

        print(f"== {name} ({values.dtype}, {values.size} elements) ==")
        print(f"  bit profile (MSB->LSB): {profile.render_ascii()}")
        print(f"  noisy bit positions   : {profile.noisy_bits}/{profile.n_bits}")
        entropy_map = " ".join(f"{e:4.1f}" for e in entropies)
        print(f"  byte-column entropy   : {entropy_map}  (bits/byte, LSB->MSB)")
        print(f"  analyzer verdict      : {verdict.summary()}")
        if verdict.improvable:
            kept = verdict.n_compressible
            print(f"  -> improvable: solver sees only {kept}/"
                  f"{verdict.element_width} bytes per element "
                  f"({100 * kept / verdict.element_width:.0f}% of the stream)")
        else:
            print("  -> undetermined: whole stream passes to the solver")
        print()


if __name__ == "__main__":
    main()
