#!/usr/bin/env python
"""Write-staging economics: when does compression pay? (paper intro).

The paper motivates ISOBAR with the growing FLOPS-vs-filesystem
imbalance: compressing before writing only helps when the compressor
outruns the storage bottleneck.  This example sweeps a simulated
storage bandwidth and compares three write strategies over a running
simulation — raw dumps, standalone zlib, and ISOBAR (speed preference)
with overlapped compute/IO staging — printing the effective output
throughput and the crossover point.

Run:  python examples/io_staging.py
"""

import zlib

from repro import IsobarCompressor, IsobarConfig, Preference
from repro.bench.report import render_table
from repro.insitu import (
    FieldSimulation,
    SimulationConfig,
    StagingSimulator,
    StorageModel,
    raw_writer,
)

BANDWIDTHS_MB_S = (1.0, 2.0, 8.0, 32.0, 128.0, 1024.0)
N_STEPS = 5
ELEMENTS = 60_000


def main() -> None:
    steps = list(
        FieldSimulation(SimulationConfig(n_elements=ELEMENTS, seed=13)).run(
            N_STEPS
        )
    )
    raw_mb = sum(s.nbytes for s in steps) / 1e6
    print(f"simulation output: {N_STEPS} steps x {ELEMENTS} doubles "
          f"({raw_mb:.1f} MB total)\n")

    isobar = IsobarCompressor(IsobarConfig(
        preference=Preference.SPEED, sample_elements=8_192,
    ))
    strategies = {
        "raw": raw_writer,
        "zlib": lambda values: zlib.compress(values.tobytes()),
        "isobar": isobar.compress,
    }

    rows = []
    crossover = None
    for bandwidth in BANDWIDTHS_MB_S:
        simulator = StagingSimulator(StorageModel(bandwidth_mb_s=bandwidth))
        reports = simulator.compare(lambda: steps, strategies,
                                    overlapped=True)
        winner = max(reports, key=lambda k: reports[k].effective_throughput_mb_s)
        if winner == "raw" and crossover is None and rows:
            crossover = bandwidth
        rows.append([
            bandwidth,
            reports["raw"].effective_throughput_mb_s,
            reports["zlib"].effective_throughput_mb_s,
            reports["isobar"].effective_throughput_mb_s,
            winner,
        ])

    print(render_table(
        ["storage MB/s", "raw eff", "zlib eff", "ISOBAR eff", "winner"],
        rows,
        title="Effective write throughput by strategy (overlapped staging)",
    ))
    if crossover:
        print(f"\ncrossover: raw writes overtake compression near "
              f"{crossover:g} MB/s of storage bandwidth on this substrate —"
              f" below that, ISOBAR preconditioning is pure win.")
    else:
        print("\ncompression won at every tested bandwidth.")


if __name__ == "__main__":
    main()
