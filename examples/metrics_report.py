#!/usr/bin/env python
"""Observability: profile a compression run with the metrics layer.

Compresses a hard-to-compress array with ``collect_metrics=True``,
prints the per-run :class:`~repro.observability.PipelineReport` (stage
breakdown, byte routing, chunk outcomes), then dumps the registry in
both exporter formats — Prometheus text exposition and round-trippable
JSON.  See docs/observability.md for the metric vocabulary.

Run:  python examples/metrics_report.py
"""

import numpy as np

from repro import (
    IsobarCompressor,
    registry_from_json,
    to_json,
    to_prometheus_text,
)
from repro.datasets import generate_dataset


def main() -> None:
    data = generate_dataset("gts_chkp_zion", n_elements=200_000)
    print(f"input: {data.size} float64 elements ({data.nbytes / 1e6:.1f} MB)")

    # One compressor, one registry: compress + decompress aggregate
    # into the same metric series.
    compressor = IsobarCompressor(collect_metrics=True)
    blob = compressor.compress(data)

    print()
    print("-- compression run report " + "-" * 34)
    print(compressor.last_report.render())

    restored = compressor.decompress(blob)
    assert np.array_equal(restored, data), "lossless round trip violated"

    print()
    print("-- decompression run report " + "-" * 32)
    print(compressor.last_report.render())

    # The registry outlives individual runs; export it both ways.
    registry = compressor.metrics

    print()
    print("-- Prometheus text exposition (excerpt) " + "-" * 20)
    text = to_prometheus_text(registry)
    for line in text.splitlines():
        if line.startswith(("isobar_runs_total", "isobar_routed_bytes",
                            "isobar_stage_seconds")):
            print(line)
    print(f"({len(text.splitlines())} lines total)")

    # JSON round-trips exactly: a reloaded registry renders the same.
    payload = to_json(registry)
    reloaded = registry_from_json(payload)
    assert to_prometheus_text(reloaded) == text, "exporter round trip broken"
    print()
    print(f"JSON export: {len(payload)} bytes; reload verified identical.")


if __name__ == "__main__":
    main()
