#!/usr/bin/env python
"""Linearization robustness on multi-dimensional data (Figures 9-10).

Builds a 2-D field with the GTS byte fingerprint, streams it in four
different element orders — original row-major, Hilbert curve, Morton
curve and a random shuffle — and shows that ISOBAR's improvement over
standalone compression barely moves: the analyzer's byte-column
statistics are order-invariant.

Run:  python examples/multidim_linearization.py
"""

import numpy as np

from repro.bench import evaluate_array
from repro.bench.report import render_table
from repro.datasets import build_structured
from repro.linearization import apply_order, invert_permutation, ordering_indices

ORDERINGS = ("original", "hilbert", "morton", "random")
SIDE = 220


def main() -> None:
    rng = np.random.default_rng(42)
    field = build_structured(
        SIDE * SIDE, np.float64, 6, rng, pattern_kind="wave", step_scale=1.0
    ).reshape(SIDE, SIDE)
    print(f"2-D field: {field.shape}, {field.nbytes / 1e6:.1f} MB, "
          f"6/8 noise bytes per element\n")

    rows = []
    for ordering in ORDERINGS:
        perm = ordering_indices(ordering, field.shape, seed=1)
        stream = apply_order(field, perm)
        # Sanity: the permutation is invertible, so storage in any
        # order loses nothing.
        assert np.array_equal(
            stream[invert_permutation(perm)], field.reshape(-1)
        )
        ev = evaluate_array(f"{ordering}", stream)
        res = ev.isobar_speed
        rows.append([
            ordering,
            ev.best_standard_ratio().ratio,
            res.ratio,
            ev.delta_cr_vs_best(res),
            ev.speedup_vs_best_ratio(res),
        ])

    print(render_table(
        ["Ordering", "best std CR", "ISOBAR CR", "dCR (%)", "Sp"],
        rows,
        title="ISOBAR improvement under different linearizations",
    ))
    deltas = [row[3] for row in rows]
    print(f"\ndCR spread across orderings: "
          f"{max(deltas) - min(deltas):.2f} percentage points "
          f"(the paper's claim: improvement is linearization-robust).")


if __name__ == "__main__":
    main()
