#!/usr/bin/env python
"""Database-style range queries over a compressed container.

The chunked container format supports random access: a range read only
decodes the chunks it overlaps.  This example stores a large field,
serves point and range queries through
:class:`repro.core.random_access.ContainerReader`, and compares the
work done against naive full decompression.

Run:  python examples/query_random_access.py
"""

import time

import numpy as np

from repro import IsobarCompressor, IsobarConfig
from repro.core import ContainerReader
from repro.datasets import generate_dataset

CHUNK = 30_000
N = 360_000  # 12 chunks


def main() -> None:
    values = generate_dataset("num_brain", n_elements=N)
    compressor = IsobarCompressor(IsobarConfig(chunk_elements=CHUNK,
                                               sample_elements=8_192))
    payload = compressor.compress(values)
    print(f"stored {values.nbytes / 1e6:.1f} MB as {len(payload) / 1e6:.1f} MB "
          f"({values.nbytes / len(payload):.3f}x) in {N // CHUNK} chunks\n")

    reader = ContainerReader(payload)

    # Point queries.
    for position in (0, 123_456, N - 1):
        assert reader.element(position) == values[position]
    print("point lookups verified at 3 positions")

    # A narrow range: touches exactly one chunk.
    start, stop = 95_000, 96_000
    t0 = time.perf_counter()
    window = reader.read_range(start, stop)
    narrow_seconds = time.perf_counter() - t0
    assert np.array_equal(window, values[start:stop])
    touched = (reader.chunk_for_element(stop - 1).index
               - reader.chunk_for_element(start).index + 1)
    print(f"range [{start}, {stop}): decoded {touched} of "
          f"{reader.n_chunks} chunks in {narrow_seconds * 1e3:.1f} ms")

    # Full decode for comparison (fresh reader: no warm cache).
    t0 = time.perf_counter()
    everything = ContainerReader(payload).read_range(0, N)
    full_seconds = time.perf_counter() - t0
    assert np.array_equal(everything, values)
    print(f"full decode: {full_seconds * 1e3:.1f} ms "
          f"({full_seconds / max(narrow_seconds, 1e-9):.0f}x the narrow "
          f"range read)")

    # Repeated queries over a hot region hit the chunk cache.
    t0 = time.perf_counter()
    for _ in range(100):
        reader.read_range(start, stop)
    cached_avg = (time.perf_counter() - t0) / 100
    print(f"hot-region repeat reads: {cached_avg * 1e6:.0f} us average "
          f"(chunk cache)")


if __name__ == "__main__":
    main()
