#!/usr/bin/env python
"""Quickstart: compress a hard-to-compress array with ISOBAR.

Generates a field-like double-precision array whose mantissa bytes are
noise (the hard-to-compress case the paper targets), then compares
standalone zlib against the ISOBAR-preconditioned pipeline under both
end-user preferences.

Run:  python examples/quickstart.py
"""

import time
import zlib

import numpy as np

from repro import IsobarCompressor, IsobarConfig, Preference, analyze
from repro.datasets import generate_dataset


def main() -> None:
    # A synthetic stand-in for the GTS checkpoint data: smooth physical
    # structure in the exponent bytes, pure noise in six mantissa bytes.
    data = generate_dataset("gts_chkp_zion", n_elements=200_000)
    raw = data.tobytes()
    print(f"input: {data.size} float64 elements ({data.nbytes / 1e6:.1f} MB)")

    # Step 1 - what does the analyzer see?
    verdict = analyze(data)
    print(f"analyzer: {verdict.summary()}")

    # Step 2 - baseline: plain zlib on the raw bytes.
    start = time.perf_counter()
    plain = zlib.compress(raw)
    plain_seconds = time.perf_counter() - start
    print(f"zlib alone      : ratio {len(raw) / len(plain):.3f}  "
          f"({data.nbytes / 1e6 / plain_seconds:.1f} MB/s)")

    # Step 3 - ISOBAR under both preferences.
    for preference in (Preference.RATIO, Preference.SPEED):
        compressor = IsobarCompressor(IsobarConfig(preference=preference))
        start = time.perf_counter()
        result = compressor.compress_detailed(data)
        seconds = time.perf_counter() - start
        restored = compressor.decompress(result.payload)
        assert np.array_equal(restored, data), "lossless round trip violated"
        print(f"ISOBAR ({preference.value:5s})  : ratio {result.ratio:.3f}  "
              f"({data.nbytes / 1e6 / seconds:.1f} MB/s)  "
              f"solver={result.decision.codec_name}, "
              f"linearization={result.decision.linearization.value}")

    print("round trips verified bit-exact.")


if __name__ == "__main__":
    main()
