"""ISOBAR: preconditioner for effective, high-throughput lossless compression.

Reproduction of Schendel, Jin, Shah et al., *"ISOBAR Preconditioner for
Effective and High-throughput Lossless Data Compression"* (ICDE 2012).

Quickstart::

    import numpy as np
    import repro

    data = np.random.default_rng(0).normal(size=100_000)
    blob = repro.compress(data, preference="speed")
    restored = repro.decompress(blob)
    assert np.array_equal(restored, data)

Streaming (constant memory, crash-safe writes)::

    with repro.open_stream("out.isbr", "w", dtype=np.float64) as writer:
        for chunk in chunks:
            writer.write_chunk(chunk)
    restored = np.concatenate(list(repro.open_stream("out.isbr")))

``repro.compress`` / ``repro.decompress`` / ``repro.open_stream`` are
the stable facade (see ``docs/api.md``); the legacy one-liners
``isobar_compress`` / ``isobar_decompress`` remain as deprecated
aliases.

The package splits into:

* :mod:`repro.core` — the paper's contribution: analyzer, partitioner,
  EUPA-selector, chunked workflow and container format;
* :mod:`repro.codecs` — the solver layer (zlib/bzip2/lzma) plus
  from-scratch FPC, fpzip-style and PFOR baselines;
* :mod:`repro.analysis` — entropy, bit/byte profiling, metrics;
* :mod:`repro.observability` — metrics registry, stage tracing and
  pipeline run reports (see ``docs/observability.md``);
* :mod:`repro.linearization` — Hilbert/Morton/column/random orderings;
* :mod:`repro.datasets` — synthetic stand-ins for the paper's 24
  scientific datasets;
* :mod:`repro.insitu` — a simulation + checkpoint substrate;
* :mod:`repro.bench` — the table/figure regeneration harness.
"""

from repro.api import (
    ERROR_POLICIES,
    compress,
    decompress,
    fsck,
    open_stream,
    plan,
)
from repro.core import (
    AnalysisResult,
    CompressionResult,
    ContainerFile,
    DegradationReport,
    EupaSelector,
    SelectorDecision,
    SelectorStrategy,
    IsobarCompressor,
    IsobarConfig,
    IsobarError,
    Linearization,
    Preference,
    ResiliencePolicy,
    SalvageReport,
    SalvageResult,
    analyze,
    isobar_compress,
    isobar_decompress,
    salvage_decompress,
)
from repro.observability import (
    MetricsRegistry,
    PipelineReport,
    Tracer,
    registry_from_json,
    to_json,
    to_prometheus_text,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "CompressionResult",
    "ContainerFile",
    "DegradationReport",
    "ERROR_POLICIES",
    "EupaSelector",
    "IsobarCompressor",
    "IsobarConfig",
    "IsobarError",
    "Linearization",
    "MetricsRegistry",
    "PipelineReport",
    "Preference",
    "ResiliencePolicy",
    "SalvageReport",
    "SalvageResult",
    "SelectorDecision",
    "SelectorStrategy",
    "Tracer",
    "analyze",
    "compress",
    "decompress",
    "fsck",
    "isobar_compress",
    "isobar_decompress",
    "open_stream",
    "plan",
    "registry_from_json",
    "salvage_decompress",
    "to_json",
    "to_prometheus_text",
    "__version__",
]
