"""Statistical analysis substrate: entropy, bit/byte profiling, metrics."""

from repro.analysis.bitfreq import (
    BitFrequencyProfile,
    bit_frequency_profile,
    bit_probabilities,
)
from repro.analysis.bytefreq import (
    byte_matrix,
    byte_view,
    column_entropies,
    column_frequencies,
    column_frequencies_reference,
    column_max_frequency,
    element_width,
    matrix_to_elements,
)
from repro.analysis.histcore import native_available, native_backend_description
from repro.analysis.entropy import (
    DatasetStatistics,
    byte_entropy,
    dataset_statistics,
    randomness_percent,
    shannon_entropy,
    unique_value_percent,
)
from repro.analysis.estimator import (
    SizeEstimate,
    column_entropy_bits,
    entropy_bound_bytes,
    estimate_partition_size,
    predict_partition_gain,
)
from repro.analysis.profile import DatasetProfile, profile_dataset
from repro.analysis.metrics import (
    CompressionMeasurement,
    Stopwatch,
    compression_ratio,
    delta_cr_percent,
    measure_call,
    speedup,
    throughput_mb_s,
)

__all__ = [
    "DatasetProfile",
    "profile_dataset",
    "SizeEstimate",
    "column_entropy_bits",
    "entropy_bound_bytes",
    "estimate_partition_size",
    "predict_partition_gain",
    "BitFrequencyProfile",
    "bit_frequency_profile",
    "bit_probabilities",
    "byte_matrix",
    "byte_view",
    "column_entropies",
    "column_frequencies",
    "column_frequencies_reference",
    "column_max_frequency",
    "element_width",
    "matrix_to_elements",
    "native_available",
    "native_backend_description",
    "DatasetStatistics",
    "byte_entropy",
    "dataset_statistics",
    "randomness_percent",
    "shannon_entropy",
    "unique_value_percent",
    "CompressionMeasurement",
    "Stopwatch",
    "compression_ratio",
    "delta_cr_percent",
    "measure_call",
    "speedup",
    "throughput_mb_s",
]
