"""Bit-position frequency profiling (Figure 1 of the paper).

For every bit position of a fixed-width element type, compute the
probability of the *more common* bit value at that position over the
whole dataset.  The profile ranges from 0.5 (the position is a fair
coin — pure noise) to 1.0 (the position is constant — fully
predictable).  The paper uses exactly this view to motivate ISOBAR:
hard-to-compress datasets have long runs of ~0.5 positions in the
mantissa bytes, while the exponent bytes sit near 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import InvalidInputError

__all__ = [
    "bit_probabilities",
    "BitFrequencyProfile",
    "bit_frequency_profile",
]


def _byte_matrix(values: np.ndarray) -> np.ndarray:
    """View an element array as an (N, width) uint8 matrix, big-endian.

    Big-endian byte order puts the sign/exponent byte first, matching
    the paper's "bit position 1..64" axis where low positions are the
    most predictable.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        raise InvalidInputError("cannot profile an empty array")
    flat = np.ascontiguousarray(arr.reshape(-1))
    big = flat.astype(flat.dtype.newbyteorder(">"), copy=False)
    return np.frombuffer(big.tobytes(), dtype=np.uint8).reshape(
        flat.size, flat.dtype.itemsize
    )


def bit_probabilities(values: np.ndarray) -> np.ndarray:
    """Probability of the more common bit value at each bit position.

    Returns an array of length ``8 * itemsize`` with entries in
    [0.5, 1.0].  Position 0 is the most significant bit of the first
    (sign/exponent) byte, matching Figure 1's x-axis.
    """
    matrix = _byte_matrix(values)
    bits = np.unpackbits(matrix, axis=1)  # (N, 8 * width), MSB first
    ones_fraction = bits.mean(axis=0)
    return np.maximum(ones_fraction, 1.0 - ones_fraction)


@dataclass(frozen=True)
class BitFrequencyProfile:
    """Figure 1 data for one dataset.

    Attributes
    ----------
    name:
        Dataset label.
    probabilities:
        Per-bit-position probability of the dominant value, length
        ``8 * element_width``.
    """

    name: str
    probabilities: np.ndarray

    @property
    def n_bits(self) -> int:
        """Number of bit positions per element."""
        return int(self.probabilities.size)

    def count_noisy(self, threshold: float = 0.51) -> int:
        """Positions whose dominant-value probability is below ``threshold``.

        True i.i.d. noise bits concentrate at ``0.5 + O(1/sqrt(N))``,
        while structured-but-balanced bits (a small pattern pool with
        skewed occupancy) drift noticeably above 0.51 for the sample
        sizes this library works with (N >= ~10 000).  This inability
        of bit-level statistics to separate the two cases cleanly is
        precisely why the paper's authoritative analyzer works at the
        byte level (Section II-A).
        """
        return int(np.count_nonzero(self.probabilities < threshold))

    @property
    def noisy_bits(self) -> int:
        """Count of positions that look like fair coins (p < 0.51)."""
        return self.count_noisy()

    @property
    def predictable_bits(self) -> int:
        """Count of positions that are nearly constant (p > 0.95)."""
        return int(np.count_nonzero(self.probabilities > 0.95))

    def byte_means(self) -> np.ndarray:
        """Average probability per byte (groups of 8 bit positions)."""
        return self.probabilities.reshape(-1, 8).mean(axis=1)

    def is_hard_to_compress(self, noise_fraction: float = 0.25) -> bool:
        """Heuristic Figure-1 classification.

        A dataset is *hard to compress* at the bit level when at least
        ``noise_fraction`` of its bit positions behave like fair coins.
        This mirrors the paper's qualitative reading of Figure 1 (it is
        a diagnostic only; the authoritative call is the byte-level
        ISOBAR-analyzer).
        """
        return self.noisy_bits >= noise_fraction * self.n_bits

    def render_ascii(self, width: int = 64) -> str:
        """Render the profile as a small ASCII sparkline for reports."""
        glyphs = " .:-=+*#%@"
        cells = np.interp(
            np.linspace(0, self.n_bits - 1, num=min(width, self.n_bits)),
            np.arange(self.n_bits),
            self.probabilities,
        )
        scaled = np.clip((cells - 0.5) * 2.0, 0.0, 1.0)
        indices = np.minimum(
            (scaled * (len(glyphs) - 1)).round().astype(int), len(glyphs) - 1
        )
        return "".join(glyphs[i] for i in indices)


def bit_frequency_profile(name: str, values: np.ndarray) -> BitFrequencyProfile:
    """Compute the Figure 1 bit-frequency profile for ``values``."""
    return BitFrequencyProfile(name=name, probabilities=bit_probabilities(values))
