"""Byte-column frequency analysis — the substrate of ISOBAR-analyzer.

The paper views an array of ``N`` fixed-width elements as an ``N x w``
matrix of bytes (Figure 3), where ``w`` is the element width.  Column
``j`` collects byte ``j`` of every element ("byte-column").  The
functions here build that matrix and its per-column 256-bin frequency
distributions; :mod:`repro.core.analyzer` layers the tolerance test on
top.

Byte order is normalised to little-endian so results are identical on
any host: column 0 is the least-significant byte and the last column
holds the sign/exponent bits of floating-point elements.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import InvalidInputError

__all__ = [
    "SUPPORTED_KINDS",
    "element_width",
    "byte_matrix",
    "matrix_to_elements",
    "column_frequencies",
    "column_max_frequency",
    "column_entropies",
]

#: dtype kinds the byte-level view supports: floats, signed/unsigned
#: integers.  (Complex/flexible types have no meaningful byte-column
#: semantics in the paper's framing.)
SUPPORTED_KINDS = frozenset("fiu")


def element_width(dtype: np.dtype) -> int:
    """Element width ``w`` in bytes, validating the dtype kind."""
    dt = np.dtype(dtype)
    if dt.kind not in SUPPORTED_KINDS:
        raise InvalidInputError(
            f"unsupported dtype {dt!r}; ISOBAR operates on fixed-width "
            "float/integer elements"
        )
    return dt.itemsize


def byte_matrix(values: np.ndarray) -> np.ndarray:
    """View ``values`` as an ``(N, w)`` uint8 matrix in little-endian order.

    The returned matrix owns contiguous memory (it is safe to mutate)
    and is platform independent: column 0 is always the
    least-significant byte of each element.
    """
    arr = np.asarray(values)
    width = element_width(arr.dtype)
    if arr.size == 0:
        raise InvalidInputError("cannot build a byte matrix from empty input")
    flat = np.ascontiguousarray(arr.reshape(-1))
    little = flat.astype(flat.dtype.newbyteorder("<"), copy=False)
    matrix = np.frombuffer(little.tobytes(), dtype=np.uint8)
    return matrix.reshape(flat.size, width).copy()


def matrix_to_elements(matrix: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`byte_matrix`: rebuild the element array.

    ``matrix`` must be ``(N, w)`` uint8 with ``w`` matching the dtype's
    item size; the result is returned in native byte order.
    """
    dt = np.dtype(dtype)
    width = element_width(dt)
    mat = np.ascontiguousarray(matrix, dtype=np.uint8)
    if mat.ndim != 2 or mat.shape[1] != width:
        raise InvalidInputError(
            f"byte matrix shape {mat.shape} does not match dtype {dt!r} "
            f"(expected (N, {width}))"
        )
    little = np.frombuffer(mat.tobytes(), dtype=dt.newbyteorder("<"))
    return little.astype(dt, copy=False)


def column_frequencies(matrix: np.ndarray) -> np.ndarray:
    """Per-column 256-bin byte-value histogram.

    Returns an ``(w, 256)`` int64 array where row ``j`` is the frequency
    distribution of byte-column ``j`` — exactly the "frequency counters"
    of Section II-A.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise InvalidInputError(
            f"expected a 2-D byte matrix, got shape {mat.shape}"
        )
    if mat.size == 0:
        raise InvalidInputError("cannot compute frequencies of an empty matrix")
    n, width = mat.shape
    # One bincount per column: measurably faster than any fused scheme
    # because it avoids widening the whole matrix to int64 (the
    # analyzer's hot path — this loop is the paper's "frequency
    # counters" and dominates TP_A).
    counts = np.empty((width, 256), dtype=np.int64)
    for column in range(width):
        counts[column] = np.bincount(mat[:, column], minlength=256)
    return counts


def column_max_frequency(matrix: np.ndarray) -> np.ndarray:
    """Highest single byte-value frequency in each column (length ``w``)."""
    return column_frequencies(matrix).max(axis=1)


def column_entropies(matrix: np.ndarray) -> np.ndarray:
    """Shannon entropy (bits/byte) of each byte-column (length ``w``).

    Columns near 8.0 bits are uniform noise — the hard-to-compress
    content ISOBAR extracts; columns near 0 are almost constant.
    """
    freqs = column_frequencies(matrix)
    n = freqs.sum(axis=1, keepdims=True).astype(np.float64)
    probs = freqs / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log2(probs), 0.0)
    return -terms.sum(axis=1)
