"""Byte-column frequency analysis — the substrate of ISOBAR-analyzer.

The paper views an array of ``N`` fixed-width elements as an ``N x w``
matrix of bytes (Figure 3), where ``w`` is the element width.  Column
``j`` collects byte ``j`` of every element ("byte-column").  The
functions here build that matrix and its per-column 256-bin frequency
distributions; :mod:`repro.core.analyzer` layers the tolerance test on
top.

Byte order is normalised to little-endian so results are identical on
any host: column 0 is the least-significant byte and the last column
holds the sign/exponent bits of floating-point elements.

Hot-path notes: :func:`byte_view` exposes the byte matrix as a
zero-copy view for native little-endian inputs (the common case on
every mainstream host), and :func:`column_frequencies` dispatches to
the compiled one-pass kernel of :mod:`repro.analysis.histcore` when it
is available, falling back to numpy (a pair-column ``uint16`` bincount
scheme, then the plain per-column loop retained as
:func:`column_frequencies_reference`).  All backends produce identical
counts, so analyzer masks never depend on which one served a run.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import histcore
from repro.core.exceptions import InvalidInputError

__all__ = [
    "SUPPORTED_KINDS",
    "element_width",
    "byte_matrix",
    "byte_view",
    "matrix_to_elements",
    "column_frequencies",
    "column_frequencies_reference",
    "column_max_frequency",
    "column_entropies",
]

#: dtype kinds the byte-level view supports: floats, signed/unsigned
#: integers.  (Complex/flexible types have no meaningful byte-column
#: semantics in the paper's framing.)
SUPPORTED_KINDS = frozenset("fiu")

_NATIVE_LITTLE = sys.byteorder == "little"

#: Below this row count the ``uint16`` pair-column scheme loses to the
#: plain loop (its 65 536-bin histograms dominate the cost).
_PAIR_MIN_ROWS = 1 << 15


def element_width(dtype: np.dtype) -> int:
    """Element width ``w`` in bytes, validating the dtype kind."""
    dt = np.dtype(dtype)
    if dt.kind not in SUPPORTED_KINDS:
        raise InvalidInputError(
            f"unsupported dtype {dt!r}; ISOBAR operates on fixed-width "
            "float/integer elements"
        )
    return dt.itemsize


def _is_little_endian(dtype: np.dtype) -> bool:
    order = dtype.byteorder
    return order == "<" or order == "|" or (order == "=" and _NATIVE_LITTLE)


def byte_view(values: np.ndarray) -> np.ndarray:
    """View ``values`` as an ``(N, w)`` uint8 matrix in little-endian order.

    Zero-copy whenever the input is already little-endian and
    contiguous (the common case); byte-swapped or strided inputs fall
    back to :func:`byte_matrix` (one copy).  The result may therefore
    share memory with ``values`` and must be treated as read-only.
    """
    arr = np.asarray(values)
    width = element_width(arr.dtype)
    if arr.size == 0:
        raise InvalidInputError("cannot build a byte matrix from empty input")
    if _is_little_endian(arr.dtype) or width == 1:
        flat = arr.reshape(-1)
        if flat.flags.c_contiguous:
            return flat.view(np.uint8).reshape(flat.size, width)
    return byte_matrix(arr)


def byte_matrix(values: np.ndarray) -> np.ndarray:
    """Copy ``values`` into an ``(N, w)`` uint8 little-endian matrix.

    The returned matrix owns contiguous memory (it is safe to mutate)
    and is platform independent: column 0 is always the
    least-significant byte of each element.  Prefer :func:`byte_view`
    on hot paths that only read the matrix.
    """
    arr = np.asarray(values)
    width = element_width(arr.dtype)
    if arr.size == 0:
        raise InvalidInputError("cannot build a byte matrix from empty input")
    flat = np.ascontiguousarray(arr.reshape(-1))
    little = np.ascontiguousarray(
        flat.astype(flat.dtype.newbyteorder("<"), copy=False)
    )
    return little.view(np.uint8).reshape(flat.size, width).copy()


def matrix_to_elements(matrix: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`byte_matrix`: rebuild the element array.

    ``matrix`` must be ``(N, w)`` uint8 with ``w`` matching the dtype's
    item size; the result is returned in native byte order.  Zero-copy
    for contiguous input on little-endian hosts — the returned array
    may share memory with ``matrix``.
    """
    dt = np.dtype(dtype)
    width = element_width(dt)
    mat = np.ascontiguousarray(matrix, dtype=np.uint8)
    if mat.ndim != 2 or mat.shape[1] != width:
        raise InvalidInputError(
            f"byte matrix shape {mat.shape} does not match dtype {dt!r} "
            f"(expected (N, {width}))"
        )
    little = mat.reshape(-1).view(dt.newbyteorder("<"))
    return little.astype(dt, copy=False)


def _validate_matrix(matrix: np.ndarray) -> np.ndarray:
    mat = np.asarray(matrix)
    if mat.ndim != 2:
        raise InvalidInputError(
            f"expected a 2-D byte matrix, got shape {mat.shape}"
        )
    if mat.size == 0:
        raise InvalidInputError("cannot compute frequencies of an empty matrix")
    return mat


def column_frequencies_reference(matrix: np.ndarray) -> np.ndarray:
    """Reference per-column histogram: one ``np.bincount`` per column.

    This is the original (pre-kernel) implementation, retained verbatim
    as the correctness oracle and the baseline the perf smoke test
    measures the dispatching :func:`column_frequencies` against.
    """
    mat = _validate_matrix(matrix)
    n, width = mat.shape
    counts = np.empty((width, 256), dtype=np.int64)
    for column in range(width):
        counts[column] = np.bincount(mat[:, column], minlength=256)
    return counts


def _column_frequencies_pairs(mat: np.ndarray) -> np.ndarray:
    """Numpy fallback: histogram byte *pairs* as uint16, fold to bytes.

    Viewing two adjacent columns as one little-endian ``uint16`` column
    halves the number of strided passes over the matrix; each 65 536-bin
    histogram folds into the two 256-bin byte histograms by summing the
    ``(hi, lo)`` table along each axis.
    """
    n, width = mat.shape
    pairs = mat.view(np.uint16)
    counts = np.empty((width, 256), dtype=np.int64)
    for j in range(width // 2):
        table = np.bincount(pairs[:, j], minlength=65536).reshape(256, 256)
        counts[2 * j] = table.sum(axis=0)      # low byte of the pair
        counts[2 * j + 1] = table.sum(axis=1)  # high byte of the pair
    return counts


def column_frequencies(matrix: np.ndarray) -> np.ndarray:
    """Per-column 256-bin byte-value histogram.

    Returns an ``(w, 256)`` int64 array where row ``j`` is the frequency
    distribution of byte-column ``j`` — exactly the "frequency counters"
    of Section II-A.  Dispatches to the fastest available backend
    (compiled kernel, ``uint16`` pair scheme, per-column loop); all
    produce identical counts.
    """
    mat = _validate_matrix(matrix)
    if mat.dtype == np.uint8:
        counts = histcore.column_frequencies_native(mat)
        if counts is not None:
            return counts
        n, width = mat.shape
        if (
            _NATIVE_LITTLE  # the uint16 view reads pairs as (lo, hi)
            and width % 2 == 0
            and n >= _PAIR_MIN_ROWS
            and mat.flags.c_contiguous
        ):
            return _column_frequencies_pairs(mat)
    return column_frequencies_reference(mat)


def column_max_frequency(matrix: np.ndarray) -> np.ndarray:
    """Highest single byte-value frequency in each column (length ``w``)."""
    return column_frequencies(matrix).max(axis=1)


def column_entropies(matrix: np.ndarray) -> np.ndarray:
    """Shannon entropy (bits/byte) of each byte-column (length ``w``).

    Columns near 8.0 bits are uniform noise — the hard-to-compress
    content ISOBAR extracts; columns near 0 are almost constant.
    """
    freqs = column_frequencies(matrix)
    n = freqs.sum(axis=1, keepdims=True).astype(np.float64)
    probs = freqs / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log2(probs), 0.0)
    return -terms.sum(axis=1)
