"""Statistical characterisation of datasets (Table III of the paper).

Implements:

* Eq. 4 — unique-value percentage,
* Eq. 5 — Shannon entropy over element values,
* Eq. 6 — randomness: the ratio of a vector's Shannon entropy to that of
  a same-length vector of all-unique elements.

For Eq. 6 the paper compares against ``H(Random(|V|))``; a random vector
with all-unique elements has the maximal entropy ``log2(|V|)``, so that
value is used directly instead of sampling an actual random vector.
Byte-level entropy helpers used by the analyzer diagnostics also live
here.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import InvalidInputError

__all__ = [
    "unique_value_percent",
    "shannon_entropy",
    "randomness_percent",
    "byte_entropy",
    "dataset_statistics",
    "DatasetStatistics",
]


def _as_1d_array(values: np.ndarray) -> np.ndarray:
    arr = np.asarray(values)
    if arr.size == 0:
        raise InvalidInputError("cannot compute statistics of an empty array")
    return arr.reshape(-1)


def unique_value_percent(values: np.ndarray) -> float:
    """Percentage of distinct element values (Eq. 4).

    100.0 means every element is unique; values near zero indicate a
    small dictionary of repeated values (e.g. the paper's
    ``num_plasma`` at 0.3%).
    """
    arr = _as_1d_array(values)
    # View floats as raw bits so that distinct NaN payloads and +/-0.0
    # count as written, matching a bit-exact lossless perspective.
    if arr.dtype.kind == "f":
        arr = arr.view(f"u{arr.dtype.itemsize}")
    return 100.0 * np.unique(arr).size / arr.size


def shannon_entropy(values: np.ndarray) -> float:
    """Shannon entropy in bits over the element-value distribution (Eq. 5)."""
    arr = _as_1d_array(values)
    if arr.dtype.kind == "f":
        arr = arr.view(f"u{arr.dtype.itemsize}")
    _, counts = np.unique(arr, return_counts=True)
    probs = counts / arr.size
    return float(-np.sum(probs * np.log2(probs)))


def randomness_percent(values: np.ndarray) -> float:
    """Randomness of the vector relative to an all-unique vector (Eq. 6).

    A truly random vector of ``n`` unique elements has entropy
    ``log2(n)``; the randomness score is the observed entropy as a
    percentage of that maximum.  The paper reports 100% for datasets
    like ``flash_velx`` and 44.9% for the repetitive ``msg_sppm``.
    """
    arr = _as_1d_array(values)
    if arr.size == 1:
        # A single element carries no information either way; by
        # convention it is fully determined, hence zero randomness.
        return 0.0
    max_entropy = float(np.log2(arr.size))
    return 100.0 * shannon_entropy(arr) / max_entropy


def byte_entropy(buffer: bytes | np.ndarray) -> float:
    """Shannon entropy in bits/byte of a raw byte buffer.

    This is the quantity entropy-coding solvers are bounded by; 8.0
    means perfectly uniform bytes (incompressible), small values mean a
    skewed byte distribution.
    """
    arr = np.frombuffer(buffer, dtype=np.uint8) if isinstance(
        buffer, (bytes, bytearray, memoryview)
    ) else np.asarray(buffer, dtype=np.uint8).reshape(-1)
    if arr.size == 0:
        raise InvalidInputError("cannot compute entropy of an empty buffer")
    counts = np.bincount(arr, minlength=256)
    probs = counts[counts > 0] / arr.size
    return float(-np.sum(probs * np.log2(probs)))


class DatasetStatistics:
    """Table III row for one dataset: size, uniqueness, entropy, randomness."""

    __slots__ = (
        "name",
        "dtype",
        "n_elements",
        "size_mb",
        "unique_percent",
        "entropy_bits",
        "randomness",
    )

    def __init__(self, name: str, values: np.ndarray):
        arr = _as_1d_array(values)
        self.name = name
        self.dtype = str(arr.dtype)
        self.n_elements = int(arr.size)
        self.size_mb = arr.nbytes / 1_000_000.0
        self.unique_percent = unique_value_percent(arr)
        self.entropy_bits = shannon_entropy(arr)
        self.randomness = randomness_percent(arr)

    def as_row(self) -> tuple:
        """Columns in the order Table III prints them."""
        return (
            self.name,
            self.dtype,
            round(self.size_mb, 1),
            round(self.n_elements / 1e6, 2),
            round(self.unique_percent, 1),
            round(self.entropy_bits, 2),
            round(self.randomness, 1),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatasetStatistics(name={self.name!r}, dtype={self.dtype}, "
            f"n={self.n_elements}, unique={self.unique_percent:.1f}%, "
            f"H={self.entropy_bits:.2f}, randomness={self.randomness:.1f}%)"
        )


def dataset_statistics(name: str, values: np.ndarray) -> DatasetStatistics:
    """Compute the full Table III statistics row for ``values``."""
    return DatasetStatistics(name, values)
