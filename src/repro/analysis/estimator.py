"""Compressed-size estimation from byte statistics (analyzer theory).

The ISOBAR-analyzer decides *whether* a byte-column is worth
compressing from its histogram; this module pushes the same statistics
one step further and predicts *how much* a given partition will save,
without running a solver at all:

* the order-0 entropy bound per byte-column (Shannon) gives the best
  any entropy coder can do on that column in isolation;
* summing signal-column bounds plus raw noise-column cost yields a
  predicted container size for any candidate mask;
* :func:`predict_partition_gain` compares the analyzer's mask against
  the compress-everything alternative on pure statistics.

Real solvers beat the order-0 bound when cross-byte correlations exist
(LZ77 matches, BWT contexts), so predictions are conservative for
structured data — the tests and the ``estimator`` benchmark quantify
the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bytefreq import byte_matrix, column_frequencies
from repro.core.analyzer import AnalysisResult, analyze
from repro.core.exceptions import InvalidInputError

__all__ = [
    "column_entropy_bits",
    "entropy_bound_bytes",
    "SizeEstimate",
    "estimate_partition_size",
    "predict_partition_gain",
]


def column_entropy_bits(matrix: np.ndarray) -> np.ndarray:
    """Order-0 Shannon entropy (bits/byte) of each byte-column."""
    frequencies = column_frequencies(matrix)
    n = frequencies.sum(axis=1, keepdims=True).astype(np.float64)
    probs = frequencies / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log2(probs), 0.0)
    return -terms.sum(axis=1)


def entropy_bound_bytes(matrix: np.ndarray, mask: np.ndarray) -> float:
    """Minimum bytes an order-0 coder needs for the masked columns.

    ``mask`` selects the columns routed through the solver; the bound
    is ``sum(N * H_j / 8)`` over selected columns ``j``.
    """
    mask_arr = np.asarray(mask, dtype=bool)
    if mask_arr.shape != (matrix.shape[1],):
        raise InvalidInputError(
            f"mask length {mask_arr.size} does not match width "
            f"{matrix.shape[1]}"
        )
    entropies = column_entropy_bits(matrix)
    n_elements = matrix.shape[0]
    return float(n_elements * entropies[mask_arr].sum() / 8.0)


@dataclass(frozen=True)
class SizeEstimate:
    """Predicted container composition for one (data, mask) pair."""

    n_elements: int
    element_width: int
    compressed_bound_bytes: float
    raw_noise_bytes: int

    @property
    def original_bytes(self) -> int:
        """Uncompressed input size."""
        return self.n_elements * self.element_width

    @property
    def total_bytes(self) -> float:
        """Predicted stored size (entropy bound + raw noise)."""
        return self.compressed_bound_bytes + self.raw_noise_bytes

    @property
    def predicted_ratio(self) -> float:
        """Predicted compression ratio (Eq. 1) at the order-0 bound."""
        if self.total_bytes <= 0:
            return float("inf")
        return self.original_bytes / self.total_bytes


def estimate_partition_size(
    values: np.ndarray, mask: np.ndarray | None = None
) -> SizeEstimate:
    """Predict the stored size of partitioning ``values`` by ``mask``.

    With ``mask=None`` the analyzer's own mask is used.  Columns inside
    the mask are costed at their order-0 entropy bound; columns outside
    it are costed verbatim (1 byte per element), exactly how the
    partitioner stores them.
    """
    matrix = byte_matrix(values)
    if mask is None:
        mask = analyze(values).mask
    mask_arr = np.asarray(mask, dtype=bool)
    bound = entropy_bound_bytes(matrix, mask_arr)
    raw = int(matrix.shape[0] * np.count_nonzero(~mask_arr))
    return SizeEstimate(
        n_elements=int(matrix.shape[0]),
        element_width=int(matrix.shape[1]),
        compressed_bound_bytes=bound,
        raw_noise_bytes=raw,
    )


def predict_partition_gain(values: np.ndarray) -> tuple[float, AnalysisResult]:
    """Predicted ratio advantage of partitioning over compress-everything.

    Returns ``(gain, analysis)`` where ``gain`` is the predicted
    partitioned ratio divided by the predicted whole-stream ratio —
    both at the order-0 bound.  At this bound the partition can never
    *predict* better than compressing everything (raw storage costs a
    full byte while entropy ≤ 8 bits); the partition's real-world win
    is solver throughput and the removal of noise that *degrades*
    adaptive solvers, so gains near 1.0 mean "partitioning is
    statistically free" — the paper's precondition for speed-ups
    without ratio loss.
    """
    analysis = analyze(values)
    matrix = byte_matrix(values)
    partitioned = estimate_partition_size(values, analysis.mask)
    everything = estimate_partition_size(
        values, np.ones(matrix.shape[1], dtype=bool)
    )
    return partitioned.predicted_ratio / everything.predicted_ratio, analysis
