"""Cheap content features for predict-first selector decisions.

The EUPA-selector times every (codec, linearization) candidate on a
sample — robust, but a full compression probe per decision.  The
learned selector (:mod:`repro.core.selector_learned`) instead predicts
each candidate's (ratio, throughput) from a handful of statistics that
are one to two orders of magnitude cheaper than a probe:

* per-byte-column Shannon entropies and frequency moments, computed
  from the same histogram the analyzer uses — via
  :func:`repro.analysis.bytefreq.column_frequencies`, which dispatches
  to the native histcore kernel when it is available;
* byte run-length statistics (how repetitive the raw stream is —
  LZ77-family solvers feed on exactly this);
* element delta statistics (smooth simulation variables have tiny
  first differences even when their absolute bytes look busy).

:class:`ContentFeatures` carries the raw statistics, exposes the
regressor input as :meth:`vector`, and quantizes itself into a stable
:meth:`cache_key` so near-identical payloads land on the same
decision-cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bytefreq import byte_view, column_frequencies
from repro.core.exceptions import InvalidInputError

__all__ = [
    "ContentFeatures",
    "FEATURE_NAMES",
    "extract_features",
]

#: Names of :meth:`ContentFeatures.vector` entries, in order.  The
#: vector length is API for the online regressor's weight storage.
FEATURE_NAMES = (
    "bias",
    "mean_entropy",
    "min_entropy",
    "max_entropy",
    "noisy_column_fraction",
    "quiet_column_fraction",
    "mean_top_frequency",
    "mean_collision",
    "byte_run_shortness",
    "element_repeat_fraction",
    "delta_small_fraction",
    "log2_element_width",
)

#: Byte-columns with at least this entropy (bits) count as noise.
_NOISY_BITS = 7.5

#: Byte-columns below this entropy (bits) count as near-constant.
_QUIET_BITS = 1.0


@dataclass(frozen=True)
class ContentFeatures:
    """Summary statistics of one sample, cheap enough to always compute.

    All fields are plain floats in stable ranges (entropies in bits,
    fractions in ``[0, 1]``), so the feature vector needs no further
    scaling before entering the regressor.
    """

    n_elements: int
    element_width: int
    #: Per-byte-column Shannon entropy in bits (length ``element_width``).
    column_entropy_bits: tuple[float, ...]
    #: Per-column max-frequency fraction (the analyzer's core statistic).
    column_top_frequency: tuple[float, ...]
    #: Per-column collision probability ``sum(p^2)`` (second moment).
    column_collision: tuple[float, ...]
    #: ``1 / mean byte run length`` over the flattened byte stream.
    byte_run_shortness: float
    #: Fraction of consecutive elements that repeat exactly.
    element_repeat_fraction: float
    #: Fraction of near-zero most-significant-byte first differences.
    delta_small_fraction: float

    @property
    def mean_entropy(self) -> float:
        """Mean per-column entropy in bits."""
        return float(np.mean(self.column_entropy_bits))

    @property
    def noisy_column_fraction(self) -> float:
        """Fraction of columns at noise-level entropy (>= 7.5 bits)."""
        cols = self.column_entropy_bits
        return sum(1 for e in cols if e >= _NOISY_BITS) / len(cols)

    @property
    def quiet_column_fraction(self) -> float:
        """Fraction of near-constant columns (< 1 bit of entropy)."""
        cols = self.column_entropy_bits
        return sum(1 for e in cols if e < _QUIET_BITS) / len(cols)

    def vector(self) -> tuple[float, ...]:
        """The regressor input, ordered as :data:`FEATURE_NAMES`."""
        cols = self.column_entropy_bits
        return (
            1.0,
            self.mean_entropy / 8.0,
            min(cols) / 8.0,
            max(cols) / 8.0,
            self.noisy_column_fraction,
            self.quiet_column_fraction,
            float(np.mean(self.column_top_frequency)),
            float(np.mean(self.column_collision)),
            self.byte_run_shortness,
            self.element_repeat_fraction,
            self.delta_small_fraction,
            float(np.log2(self.element_width)) / 4.0,
        )

    def cache_key(self, *, decimals: int = 2) -> tuple:
        """A hashable, quantized content fingerprint.

        Rounding to ``decimals`` buckets near-identical payloads (same
        variable, adjacent timesteps) onto one decision-cache entry
        while payloads with genuinely different statistics land apart.
        The exact element count is intentionally excluded — the
        decision depends on the data's shape, not its length — but the
        element width is part of the key.
        """
        rounded = tuple(round(v, decimals) for v in self.vector()[1:])
        return (self.element_width,) + rounded


def _byte_run_shortness(flat_bytes: np.ndarray) -> float:
    """``1 / mean run length`` of equal consecutive bytes (in ``(0, 1]``)."""
    if flat_bytes.size < 2:
        return 1.0
    boundaries = int(np.count_nonzero(np.diff(flat_bytes))) + 1
    return boundaries / flat_bytes.size


def extract_features(values: np.ndarray) -> ContentFeatures:
    """Compute :class:`ContentFeatures` for a (sample of a) stream.

    Cost is dominated by one histogram pass over the sample bytes (the
    histcore kernel when available) plus two vectorised difference
    passes — far below a single candidate compression probe.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        raise InvalidInputError("cannot extract features from an empty array")
    matrix = byte_view(arr.reshape(-1))
    n, width = matrix.shape

    freqs = column_frequencies(matrix).astype(np.float64)
    probs = freqs / n
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log2(probs), 0.0)
    entropies = -terms.sum(axis=1)
    top = probs.max(axis=1)
    collision = (probs * probs).sum(axis=1)

    flat_bytes = matrix.reshape(-1)
    run_shortness = _byte_run_shortness(flat_bytes)

    if n < 2:
        repeat_fraction = 0.0
        delta_small = 0.0
    else:
        changed = np.any(matrix[1:] != matrix[:-1], axis=1)
        repeat_fraction = 1.0 - (
            int(np.count_nonzero(changed)) / (n - 1)
        )
        # Most-significant byte-column of the first differences: for
        # little-endian fixed-width elements this is the last column,
        # and |delta| <= 1 there means neighbouring elements share
        # their coarse magnitude (smooth data partitions well).
        msb = matrix[:, -1].astype(np.int16)
        delta = np.abs(np.diff(msb))
        delta_small = int(np.count_nonzero(delta <= 1)) / (n - 1)

    return ContentFeatures(
        n_elements=int(n),
        element_width=int(width),
        column_entropy_bits=tuple(float(e) for e in entropies),
        column_top_frequency=tuple(float(t) for t in top),
        column_collision=tuple(float(c) for c in collision),
        byte_run_shortness=float(run_shortness),
        element_repeat_fraction=float(repeat_fraction),
        delta_small_fraction=float(delta_small),
    )
