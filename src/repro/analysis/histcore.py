"""Native byte-column histogram kernel (compile-on-first-use).

The analyzer's hot loop — one 256-bin histogram per byte-column of an
``N x w`` uint8 matrix — is memory-bandwidth bound, and no pure-numpy
formulation beats a single fused C pass over the matrix (``bincount``
per column walks the matrix ``w`` times with strided reads; fused
``bincount`` schemes pay for widening every byte to int64 first).

This module compiles a ~20-line C kernel with the system C compiler the
first time it is needed, caches the shared object keyed by a hash of
the source, and binds it through :mod:`ctypes`.  Everything degrades
gracefully: no compiler, a failed compilation, or the
``ISOBAR_NATIVE_HIST=0`` kill switch simply leaves
:func:`native_available` false and callers fall back to numpy
(:func:`repro.analysis.bytefreq.column_frequencies` dispatches).

The kernel is exact — it computes the same int64 counts as the numpy
reference — so analyzer masks (and therefore container bytes) are
bit-identical whichever backend serves a run.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

__all__ = [
    "native_available",
    "native_backend_description",
    "column_frequencies_native",
]

#: Kill switch: set ``ISOBAR_NATIVE_HIST=0`` to force the numpy paths
#: (useful for benchmarking the fallbacks and on locked-down hosts).
_ENV_SWITCH = "ISOBAR_NATIVE_HIST"

# Per-column counters are uint32 (one cache-line-friendly 16x256 block
# lives on the stack); the Python wrapper enforces n < 2**32 so they
# cannot wrap.  Wide elements (w > 16) take the direct-to-int64 path.
_SOURCE = r"""
#include <stdint.h>
#include <string.h>

void byte_column_hist(const uint8_t *data, int64_t n, int64_t w,
                      int64_t *out)
{
    if (w <= 16) {
        uint32_t local[16][256];
        memset(local, 0, (size_t)w * 256 * sizeof(uint32_t));
        const uint8_t *p = data;
        for (int64_t i = 0; i < n; i++) {
            for (int64_t c = 0; c < w; c++)
                local[c][p[c]]++;
            p += w;
        }
        for (int64_t c = 0; c < w; c++)
            for (int v = 0; v < 256; v++)
                out[c * 256 + v] += (int64_t)local[c][v];
    } else {
        for (int64_t i = 0; i < n; i++) {
            const uint8_t *p = data + i * w;
            for (int64_t c = 0; c < w; c++)
                out[c * 256 + p[c]]++;
        }
    }
}
"""

_lock = threading.Lock()
#: None = not attempted yet; False = attempted and unavailable;
#: otherwise the bound ctypes function.
_kernel: object = None
_description = "uninitialised"


def _cache_path() -> str:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache_dir = os.environ.get("ISOBAR_NATIVE_CACHE") or os.path.join(
        tempfile.gettempdir(), f"isobar-native-{os.getuid()}"
    )
    return os.path.join(cache_dir, f"histcore-{digest}.so")


def _find_compiler() -> str | None:
    for name in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if name and shutil.which(name):
            return name
    return None


def _compile(so_path: str, compiler: str) -> None:
    os.makedirs(os.path.dirname(so_path), exist_ok=True)
    with tempfile.TemporaryDirectory(prefix="isobar-histcore-") as build:
        c_path = os.path.join(build, "histcore.c")
        tmp_so = os.path.join(build, "histcore.so")
        with open(c_path, "w", encoding="utf-8") as handle:
            handle.write(_SOURCE)
        subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", c_path, "-o", tmp_so],
            check=True,
            capture_output=True,
            timeout=120,
        )
        # Atomic publish so concurrent first-users never load a
        # half-written object.
        os.replace(tmp_so, so_path)


def _load() -> None:
    """Bind the kernel, compiling it if the cached .so is missing."""
    global _kernel, _description
    if os.environ.get(_ENV_SWITCH, "1") in ("0", "false", "no"):
        _kernel, _description = False, "disabled via ISOBAR_NATIVE_HIST=0"
        return
    so_path = _cache_path()
    try:
        if not os.path.exists(so_path):
            compiler = _find_compiler()
            if compiler is None:
                _kernel, _description = False, "no C compiler found"
                return
            _compile(so_path, compiler)
        lib = ctypes.CDLL(so_path)
        fn = lib.byte_column_hist
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_uint8),
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.POINTER(ctypes.c_int64),
        ]
        fn.restype = None
    except Exception as exc:  # noqa: BLE001 - any failure means fallback
        _kernel = False
        _description = f"unavailable ({type(exc).__name__}: {exc})"
        return
    _kernel = fn
    _description = f"native ({so_path})"


def _get_kernel() -> object:
    if _kernel is None:
        with _lock:
            if _kernel is None:
                _load()
    return _kernel


def native_available() -> bool:
    """True when the compiled kernel is loaded (or loadable)."""
    return bool(_get_kernel())


def native_backend_description() -> str:
    """Human-readable backend state, for diagnostics and benchmarks."""
    _get_kernel()
    return _description


def column_frequencies_native(matrix: np.ndarray) -> np.ndarray | None:
    """Per-column 256-bin histogram via the C kernel.

    Returns ``None`` when the kernel is unavailable or the matrix is
    ineligible (not C-contiguous uint8, or too large for the uint32
    per-column counters) — callers fall back to the numpy paths.
    """
    fn = _get_kernel()
    if not fn:
        return None
    if (
        matrix.dtype != np.uint8
        or matrix.ndim != 2
        or not matrix.flags.c_contiguous
        or matrix.shape[0] >= 1 << 32
    ):
        return None
    n, width = matrix.shape
    out = np.zeros((width, 256), dtype=np.int64)
    fn(
        matrix.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
        n,
        width,
        out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
    )
    return out
