"""Performance metrics used throughout the paper's evaluation.

Implements the paper's equations:

* Eq. 1 — compression ratio ``CR = original_size / compressed_size``
* Eq. 2 — speed-up ``Sp = throughput_isobar / throughput_standard``
* Eq. 3 — ratio improvement ``dCR = (CR_isobar / CR_standard - 1) * 100%``

plus the throughput bookkeeping (MB/s over the *original* data size, as
the paper reports) and a :class:`Stopwatch` helper for consistent wall
clock measurement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.core.exceptions import InvalidInputError

_T = TypeVar("_T")

__all__ = [
    "MEGABYTE",
    "compression_ratio",
    "delta_cr_percent",
    "speedup",
    "throughput_mb_s",
    "Stopwatch",
    "CompressionMeasurement",
    "measure_call",
]

#: The paper reports throughput in decimal megabytes per second.
MEGABYTE = 1_000_000.0


def compression_ratio(original_size: int, compressed_size: int) -> float:
    """Compression ratio (Eq. 1): original size over compressed size.

    Values above 1.0 mean the data shrank.  Raises
    :class:`InvalidInputError` for non-positive sizes, which would make
    the ratio meaningless.
    """
    if original_size <= 0:
        raise InvalidInputError(
            f"original_size must be positive, got {original_size}"
        )
    if compressed_size <= 0:
        raise InvalidInputError(
            f"compressed_size must be positive, got {compressed_size}"
        )
    return original_size / compressed_size


def delta_cr_percent(cr_isobar: float, cr_standard: float) -> float:
    """Percentage compression-ratio improvement (Eq. 3).

    Positive values mean ISOBAR compressed better than the standard
    (best alternative) compressor.
    """
    if cr_standard <= 0:
        raise InvalidInputError(
            f"cr_standard must be positive, got {cr_standard}"
        )
    return (cr_isobar / cr_standard - 1.0) * 100.0


def speedup(throughput_isobar: float, throughput_standard: float) -> float:
    """Throughput speed-up (Eq. 2) of ISOBAR over the standard solver."""
    if throughput_standard <= 0:
        raise InvalidInputError(
            f"throughput_standard must be positive, got {throughput_standard}"
        )
    return throughput_isobar / throughput_standard


def throughput_mb_s(n_bytes: int, seconds: float) -> float:
    """Throughput in MB/s over ``n_bytes`` of *original* data.

    The paper always normalises by the uncompressed size, for both the
    compression and decompression direction.  A zero-duration interval
    (possible for tiny inputs on a coarse clock) returns ``inf`` rather
    than raising, because it only ever happens when the work was too
    cheap to measure.
    """
    if n_bytes < 0:
        raise InvalidInputError(f"n_bytes must be non-negative, got {n_bytes}")
    if seconds < 0:
        raise InvalidInputError(f"seconds must be non-negative, got {seconds}")
    if seconds == 0.0:
        return float("inf")
    return (n_bytes / MEGABYTE) / seconds


class Stopwatch:
    """Minimal context-manager stopwatch around ``time.perf_counter``.

    Usage::

        with Stopwatch() as sw:
            work()
        print(sw.seconds)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.seconds: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None, "Stopwatch exited without entering"
        self.seconds = time.perf_counter() - self._start


@dataclass(frozen=True)
class CompressionMeasurement:
    """One timed (de)compression run expressed in the paper's metrics.

    Attributes
    ----------
    original_bytes:
        Size of the uncompressed data.
    compressed_bytes:
        Size of the produced container / compressed buffer.
    compress_seconds / decompress_seconds:
        Wall-clock durations of each direction.
    """

    original_bytes: int
    compressed_bytes: int
    compress_seconds: float
    decompress_seconds: float = 0.0

    @property
    def ratio(self) -> float:
        """Compression ratio (Eq. 1)."""
        return compression_ratio(self.original_bytes, self.compressed_bytes)

    @property
    def compress_throughput(self) -> float:
        """Compression throughput in MB/s over the original size."""
        return throughput_mb_s(self.original_bytes, self.compress_seconds)

    @property
    def decompress_throughput(self) -> float:
        """Decompression throughput in MB/s over the original size."""
        return throughput_mb_s(self.original_bytes, self.decompress_seconds)


def measure_call(
    fn: Callable[..., _T], *args: Any, repeat: int = 1, **kwargs: Any
) -> tuple[_T, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(result, best_seconds)``.

    With ``repeat > 1`` the call is executed several times and the best
    (smallest) duration is kept, the convention benchmark harnesses use
    to suppress scheduler noise.  The result of the final call is
    returned.
    """
    if repeat < 1:
        raise InvalidInputError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return result, best
