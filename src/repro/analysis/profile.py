"""Complete compressibility profile of a dataset (one-stop diagnosis).

Combines every analysis tool in this package into one structured
record — the report a user wants before deciding how to store a
dataset:

* Table III statistics (uniqueness, entropy, randomness);
* the Figure 1 bit-frequency profile;
* the ISOBAR-analyzer verdict (mask, HTC share, improvable);
* the order-0 size estimate for the analyzer's partition;
* per-byte-column detail rows (max frequency, entropy, classification).

``render()`` produces the text report the CLI's ``analyze --full`` mode
prints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bitfreq import BitFrequencyProfile, bit_frequency_profile
from repro.analysis.bytefreq import byte_matrix
from repro.analysis.entropy import DatasetStatistics, dataset_statistics
from repro.analysis.estimator import SizeEstimate, estimate_partition_size
from repro.core.analyzer import AnalysisResult, analyze

__all__ = ["DatasetProfile", "profile_dataset"]


@dataclass(frozen=True)
class DatasetProfile:
    """Everything the analysis stack knows about one dataset."""

    name: str
    statistics: DatasetStatistics
    bit_profile: BitFrequencyProfile
    analysis: AnalysisResult
    estimate: SizeEstimate

    @property
    def recommendation(self) -> str:
        """One-line storage recommendation derived from the verdict."""
        if self.analysis.improvable:
            return (
                f"improvable: partition {self.analysis.n_incompressible} "
                f"noise byte-column(s), predicted ratio "
                f"{self.estimate.predicted_ratio:.3f}"
            )
        if self.statistics.randomness > 95.0 and not self.analysis.hard_to_compress:
            return "undetermined: high-entropy but structured; compress whole"
        if self.analysis.mask.all():
            return "undetermined: every byte-column compressible; compress whole"
        return "undetermined: every byte-column noise; storage-bound data"

    def column_rows(self) -> list[list[object]]:
        """Per-byte-column detail (for tables)."""
        rows = []
        for column in range(self.analysis.element_width):
            rows.append([
                column,
                int(self.analysis.column_max_frequencies[column]),
                float(self.analysis.column_entropy_bits[column]),
                "signal" if self.analysis.mask[column] else "noise",
            ])
        return rows

    def render(self) -> str:
        """Multi-section text report."""
        stats = self.statistics
        lines = [
            f"=== compressibility profile: {self.name} ===",
            f"elements        : {stats.n_elements} x {stats.dtype} "
            f"({stats.size_mb:.2f} MB)",
            f"unique values   : {stats.unique_percent:.1f}%",
            f"shannon entropy : {stats.entropy_bits:.2f} bits/element",
            f"randomness      : {stats.randomness:.1f}%",
            f"bit profile     : {self.bit_profile.render_ascii()}",
            f"noisy bits      : {self.bit_profile.noisy_bits}/"
            f"{self.bit_profile.n_bits}",
            f"analyzer        : {self.analysis.summary()}",
            "byte-columns (LSB first):",
        ]
        for column, max_freq, entropy, kind in self.column_rows():
            lines.append(
                f"  [{column}] max_freq={max_freq:>8d}  "
                f"entropy={entropy:5.2f} b/B  {kind}"
            )
        lines.append(
            f"order-0 estimate: {self.estimate.predicted_ratio:.3f}x "
            f"({self.estimate.original_bytes} -> "
            f"{self.estimate.total_bytes:.0f} bytes)"
        )
        lines.append(f"recommendation  : {self.recommendation}")
        return "\n".join(lines)


def profile_dataset(name: str, values: np.ndarray,
                    tau: float = 1.42) -> DatasetProfile:
    """Run the full analysis stack over ``values``."""
    analysis = analyze(values, tau=tau)
    return DatasetProfile(
        name=name,
        statistics=dataset_statistics(name, values),
        bit_profile=bit_frequency_profile(name, values),
        analysis=analysis,
        estimate=estimate_partition_size(values, analysis.mask),
    )
