"""The stable public facade of the package.

Four entry points cover the everyday workflow:

* :func:`compress` — array in, self-contained ISOBAR container out;
* :func:`decompress` — container in, bit-exact array out, with the
  unified ``errors=`` damage policy;
* :func:`open_stream` — file-to-file streaming in either direction
  (constant memory, crash-safe writes);
* :func:`fsck` — check (and with ``repair=True`` fix) a container
  file's index footer and finalize crashed-writer temp files.

All options funnel through :class:`~repro.core.preferences.IsobarConfig`
— the single keyword-only options object — with the two most common
knobs (``preference``, ``codec``/``linearization`` overrides) available
directly.  Everything here is re-exported at the package root, so
``repro.compress(...)`` is the canonical spelling.

The legacy one-liners ``isobar_compress`` / ``isobar_decompress``
remain importable as deprecated aliases of these functions.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import (
    ERROR_POLICIES,
    IsobarConfig,
    Linearization,
    Preference,
    normalize_errors,
)
from repro.core.fsck import FsckReport
from repro.core.fsck import fsck as _fsck
from repro.core.stream import StreamingWriter, stream_decompress
from repro.core.exceptions import ConfigurationError
from repro.core.selector import SelectorDecision, resolve_selector
from repro.observability.registry import MetricsRegistry

__all__ = [
    "compress",
    "decompress",
    "fsck",
    "open_stream",
    "plan",
    "ERROR_POLICIES",
]


def _resolve_config(
    config: IsobarConfig | None,
    preference: Preference | str | None,
    codec: str | None,
    linearization: Linearization | str | None,
    selector: object | None = None,
) -> IsobarConfig:
    """Fold the convenience keywords into one :class:`IsobarConfig`."""
    base = config or IsobarConfig()
    overrides: dict[str, object] = {}
    if preference is not None:
        overrides["preference"] = Preference.parse(preference)
    if codec is not None:
        overrides["codec"] = codec
    if linearization is not None:
        overrides["linearization"] = Linearization.parse(linearization)
    if selector is not None:
        overrides["selector"] = selector
    return base.replace(**overrides) if overrides else base


def compress(
    values: np.ndarray,
    *,
    preference: Preference | str | None = None,
    codec: str | None = None,
    linearization: Linearization | str | None = None,
    selector: object | None = None,
    config: IsobarConfig | None = None,
) -> bytes:
    """Compress ``values`` into a self-contained ISOBAR container.

    Parameters
    ----------
    values:
        Fixed-width numeric array of any shape.
    preference:
        ``"ratio"`` or ``"speed"`` — the selector's optimisation
        target (defaults to the config's, i.e. ``"ratio"``).
    codec / linearization:
        Optional explicit overrides; unset, the selector decides.
    selector:
        Selection strategy: ``"eupa"`` (default — the paper's timing
        probe), ``"learned"`` (predict-first, probes only when
        uncertain), ``"cached"`` (learned behind a shared decision
        cache) or a :class:`~repro.core.selector.SelectorStrategy`
        instance.  Every strategy honours the other overrides
        identically; the container format never changes.
    config:
        Full :class:`~repro.core.preferences.IsobarConfig`; the other
        keywords are applied on top of it.

    Returns
    -------
    bytes
        A container that :func:`decompress` restores bit-exactly.
    """
    cfg = _resolve_config(config, preference, codec, linearization, selector)
    return IsobarCompressor(cfg).compress(values)


def plan(
    values: np.ndarray,
    *,
    preference: Preference | str | None = None,
    codec: str | None = None,
    linearization: Linearization | str | None = None,
    selector: object | None = None,
    config: IsobarConfig | None = None,
) -> SelectorDecision:
    """Dry-run the selector: the decision for ``values``, no container.

    Runs exactly the selection that :func:`compress` would run — same
    strategy, same candidate restrictions, same seeded sample — and
    returns the :class:`~repro.core.selector.SelectorDecision` with
    its full evaluation/prediction record.  Nothing is compressed
    beyond the strategy's own sample work, so this is the cheap way to
    ask "what would ISOBAR do with this data?" before committing to a
    large run.  Mirrored by ``isobar plan`` and ``POST /v1/plan``.
    """
    cfg = _resolve_config(config, preference, codec, linearization, selector)
    strategy = resolve_selector(cfg)
    return strategy.select(np.asarray(values).reshape(-1))


def decompress(data: bytes, *, errors: str = "raise") -> np.ndarray:
    """Restore the exact original array from an ISOBAR container.

    Parameters
    ----------
    data:
        A container produced by :func:`compress` (or any of the
        pipeline/streaming writers — the format is shared).
    errors:
        Damage policy, uniform across every decoder in the package:
        ``"raise"`` (default) aborts on the first damaged chunk with a
        located exception; ``"salvage-skip"`` drops damaged chunks;
        ``"salvage-zero"`` substitutes zero elements for them.
    """
    return IsobarCompressor().decompress(data, errors=errors)


# isobar: ignore[ISO004] positional `mode` mirrors the builtin open()
def open_stream(
    path: str | os.PathLike,
    mode: str = "r",
    *,
    dtype: np.dtype | None = None,
    config: IsobarConfig | None = None,
    selector: object | None = None,
    atomic: bool = True,
    errors: str = "raise",
    tolerate_unclosed: bool = False,
    metrics: MetricsRegistry | None = None,
) -> StreamingWriter | Iterator[np.ndarray]:
    """Open a container file for streaming compression or decompression.

    ``mode="w"`` returns a :class:`~repro.core.stream.StreamingWriter`
    (usable as a context manager) that appends chunks via
    ``write_chunk`` and atomically publishes the file on ``close()``;
    ``dtype`` is required.  ``mode="r"`` returns an iterator of decoded
    chunks honouring the unified ``errors=`` policy;
    ``tolerate_unclosed=True`` additionally recovers streams whose
    writer crashed before finalising the header.  ``selector`` picks
    the write-side selection strategy exactly as in :func:`compress`
    (``"eupa"`` default; ignored for ``mode="r"`` since reading never
    selects).
    """
    if mode == "w":
        if dtype is None:
            raise ConfigurationError(
                "open_stream(..., mode='w') requires dtype"
            )
        if selector is not None:
            config = (config or IsobarConfig()).replace(selector=selector)
        return StreamingWriter.open(
            path, dtype, config, atomic=atomic, metrics=metrics
        )
    if mode == "r":
        normalize_errors(errors)  # fail fast, not at first iteration
        return stream_decompress(
            path,
            errors=errors,
            tolerate_unclosed=tolerate_unclosed,
            metrics=metrics,
        )
    raise ConfigurationError(
        f"unknown stream mode {mode!r}; expected 'r' or 'w'"
    )


def fsck(path: str | os.PathLike, *, repair: bool = False) -> FsckReport:
    """Check (and optionally repair) a container file and its orphans.

    Validates the chunk chain, the CRC-guarded index footer and any
    ``<path>.tmp.<pid>`` files left by crashed streaming writers.
    With ``repair=True`` a lost/damaged/stale footer is rebuilt from
    the chain (byte-identical when the chain is intact) and orphaned
    temp files whose destination is missing are finalized and
    published atomically.  Lost payload is reported, never fabricated
    — see :func:`repro.core.salvage.salvage_decompress` for data
    recovery.  Returns a :class:`~repro.core.fsck.FsckReport`; the
    ``isobar fsck`` CLI command prints its ``summary_lines()``.
    """
    return _fsck(path, repair=repair)
