"""Regeneration of the paper's evaluation figures (1, 8, 9, 10).

Figures are produced as data series (list of points) plus a rendered
ASCII view, so the benchmark suite can both assert on the numbers and
print something a human can eyeball against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bitfreq import bit_frequency_profile
from repro.analysis.metrics import delta_cr_percent, speedup
from repro.bench.harness import evaluate_array
from repro.bench.report import render_series, render_table
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig, Preference
from repro.datasets.registry import DEFAULT_ELEMENTS, get_dataset
from repro.datasets.synthetic import build_structured
from repro.linearization.order import apply_order, ordering_indices

__all__ = [
    "FigureReport",
    "figure1_bit_frequencies",
    "figure8_chunk_size",
    "figure9_linearization_cr",
    "figure10_linearization_sp",
    "FIGURE1_DATASETS",
    "FIGURE9_ORDERINGS",
]

#: The four representative datasets of Figure 1.
FIGURE1_DATASETS = ("xgc_igid", "gts_chkp_zeon", "flash_gamc", "msg_sppm")

#: Linearization schemes of Figures 9-10 (paper plots the first three;
#: Morton is an extra point of comparison).
FIGURE9_ORDERINGS = ("original", "hilbert", "random", "morton")


@dataclass
class FigureReport:
    """One reproduced figure: labelled (x, y) series per curve."""

    title: str
    x_label: str
    y_label: str
    series: dict[str, list[tuple[object, float]]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Render each curve as a value table with ASCII bars."""
        blocks = [
            render_series(self.x_label, self.y_label, points,
                          title=f"{self.title} - {label}")
            for label, points in self.series.items()
        ]
        text = "\n\n".join(blocks)
        if self.notes:
            text += "\n" + "\n".join(f"  * {note}" for note in self.notes)
        return text


def figure1_bit_frequencies(
    datasets: tuple[str, ...] = FIGURE1_DATASETS,
    n_elements: int = 100_000,
) -> FigureReport:
    """Figure 1: per-bit-position dominant-value probability profiles.

    Hard-to-compress datasets show long ~0.5 stretches (mantissa noise);
    ``msg_sppm`` stays high everywhere.  The x axis counts bit positions
    from the most significant (sign/exponent) end, as in the paper.
    """
    fig = FigureReport(
        title="Figure 1: bit frequencies of representative datasets",
        x_label="bit position",
        y_label="P(dominant value)",
    )
    for name in datasets:
        values = get_dataset(name).generate(n_elements=n_elements)
        profile = bit_frequency_profile(name, values)
        points = [
            (position + 1, float(prob))
            for position, prob in enumerate(profile.probabilities)
        ]
        fig.series[name] = points
    fig.notes.append(
        "Profiles computed on the synthetic stand-ins; the HTC datasets "
        "exhibit the paper's flat 0.5 mantissa region."
    )
    return fig


def figure8_chunk_size(
    dataset: str = "gts_chkp_zion",
    chunk_sizes: tuple[int, ...] = (
        1_000, 5_000, 15_000, 47_000, 94_000, 188_000, 375_000,
    ),
    n_elements: int = 750_000,
) -> FigureReport:
    """Figure 8: compression ratio vs chunk size, settling near 375 k.

    Small chunks starve the analyzer of statistics (uniform columns can
    spuriously clear the threshold) and pay per-chunk container and
    solver-restart overhead; the ratio stabilises once chunks carry
    enough elements.
    """
    values = get_dataset(dataset).generate(n_elements=n_elements)
    fig = FigureReport(
        title=f"Figure 8: chunking size for settled compression ratios "
              f"({dataset})",
        x_label="chunk elements",
        y_label="compression ratio",
    )
    points = []
    for chunk in chunk_sizes:
        config = IsobarConfig(chunk_elements=chunk, preference=Preference.RATIO)
        result = IsobarCompressor(config).compress_detailed(values)
        points.append((chunk, result.ratio))
    fig.series[dataset] = points
    return fig


def _field_2d(n_side: int, seed: int = 11) -> np.ndarray:
    """A 2-D smooth field with the GTS noise fingerprint (6 of 8 bytes)."""
    rng = np.random.default_rng(seed)
    flat = build_structured(n_side * n_side, np.float64, 6, rng,
                            pattern_kind="wave", step_scale=1.0)
    return flat.reshape(n_side, n_side)


def _linearization_sweep(
    n_side: int,
    orderings: tuple[str, ...],
    seed: int,
) -> dict[str, tuple[float, float]]:
    """Per ordering: (dCR vs best standard, Sp vs best-ratio standard)."""
    field2d = _field_2d(n_side, seed=seed)
    outcomes: dict[str, tuple[float, float]] = {}
    for ordering in orderings:
        perm = ordering_indices(ordering, field2d.shape, seed=seed)
        stream = apply_order(field2d, perm)
        ev = evaluate_array(f"{ordering}-order", stream)
        res = ev.isobar_speed
        outcomes[ordering] = (
            ev.delta_cr_vs_best(res),
            ev.speedup_vs_best_ratio(res),
        )
    return outcomes


def figure9_linearization_cr(
    n_side: int = 300,
    orderings: tuple[str, ...] = FIGURE9_ORDERINGS,
    seed: int = 11,
) -> FigureReport:
    """Figure 9: dCR under original / Hilbert / random (/Morton) orders.

    ISOBAR's improvement should stay roughly constant across
    linearizations — even the random order retains most of the gain,
    because the byte-column statistics are order-invariant.
    """
    outcomes = _linearization_sweep(n_side, orderings, seed)
    fig = FigureReport(
        title="Figure 9: dCR(%) under different linearization schemes",
        x_label="linearization",
        y_label="dCR (%)",
    )
    fig.series["2-D field"] = [
        (ordering, outcomes[ordering][0]) for ordering in orderings
    ]
    return fig


def figure10_linearization_sp(
    n_side: int = 300,
    orderings: tuple[str, ...] = FIGURE9_ORDERINGS,
    seed: int = 11,
) -> FigureReport:
    """Figure 10: compression speed-up under the same orderings."""
    outcomes = _linearization_sweep(n_side, orderings, seed)
    fig = FigureReport(
        title="Figure 10: compression speed-up (Sp) under different "
              "linearization schemes",
        x_label="linearization",
        y_label="Sp",
    )
    fig.series["2-D field"] = [
        (ordering, outcomes[ordering][1]) for ordering in orderings
    ]
    return fig
