"""Experiment harness: timed evaluations behind every table and figure.

One :func:`evaluate_dataset` call produces everything Tables II and
IV–IX need for one dataset: standalone zlib/bzip2 ratios and
throughputs, both ISOBAR preferences (ratio, speed) with their chosen
codec/linearization, decompression throughputs, and the analyzer's
verdict and throughput.  The table generators in
:mod:`repro.bench.tables` aggregate these evaluations into the paper's
layouts.

Throughput semantics follow the paper: MB/s over the *uncompressed*
size for both directions; ISOBAR's compression time includes analysis
and partitioning (the preconditioner is on the critical path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import MEGABYTE, delta_cr_percent, speedup
from repro.codecs.base import get_codec
from repro.core.analyzer import AnalysisResult, analyze
from repro.core.exceptions import CodecError
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig, Preference
from repro.datasets.registry import DEFAULT_ELEMENTS, get_dataset

__all__ = [
    "StandardResult",
    "IsobarResult",
    "DatasetEvaluation",
    "evaluate_array",
    "evaluate_dataset",
]


@dataclass(frozen=True)
class StandardResult:
    """Standalone solver performance on raw bytes (no preconditioner)."""

    codec_name: str
    ratio: float
    compress_mb_s: float
    decompress_mb_s: float


@dataclass(frozen=True)
class IsobarResult:
    """ISOBAR workflow performance under one preference.

    ``stage_seconds`` carries the observability layer's per-stage
    wall-clock breakdown of the compression leg (``select``,
    ``analyze``, ``partition``, ``solve``, ``merge`` — see
    ``docs/observability.md``), so table generators and ad-hoc scripts
    can attribute time without re-running the pipeline.
    """

    preference: Preference
    codec_name: str
    linearization: str
    ratio: float
    compress_mb_s: float
    decompress_mb_s: float
    analyze_mb_s: float
    improvable: bool
    stage_seconds: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class DatasetEvaluation:
    """Complete measurement record for one dataset."""

    name: str
    n_elements: int
    n_bytes: int
    analysis: AnalysisResult
    standard: dict[str, StandardResult]
    isobar_ratio: IsobarResult
    isobar_speed: IsobarResult

    @property
    def improvable(self) -> bool:
        """The analyzer's improvable verdict for this dataset."""
        return self.analysis.improvable

    def best_standard_ratio(self) -> StandardResult:
        """Standalone solver with the best compression ratio."""
        return max(self.standard.values(), key=lambda res: res.ratio)

    def fastest_standard(self) -> StandardResult:
        """Standalone solver with the highest compression throughput."""
        return max(self.standard.values(), key=lambda res: res.compress_mb_s)

    def fastest_standard_decompress(self) -> StandardResult:
        """Standalone solver with the highest decompression throughput."""
        return max(self.standard.values(), key=lambda res: res.decompress_mb_s)

    def delta_cr_vs_best(self, result: IsobarResult) -> float:
        """dCR (Eq. 3) of an ISOBAR result vs the best standalone ratio."""
        return delta_cr_percent(result.ratio, self.best_standard_ratio().ratio)

    def delta_cr_vs_fastest(self, result: IsobarResult) -> float:
        """dCR vs the standalone solver with the best throughput."""
        return delta_cr_percent(result.ratio, self.fastest_standard().ratio)

    def speedup_vs_best_ratio(self, result: IsobarResult) -> float:
        """Compression speed-up (Eq. 2) vs the best-ratio solver."""
        return speedup(
            result.compress_mb_s, self.best_standard_ratio().compress_mb_s
        )

    def speedup_vs_fastest(self, result: IsobarResult) -> float:
        """Compression speed-up vs the fastest standalone solver."""
        return speedup(result.compress_mb_s, self.fastest_standard().compress_mb_s)

    def decompress_speedup(self, result: IsobarResult) -> float:
        """Decompression speed-up vs the faster standalone solver."""
        return speedup(
            result.decompress_mb_s,
            self.fastest_standard_decompress().decompress_mb_s,
        )


def _time_standard(codec_name: str, raw: bytes) -> StandardResult:
    codec = get_codec(codec_name)
    start = time.perf_counter()
    compressed = codec.compress(raw)
    compress_seconds = time.perf_counter() - start
    start = time.perf_counter()
    restored = codec.decompress(compressed)
    decompress_seconds = time.perf_counter() - start
    if restored != raw:
        raise CodecError(f"{codec_name} failed to round-trip raw data")
    n_mb = len(raw) / MEGABYTE
    return StandardResult(
        codec_name=codec_name,
        ratio=len(raw) / len(compressed),
        compress_mb_s=n_mb / compress_seconds if compress_seconds else float("inf"),
        decompress_mb_s=n_mb / decompress_seconds if decompress_seconds else float("inf"),
    )


def _time_isobar(
    values: np.ndarray, preference: Preference, config: IsobarConfig
) -> IsobarResult:
    compressor = IsobarCompressor(
        config.replace(preference=preference), collect_metrics=True
    )
    result = compressor.compress_detailed(values)
    compress_report = compressor.last_report
    # Compression time = analysis + partition/solve; the one-off
    # selector sampling is amortised across a run and reported
    # separately by the selector itself.
    compress_seconds = result.analyze_seconds + result.compress_seconds
    start = time.perf_counter()
    restored = compressor.decompress(result.payload)
    decompress_seconds = time.perf_counter() - start
    if not np.array_equal(restored.reshape(-1), np.asarray(values).reshape(-1)):
        raise CodecError("ISOBAR failed to round-trip the dataset")
    n_mb = result.original_bytes / MEGABYTE
    analyze_mb_s = (
        n_mb / result.analyze_seconds if result.analyze_seconds else float("inf")
    )
    return IsobarResult(
        preference=preference,
        codec_name=result.decision.codec_name,
        linearization=result.decision.linearization.value,
        ratio=result.ratio,
        compress_mb_s=n_mb / compress_seconds if compress_seconds else float("inf"),
        decompress_mb_s=(
            n_mb / decompress_seconds if decompress_seconds else float("inf")
        ),
        analyze_mb_s=analyze_mb_s,
        improvable=result.improvable,
        stage_seconds=dict(compress_report.stage_seconds),
    )


def evaluate_array(
    name: str,
    values: np.ndarray,
    config: IsobarConfig | None = None,
    codec_names: tuple[str, ...] = ("zlib", "bzip2"),
) -> DatasetEvaluation:
    """Measure standalone solvers and both ISOBAR preferences on ``values``."""
    arr = np.ascontiguousarray(np.asarray(values).reshape(-1))
    raw = arr.astype(arr.dtype.newbyteorder("<"), copy=False).tobytes()
    cfg = config or IsobarConfig(candidate_codecs=codec_names)
    standard = {name_: _time_standard(name_, raw) for name_ in codec_names}
    return DatasetEvaluation(
        name=name,
        n_elements=int(arr.size),
        n_bytes=len(raw),
        analysis=analyze(arr, tau=cfg.tau),
        standard=standard,
        isobar_ratio=_time_isobar(arr, Preference.RATIO, cfg),
        isobar_speed=_time_isobar(arr, Preference.SPEED, cfg),
    )


def evaluate_dataset(
    name: str,
    n_elements: int = DEFAULT_ELEMENTS,
    config: IsobarConfig | None = None,
    codec_names: tuple[str, ...] = ("zlib", "bzip2"),
    seed: int | None = None,
) -> DatasetEvaluation:
    """Generate a registry dataset and run :func:`evaluate_array` on it."""
    values = get_dataset(name).generate(n_elements=n_elements, seed=seed)
    return evaluate_array(name, values, config=config, codec_names=codec_names)
