"""The paper's published numbers, machine-readable.

Transcribed from the ICDE 2012 paper's evaluation tables so the
benchmark suite can diff its measurements against the source instead of
relying on prose.  Only the values the reproduction compares against
are included; throughputs are in MB/s on the authors' Lens testbed and
are *not* expected to match a pure-Python substrate (see
EXPERIMENTS.md) — ratio-family numbers are the comparable ones.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "PAPER_TABLE7",
    "PAPER_TABLE9_SP",
    "PAPER_TABLE10_MEANS",
    "PAPER_SECTION_F",
    "Table5Row",
    "compare_ratio",
]


@dataclass(frozen=True)
class Table5Row:
    """One dataset's Table V entries (None = NI in the paper)."""

    zlib_cr: float
    bzlib2_cr: float
    isobar_cr_cr: float | None
    isobar_sp_cr: float | None


#: Table V — standalone and ISOBAR compression ratios per dataset.
PAPER_TABLE5: dict[str, Table5Row] = {
    "gts_chkp_zeon": Table5Row(1.040, 1.022, 1.182, 1.140),
    "gts_chkp_zion": Table5Row(1.044, 1.027, 1.187, 1.150),
    "gts_phi_l": Table5Row(1.041, 1.020, 1.186, 1.160),
    "gts_phi_nl": Table5Row(1.045, 1.018, 1.180, 1.157),
    "xgc_igid": Table5Row(3.003, 3.120, 3.368, 2.962),
    "xgc_iphase": Table5Row(1.362, 1.377, 1.589, 1.571),
    "s3d_temp": Table5Row(1.336, 1.452, 2.063, 1.831),
    "s3d_vmag": Table5Row(1.190, 1.210, 1.774, 1.604),
    "flash_gamc": Table5Row(1.289, 1.281, 1.557, 1.532),
    "flash_velx": Table5Row(1.113, 1.084, 1.319, 1.308),
    "flash_vely": Table5Row(1.135, 1.091, 1.319, 1.307),
    "msg_bt": Table5Row(1.131, 1.102, None, None),
    "msg_lu": Table5Row(1.057, 1.021, 1.298, 1.246),
    "msg_sp": Table5Row(1.112, 1.075, 1.330, 1.304),
    "msg_sppm": Table5Row(7.436, 6.932, None, None),
    "msg_sweep3d": Table5Row(1.093, 1.277, 1.344, 1.287),
    "num_brain": Table5Row(1.064, 1.042, 1.276, 1.238),
    "num_comet": Table5Row(1.160, 1.172, 1.236, 1.215),
    "num_control": Table5Row(1.057, 1.029, 1.143, 1.126),
    "num_plasma": Table5Row(1.608, 5.789, None, None),
    "obs_error": Table5Row(1.448, 1.338, None, None),
    "obs_info": Table5Row(1.157, 1.213, 1.292, 1.249),
    "obs_spitzer": Table5Row(1.228, 1.721, None, None),
    "obs_temp": Table5Row(1.035, 1.024, 1.142, 1.125),
}

#: Table VI — dCR(%) under the Sp preference (improvable doubles only).
PAPER_TABLE6: dict[str, float] = {
    "gts_chkp_zeon": 9.62, "gts_chkp_zion": 10.15, "gts_phi_l": 11.43,
    "gts_phi_nl": 10.72, "xgc_iphase": 15.35, "flash_gamc": 18.85,
    "flash_velx": 17.52, "flash_vely": 15.15, "msg_lu": 17.88,
    "msg_sp": 17.267, "msg_sweep3d": 17.75, "num_brain": 16.35,
    "num_comet": 4.74, "num_control": 6.53, "obs_info": 7.95,
    "obs_temp": 8.70,
}

#: Table VII — dCR(%) under the CR preference.
PAPER_TABLE7: dict[str, float] = {
    "gts_chkp_zeon": 13.65, "gts_chkp_zion": 13.69, "gts_phi_l": 13.93,
    "gts_phi_nl": 12.92, "xgc_iphase": 15.39, "flash_gamc": 20.79,
    "flash_velx": 18.51, "flash_vely": 16.21, "msg_lu": 22.80,
    "msg_sp": 19.60, "msg_sweep3d": 5.24, "num_brain": 19.92,
    "num_comet": 5.46, "num_control": 8.13, "obs_info": 6.512,
    "obs_temp": 10.34,
}

#: Table IX — ISOBAR decompression speed-up vs the faster standalone.
PAPER_TABLE9_SP: dict[str, float] = {
    "gts_chkp_zeon": 4.5, "gts_chkp_zion": 5.0, "gts_phi_l": 3.2,
    "gts_phi_nl": 3.0, "xgc_igid": 1.9, "xgc_iphase": 2.8,
    "s3d_temp": 2.2, "s3d_vmag": 4.1, "flash_velx": 14.2,
    "flash_vely": 13.7, "flash_gamc": 8.3, "msg_lu": 7.7, "msg_sp": 4.9,
    "msg_sweep3d": 3.9, "num_brain": 7.9, "num_comet": 1.2,
    "num_control": 3.1, "obs_info": 7.7, "obs_temp": 4.5,
}

#: Table X — mean compression ratios over the 9 GTS/XGC/FLASH datasets.
PAPER_TABLE10_MEANS: dict[str, float] = {
    "isobar": 1.476,
    "fpc": 1.276,
    "fpzip": 1.469,
}

#: Section II-F — consistency statistics per regime.
PAPER_SECTION_F = {
    "linear": {"mean_dcr": 14.4, "std_dcr": 1.8, "mean_sp": 5.952,
               "std_sp": 0.065},
    "nonlinear": {"mean_dcr": 13.4, "std_dcr": 2.7, "mean_sp": 3.749,
                  "std_sp": 0.053},
}


def compare_ratio(measured: float | None, paper: float | None) -> str:
    """Classify a measured value against the paper's.

    Returns one of ``"match-NI"`` (both non-improvable), ``"mismatch-NI"``
    (improvable set disagrees), or a signed relative difference string.
    """
    if measured is None and paper is None:
        return "match-NI"
    if (measured is None) != (paper is None):
        return "mismatch-NI"
    delta = 100.0 * (measured - paper) / paper
    return f"{delta:+.1f}%"
