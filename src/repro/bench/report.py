"""Plain-text rendering of benchmark tables and figure data.

The benchmark suite prints every reproduced table and figure in the
same row/column layout the paper uses, so a side-by-side comparison is
a diff away.  No plotting dependency is assumed: "figures" are rendered
as value tables plus ASCII sparklines.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.exceptions import InvalidInputError

__all__ = ["format_cell", "render_table", "render_series", "render_kv"]


def format_cell(value: object, float_digits: int = 3) -> str:
    """Render one table cell: floats rounded, None as the paper's 'NI'."""
    if value is None:
        return "NI"
    if isinstance(value, bool):
        return "Yes" if value else "No"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1e6 or value == float("inf"):
            return f"{value:.3g}"
        return f"{value:.{float_digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render an aligned ASCII table with optional title."""
    header_cells = [str(h) for h in headers]
    body = [
        [format_cell(cell, float_digits) for cell in row] for row in rows
    ]
    n_cols = len(header_cells)
    for row in body:
        if len(row) != n_cols:
            raise InvalidInputError(
                f"row has {len(row)} cells, header has {n_cols}: {row}"
            )
    widths = [
        max(len(header_cells[col]), *(len(row[col]) for row in body))
        if body
        else len(header_cells[col])
        for col in range(n_cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header_cells, widths)))
    lines.append(sep)
    for row in body:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render an (x, y) series as a table with a bar-chart column.

    Used to print "figures": each row gets a proportional bar so trends
    (settling curves, robustness plateaus) are visible in plain text.
    """
    ys = [float(y) for _, y in points]
    if not ys:
        return render_table([x_label, y_label], [], title=title)
    y_min, y_max = min(ys), max(ys)
    span = (y_max - y_min) or 1.0
    rows = []
    for (x, y) in points:
        bar = "#" * max(1, round((float(y) - y_min) / span * width)) if span else ""
        rows.append([x, float(y), bar])
    return render_table([x_label, y_label, "profile"], rows, title=title)


def render_kv(pairs: Sequence[tuple[str, object]], title: str | None = None) -> str:
    """Render key/value summary lines (for per-experiment headers)."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    key_width = max((len(k) for k, _ in pairs), default=0)
    for key, value in pairs:
        lines.append(f"{key.ljust(key_width)} : {format_cell(value)}")
    return "\n".join(lines)
