"""Regeneration of every evaluation table in the paper (Tables I-X).

Each ``table*`` function returns a :class:`TableReport` whose headers
and row layout mirror the paper's table, built from live measurements
on the synthetic datasets.  Absolute throughputs reflect the
pure-Python substrate; the comparisons (who wins, signs of dCR,
improvable sets) are the reproduction targets — see EXPERIMENTS.md.

All dataset-level measurements flow through
:func:`repro.bench.harness.evaluate_dataset`; :func:`evaluate_many`
caches evaluations so the tables that share datasets (V, VI, VII, IX)
reuse one measurement pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.entropy import dataset_statistics
from repro.analysis.metrics import MEGABYTE, delta_cr_percent, speedup
from repro.bench.harness import DatasetEvaluation, evaluate_dataset
from repro.bench.report import render_table
from repro.codecs.fpc import FpcCodec
from repro.codecs.fpzip_like import FpzipLikeCodec
from repro.core.analyzer import analyze
from repro.core.exceptions import CodecError
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig, Preference
from repro.datasets.registry import (
    DATASETS,
    DEFAULT_ELEMENTS,
    dataset_names,
    get_dataset,
    improvable_dataset_names,
)
from repro.insitu.simulation import FieldSimulation, SimulationConfig

__all__ = [
    "TableReport",
    "evaluate_many",
    "table1_datasets",
    "table2_summary",
    "table3_statistics",
    "table4_analyzer",
    "table5_comparison",
    "table6_speed_preference",
    "table7_ratio_preference",
    "table8_single_precision",
    "table9_decompression",
    "table10_fpc_fpzip",
    "section_f_consistency",
]

#: Datasets Table X compares against FPC and fpzip.
TABLE10_DATASETS = (
    "gts_chkp_zeon",
    "gts_chkp_zion",
    "gts_phi_l",
    "gts_phi_nl",
    "xgc_igid",
    "xgc_iphase",
    "flash_gamc",
    "flash_velx",
    "flash_vely",
)

#: Representative dataset per application for the Table II headline.
TABLE2_REPRESENTATIVES = {
    "GTS": "gts_chkp_zion",
    "XGC": "xgc_iphase",
    "S3D": "s3d_vmag",
    "FLASH": "flash_velx",
}


@dataclass
class TableReport:
    """One reproduced table: title, headers and measured rows."""

    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: list[str] = field(default_factory=list)

    def render(self, float_digits: int = 3) -> str:
        """Render the table (plus footnotes) as aligned text."""
        text = render_table(self.headers, self.rows, title=self.title,
                            float_digits=float_digits)
        if self.notes:
            text += "\n" + "\n".join(f"  * {note}" for note in self.notes)
        return text


def evaluate_many(
    names: tuple[str, ...] | None = None,
    n_elements: int = DEFAULT_ELEMENTS,
    config: IsobarConfig | None = None,
) -> dict[str, DatasetEvaluation]:
    """Evaluate several datasets once, keyed by name (shared by tables)."""
    if names is None:
        names = dataset_names()
    return {
        name: evaluate_dataset(name, n_elements=n_elements, config=config)
        for name in names
    }


# -- Table I ----------------------------------------------------------------

def table1_datasets() -> TableReport:
    """Table I: the seven applications and their variables."""
    rows = []
    seen = set()
    for spec in DATASETS.values():
        key = spec.application
        if key in seen:
            continue
        seen.add(key)
        variables = ", ".join(
            s.variable for s in DATASETS.values() if s.application == key
        )
        dtypes = sorted({str(s.dtype) for s in DATASETS.values()
                         if s.application == key})
        rows.append([key, spec.research_area, variables, "/".join(dtypes)])
    return TableReport(
        title="Table I: simulation output datasets from seven applications",
        headers=["Application", "Research Area", "Variable(s)", "Data Type"],
        rows=rows,
    )


# -- Table II -----------------------------------------------------------------

def table2_summary(
    n_elements: int = DEFAULT_ELEMENTS,
    evaluations: dict[str, DatasetEvaluation] | None = None,
) -> TableReport:
    """Table II: headline dCR / throughput / speed-up per application."""
    rows = []
    for app, dataset in TABLE2_REPRESENTATIVES.items():
        ev = (
            evaluations[dataset]
            if evaluations and dataset in evaluations
            else evaluate_dataset(dataset, n_elements=n_elements)
        )
        isobar = ev.isobar_speed
        rows.append([
            app,
            ev.delta_cr_vs_best(isobar),
            isobar.compress_mb_s,
            ev.speedup_vs_best_ratio(isobar),
            isobar.decompress_mb_s,
            ev.decompress_speedup(isobar),
        ])
    return TableReport(
        title="Table II: ISOBAR-compress performance summary (Sp preference)",
        headers=["Dataset", "dCR (%)", "TP_C (MB/s)", "Sp_C", "TP_D (MB/s)",
                 "Sp_D"],
        rows=rows,
        notes=[
            "dCR vs best standalone ratio; Sp_C vs that solver's throughput; "
            "Sp_D vs the faster standalone decompressor.",
        ],
    )


# -- Table III ----------------------------------------------------------------

def table3_statistics(n_elements: int = DEFAULT_ELEMENTS) -> TableReport:
    """Table III: size, uniqueness, entropy, randomness of each dataset."""
    rows = []
    for name in dataset_names():
        values = get_dataset(name).generate(n_elements=n_elements)
        stats = dataset_statistics(name, values)
        rows.append([
            name,
            stats.dtype,
            stats.size_mb,
            stats.n_elements / 1e6,
            stats.unique_percent,
            stats.entropy_bits,
            stats.randomness,
        ])
    return TableReport(
        title="Table III: statistical information about test datasets",
        headers=["Dataset", "Data Type", "Size (MB)", "Elements (M)",
                 "Unique (%)", "Shannon Entropy", "Randomness (%)"],
        rows=rows,
    )


# -- Table IV -----------------------------------------------------------------

def table4_analyzer(
    n_elements: int = DEFAULT_ELEMENTS, tau: float | None = None
) -> TableReport:
    """Table IV: analyzer predictions — HTC?, HTC bytes %, improvable?."""
    cfg = IsobarConfig() if tau is None else IsobarConfig(tau=tau)
    rows = []
    for name in dataset_names():
        values = get_dataset(name).generate(n_elements=n_elements)
        result = analyze(values, tau=cfg.tau)
        rows.append([
            name,
            result.hard_to_compress,
            f"{result.htc_bytes_percent:.1f}%",
            result.improvable,
        ])
    return TableReport(
        title="Table IV: ISOBAR-analyzer predictions",
        headers=["Dataset", "HTC?", "HTC Bytes (%)", "Improvable?"],
        rows=rows,
    )


# -- Table V ------------------------------------------------------------------

def table5_comparison(
    evaluations: dict[str, DatasetEvaluation] | None = None,
    n_elements: int = DEFAULT_ELEMENTS,
) -> TableReport:
    """Table V: zlib / bzlib2 / analyzer TP / ISOBAR-CR / ISOBAR-Sp."""
    evaluations = evaluations or evaluate_many(n_elements=n_elements)
    rows = []
    for name in dataset_names():
        ev = evaluations.get(name)
        if ev is None:
            continue
        zl = ev.standard["zlib"]
        bz = ev.standard["bzip2"]
        if ev.improvable:
            cr_pref = ev.isobar_ratio
            sp_pref = ev.isobar_speed
            row_tail = [
                cr_pref.ratio, cr_pref.compress_mb_s,
                sp_pref.ratio, sp_pref.compress_mb_s,
            ]
        else:
            row_tail = [None, None, None, None]
        rows.append([
            name,
            zl.ratio, zl.compress_mb_s,
            bz.ratio, bz.compress_mb_s,
            ev.isobar_speed.analyze_mb_s,
            *row_tail,
        ])
    return TableReport(
        title="Table V: performance comparison",
        headers=["Dataset", "zlib CR", "zlib TP_C", "bzlib2 CR", "bzlib2 TP_C",
                 "TP_A (MB/s)", "ISOBAR-CR CR", "ISOBAR-CR TP_C",
                 "ISOBAR-Sp CR", "ISOBAR-Sp TP_C"],
        rows=rows,
        notes=["NI: dataset identified as non-improvable by ISOBAR-compress."],
    )


# -- Tables VI and VII -----------------------------------------------------------

def _preference_table(
    evaluations: dict[str, DatasetEvaluation],
    preference: Preference,
) -> list[list[object]]:
    rows = []
    for name in dataset_names():
        ev = evaluations.get(name)
        if ev is None or not ev.improvable:
            continue
        if preference is Preference.SPEED:
            res = ev.isobar_speed
            delta = ev.delta_cr_vs_fastest(res)
            sp = ev.speedup_vs_fastest(res)
        else:
            res = ev.isobar_ratio
            delta = ev.delta_cr_vs_best(res)
            sp = ev.speedup_vs_best_ratio(res)
        rows.append([name, res.linearization.capitalize(), delta, sp,
                     res.codec_name])
    return rows


def table6_speed_preference(
    evaluations: dict[str, DatasetEvaluation] | None = None,
    n_elements: int = DEFAULT_ELEMENTS,
) -> TableReport:
    """Table VI: improvement under the Sp (throughput) preference."""
    evaluations = evaluations or evaluate_many(
        improvable_dataset_names(), n_elements=n_elements
    )
    return TableReport(
        title="Table VI: improvement of ISOBAR-Sp preference",
        headers=["Dataset", "LS", "dCR (%)", "Sp", "Codec"],
        rows=_preference_table(evaluations, Preference.SPEED),
        notes=[
            "dCR vs the standalone alternative with the highest compression "
            "throughput; Sp vs the same alternative (Eq. 2, 3).",
        ],
    )


def table7_ratio_preference(
    evaluations: dict[str, DatasetEvaluation] | None = None,
    n_elements: int = DEFAULT_ELEMENTS,
) -> TableReport:
    """Table VII: improvement under the CR (ratio) preference."""
    evaluations = evaluations or evaluate_many(
        improvable_dataset_names(), n_elements=n_elements
    )
    return TableReport(
        title="Table VII: improvement of ISOBAR-CR preference",
        headers=["Dataset", "LS", "dCR (%)", "Sp", "Codec"],
        rows=_preference_table(evaluations, Preference.RATIO),
        notes=[
            "dCR vs the standalone alternative with the best compression "
            "ratio; Sp vs the same alternative (Eq. 2, 3).",
        ],
    )


# -- Table VIII -----------------------------------------------------------------

def table8_single_precision(
    evaluations: dict[str, DatasetEvaluation] | None = None,
    n_elements: int = DEFAULT_ELEMENTS,
) -> TableReport:
    """Table VIII: the two single-precision (float32) datasets."""
    names = ("s3d_temp", "s3d_vmag")
    evaluations = evaluations or evaluate_many(names, n_elements=n_elements)
    rows = []
    for pref_label, pref in (("ISOBAR-CR", Preference.RATIO),
                             ("ISOBAR-Sp", Preference.SPEED)):
        for name in names:
            ev = evaluations[name]
            if pref is Preference.RATIO:
                res = ev.isobar_ratio
                delta = ev.delta_cr_vs_best(res)
                sp = ev.speedup_vs_best_ratio(res)
            else:
                res = ev.isobar_speed
                delta = ev.delta_cr_vs_fastest(res)
                sp = ev.speedup_vs_fastest(res)
            rows.append([pref_label, name, res.linearization.capitalize(),
                         delta, sp])
    return TableReport(
        title="Table VIII: performance on single-precision datasets",
        headers=["Preference", "Dataset", "LS", "dCR (%)", "Sp"],
        rows=rows,
    )


# -- Table IX -----------------------------------------------------------------

def table9_decompression(
    evaluations: dict[str, DatasetEvaluation] | None = None,
    n_elements: int = DEFAULT_ELEMENTS,
) -> TableReport:
    """Table IX: decompression throughput comparison."""
    evaluations = evaluations or evaluate_many(
        improvable_dataset_names(), n_elements=n_elements
    )
    rows = []
    for name in dataset_names():
        ev = evaluations.get(name)
        if ev is None or not ev.improvable:
            continue
        rows.append([
            name,
            ev.standard["zlib"].decompress_mb_s,
            ev.standard["bzip2"].decompress_mb_s,
            ev.isobar_speed.decompress_mb_s,
            ev.decompress_speedup(ev.isobar_speed),
        ])
    return TableReport(
        title="Table IX: decompression throughput comparison",
        headers=["Dataset", "zlib (MB/s)", "bzlib2 (MB/s)", "ISOBAR (MB/s)",
                 "Sp"],
        rows=rows,
        notes=["ISOBAR decompression under the speed preference; Sp vs the "
               "faster of zlib / bzlib2."],
    )


# -- Table X ------------------------------------------------------------------

def _time_array_codec(codec, values: np.ndarray) -> tuple[float, float, float]:
    """(ratio, compress MB/s, decompress MB/s) of an array codec."""
    start = time.perf_counter()
    encoded = codec.encode(values)
    enc_seconds = time.perf_counter() - start
    start = time.perf_counter()
    decoded = codec.decode(encoded)
    dec_seconds = time.perf_counter() - start
    if not np.array_equal(
        decoded.reshape(-1).view(np.uint8), values.reshape(-1).view(np.uint8)
    ):
        raise CodecError(f"{codec.name} failed to round-trip")
    n_mb = values.nbytes / MEGABYTE
    return (
        values.nbytes / len(encoded),
        n_mb / enc_seconds if enc_seconds else float("inf"),
        n_mb / dec_seconds if dec_seconds else float("inf"),
    )


def table10_fpc_fpzip(
    n_elements: int = DEFAULT_ELEMENTS,
    datasets: tuple[str, ...] = TABLE10_DATASETS,
    evaluations: dict[str, DatasetEvaluation] | None = None,
) -> TableReport:
    """Table X: ISOBAR-Sp vs FPC vs fpzip on the GTS/XGC/FLASH datasets."""
    fpc = FpcCodec()
    fpzip = FpzipLikeCodec()
    rows = []
    sums = np.zeros(9)
    for name in datasets:
        values = get_dataset(name).generate(n_elements=n_elements)
        ev = (
            evaluations[name]
            if evaluations and name in evaluations
            else evaluate_dataset(name, n_elements=n_elements)
        )
        iso = ev.isobar_speed
        fpc_ratio, fpc_tc, fpc_td = _time_array_codec(fpc, values)
        # fpzip is float-only; integer traces are viewed as float64 bit
        # patterns (the mapping is bitwise-bijective, so the round trip
        # stays exact) — mirrors how the paper feeds igid to fpzip.
        fp_values = values if values.dtype.kind == "f" else values.view(np.float64)
        fz_ratio, fz_tc, fz_td = _time_array_codec(fpzip, fp_values)
        row = [name, iso.ratio, iso.compress_mb_s, iso.decompress_mb_s,
               fpc_ratio, fpc_tc, fpc_td, fz_ratio, fz_tc, fz_td]
        rows.append(row)
        sums += np.array(row[1:], dtype=float)
    if rows:
        rows.append(["mean", *(sums / len(datasets)).tolist()])
    return TableReport(
        title="Table X: comparison among ISOBAR-compress, FPC and fpzip",
        headers=["Dataset", "ISO CR", "ISO TP_C", "ISO TP_D",
                 "FPC CR", "FPC TP_C", "FPC TP_D",
                 "fpzip CR", "fpzip TP_C", "fpzip TP_D"],
        rows=rows,
        notes=["ISOBAR under the speed preference; FPC/fpzip are the "
               "from-scratch reimplementations (throughput is Python-bound)."],
    )


# -- Section F -----------------------------------------------------------------

def section_f_consistency(
    n_steps: int = 20,
    n_elements: int = 50_000,
    regime: str = "linear",
    seed: int = 7,
) -> TableReport:
    """Section II-F: per-timestep consistency over a simulated run.

    Reports each timestep's selector decision, dCR vs the best
    standalone solver, and compression speed-up, then the mean/std the
    paper quotes (linear regime: dCR 14.4% +/- 1.8, Sp 5.95 +/- 0.07).

    The ratio preference is used, matching the paper's reported choice
    (bzlib2 for all steps): ratio comparisons are deterministic given
    the data, whereas the speed preference breaks near-ties by
    wall-clock timing and can flap between equally good candidates.
    """
    sim = FieldSimulation(SimulationConfig(
        n_elements=n_elements, regime=regime, seed=seed,
    ))
    rows = []
    deltas = []
    speedups = []
    decisions = set()
    from repro.bench.harness import evaluate_array

    for step in range(n_steps):
        values = sim.step()
        ev = evaluate_array(f"step_{step}", values)
        res = ev.isobar_ratio
        delta = ev.delta_cr_vs_best(res)
        sp = ev.speedup_vs_best_ratio(res)
        decision = f"{res.codec_name}+{res.linearization}"
        decisions.add(decision)
        deltas.append(delta)
        speedups.append(sp)
        rows.append([step, decision, ev.improvable, delta, sp])
    mean_delta = float(np.mean(deltas)) if deltas else float("nan")
    std_delta = float(np.std(deltas)) if deltas else float("nan")
    mean_sp = float(np.mean(speedups)) if speedups else float("nan")
    std_sp = float(np.std(speedups)) if speedups else float("nan")
    rows.append(["mean", "|".join(sorted(decisions)), True, mean_delta, mean_sp])
    rows.append(["std", "", True, std_delta, std_sp])
    return TableReport(
        title=f"Section F: consistency over the {regime} simulation regime",
        headers=["Timestep", "EUPA decision", "Improvable", "dCR (%)", "Sp"],
        rows=rows,
        notes=["All steps should share one decision and stay improvable."],
    )
