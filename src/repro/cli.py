"""Command-line interface: ``isobar compress|decompress|analyze|bench``.

The CLI operates on raw dataset files (see
:mod:`repro.datasets.loaders`) and ISOBAR containers::

    isobar generate gts_chkp_zion field.rds --elements 375000
    isobar analyze field.rds
    isobar plan field.rds --selector learned
    isobar compress field.rds field.isobar --preference speed
    isobar decompress field.isobar restored.rds
    isobar stats field.rds
    isobar bench --table 5 --elements 100000

``plan`` dry-runs the selector — the decision plus its evaluation or
prediction record, no container written; ``--selector`` (also on
``compress``, ``stats`` and ``serve``) picks the selection strategy
(``eupa`` default, ``learned``, ``cached`` — see ``docs/selector.md``).

``bench`` regenerates any of the paper's tables or figures on the
synthetic datasets and prints them in the paper's layout.  ``stats``
profiles a compress (and round-trip decompress) run with the
observability layer enabled and prints the per-stage breakdown; the
``compress``, ``decompress`` and ``salvage`` subcommands accept
``--metrics-json PATH`` to dump the full metrics registry of the run
(see ``docs/observability.md``).  ``compress`` exits 2 (output still
written and exactly decodable) when any chunk degraded through the
resilience layer; ``--strict`` turns degradation into a hard failure
and ``--resilience-json PATH`` dumps the degradation report (see
``docs/resilience.md``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.bitfreq import bit_frequency_profile
from repro.analysis.entropy import dataset_statistics
from repro.analysis.metrics import MEGABYTE, Stopwatch
from repro.core.analyzer import analyze
from repro.core.exceptions import IsobarError
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig, Linearization, Preference
from repro.datasets.loaders import load_raw, save_raw
from repro.datasets.registry import dataset_names, generate_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="isobar",
        description="ISOBAR preconditioner for lossless compression "
                    "(ICDE 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset file")
    gen.add_argument("dataset", choices=sorted(dataset_names()))
    gen.add_argument("output", help="output raw dataset file (.rds)")
    gen.add_argument("--elements", type=int, default=375_000)
    gen.add_argument("--seed", type=int, default=None)

    ana = sub.add_parser("analyze", help="run the ISOBAR-analyzer on a file")
    ana.add_argument("input", help="raw dataset file")
    ana.add_argument("--tau", type=float, default=IsobarConfig().tau)
    ana.add_argument("--bits", action="store_true",
                     help="also print the Figure-1 bit-frequency profile")
    ana.add_argument("--full", action="store_true",
                     help="print the complete compressibility profile")

    comp = sub.add_parser("compress", help="compress a raw dataset file")
    comp.add_argument("input", help="raw dataset file")
    comp.add_argument("output", help="output ISOBAR container")
    comp.add_argument("--preference", choices=["ratio", "speed"],
                      default="ratio")
    comp.add_argument("--codec", default=None,
                      help="explicit solver override (e.g. zlib, bzip2)")
    comp.add_argument("--linearization", choices=["row", "column"],
                      default=None)
    comp.add_argument("--chunk-elements", type=int, default=None)
    comp.add_argument("--tau", type=float, default=None)
    _add_selector_argument(comp)
    comp.add_argument("--metrics-json", metavar="PATH", default=None,
                      help="collect run metrics and write the registry "
                           "as JSON to PATH ('-' for stdout)")
    comp.add_argument("--strict", action="store_true",
                      help="fail hard on any chunk degradation instead of "
                           "falling back to zlib/raw storage")
    comp.add_argument("--resilience-json", metavar="PATH", default=None,
                      help="write the degradation report as JSON to PATH "
                           "('-' for stdout)")
    comp.add_argument("--workers", type=int, default=1,
                      help="pipeline worker count (>1 uses the pipelined "
                           "parallel compressor; default: 1)")
    comp.add_argument("--max-inflight", type=int, default=None,
                      help="backpressure bound: chunk blocks fed to "
                           "workers but not yet reassembled (default: "
                           "2 x workers)")
    _add_retry_arguments(comp)

    dec = sub.add_parser("decompress", help="restore a raw dataset file")
    dec.add_argument("input", help="ISOBAR container")
    dec.add_argument("output", help="output raw dataset file")
    dec.add_argument("--metrics-json", metavar="PATH", default=None,
                     help="collect run metrics and write the registry "
                          "as JSON to PATH ('-' for stdout)")
    dec.add_argument("--workers", type=int, default=1,
                     help="pipeline worker count (>1 decodes chunks in "
                          "parallel; default: 1)")
    dec.add_argument("--max-inflight", type=int, default=None,
                     help="backpressure bound for parallel decode "
                          "(default: 2 x workers)")

    tune = sub.add_parser("autotune", help="find the tau plateau for a file")
    tune.add_argument("input", help="raw dataset file")
    tune.add_argument("--sample-elements", type=int, default=65_536)

    info = sub.add_parser("info", help="inspect an ISOBAR container")
    info.add_argument("input", help="ISOBAR container")

    verify = sub.add_parser(
        "verify", help="deep-validate an ISOBAR container"
    )
    verify.add_argument("input", help="ISOBAR container")
    verify.add_argument(
        "--deep", action="store_true",
        help="additionally run the salvage scanner and report how much "
             "of a damaged container is recoverable",
    )

    fsck = sub.add_parser(
        "fsck",
        help="check a container's index footer, chunk chain and "
             "writer temp files; --repair fixes what is safely fixable",
    )
    fsck.add_argument(
        "input",
        help="ISOBAR container (may not exist yet if a crashed writer "
             "left only its temp file)",
    )
    fsck.add_argument(
        "--repair", action="store_true",
        help="rebuild a lost or damaged index footer from the chunk "
             "chain, finalize crashed-writer temp files, and remove "
             "empty ones (lost payload is reported, never fabricated)",
    )

    salvage = sub.add_parser(
        "salvage",
        help="recover everything readable from a damaged container",
    )
    salvage.add_argument("input", help="(possibly damaged) ISOBAR container")
    salvage.add_argument("output", help="output raw dataset file")
    salvage.add_argument(
        "--policy", choices=["skip", "zero_fill"], default="skip",
        help="skip: drop damaged chunks; zero_fill: keep absolute "
             "element positions by substituting zeros (default: skip)",
    )
    salvage.add_argument(
        "--unclosed", action="store_true",
        help="treat the input as a never-closed stream (crashed writer) "
             "and discover chunks by forward scan",
    )
    salvage.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="collect salvage metrics and write the registry as JSON "
             "to PATH ('-' for stdout)",
    )

    stats = sub.add_parser(
        "stats",
        help="profile a compression run with the observability layer",
    )
    stats.add_argument("input", help="raw dataset file")
    stats.add_argument("--preference", choices=["ratio", "speed"],
                       default="ratio")
    stats.add_argument("--codec", default=None,
                       help="explicit solver override (e.g. zlib, bzip2)")
    stats.add_argument("--linearization", choices=["row", "column"],
                       default=None)
    stats.add_argument("--chunk-elements", type=int, default=None)
    stats.add_argument("--tau", type=float, default=None)
    _add_selector_argument(stats)
    stats.add_argument("--workers", type=int, default=1,
                       help="pipeline worker count (>1 uses the parallel "
                            "compressor; default: 1)")
    stats.add_argument("--max-inflight", type=int, default=None,
                       help="backpressure bound for the pipelined engine "
                            "(default: 2 x workers)")
    stats.add_argument("--no-roundtrip", action="store_true",
                       help="skip the decompression leg of the profile")
    stats.add_argument("--metrics-json", metavar="PATH", default=None,
                       help="also write the metrics registry as JSON "
                            "to PATH ('-' for stdout)")
    stats.add_argument("--prometheus", metavar="PATH", default=None,
                       help="also write Prometheus text exposition "
                            "to PATH ('-' for stdout)")

    extract = sub.add_parser(
        "extract", help="random-access read of an element range"
    )
    extract.add_argument("input", help="ISOBAR container")
    extract.add_argument("output", help="output raw dataset file")
    extract.add_argument("--start", type=int, required=True)
    extract.add_argument("--stop", type=int, required=True)

    sub.add_parser("codecs", help="list registered solvers")

    concat = sub.add_parser(
        "concat", help="merge containers without recompression"
    )
    concat.add_argument("inputs", nargs="+",
                        help="input ISOBAR containers, in order")
    concat.add_argument("output", help="merged container")

    serve = sub.add_parser(
        "serve",
        help="run the resilient async compression service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--max-inflight", type=int, default=4,
                       help="concurrent compute requests (executor threads)")
    serve.add_argument("--max-queue", type=int, default=16,
                       help="admitted-but-waiting requests before shedding "
                            "with 429")
    serve.add_argument("--deadline-seconds", type=float, default=30.0,
                       help="default per-request wall-clock budget")
    serve.add_argument("--max-deadline-seconds", type=float, default=120.0,
                       help="cap on client-requested deadlines")
    serve.add_argument("--drain-seconds", type=float, default=10.0,
                       help="grace period for in-flight work on SIGTERM")
    serve.add_argument("--max-body-mb", type=float, default=64.0,
                       help="request body limit in MiB (413 beyond it)")
    serve.add_argument("--pipeline-workers", type=int, default=1,
                       help="per-request chunk parallelism (>1 serves "
                            "each request with the pipelined parallel "
                            "compressor; default: 1)")
    serve.add_argument("--pipeline-max-inflight", type=int, default=None,
                       help="backpressure bound for the per-request "
                            "pipeline (default: 2 x pipeline workers)")
    serve.add_argument("--preference", choices=["ratio", "speed"],
                       default="ratio")
    serve.add_argument("--codec", default=None,
                       help="explicit solver override served by default")
    serve.add_argument("--linearization", choices=["row", "column"],
                       default=None)
    serve.add_argument("--chunk-elements", type=int, default=None)
    serve.add_argument("--tau", type=float, default=None)
    _add_selector_argument(serve)
    serve.add_argument("--strict", action="store_true",
                       help="serve with strict resilience (degradation "
                            "becomes 503 instead of a degraded 200)")
    _add_retry_arguments(serve)
    serve.add_argument("--chaos-seed", type=int, default=0,
                       help="seed for the wire-level fault injectors")
    serve.add_argument("--chaos-delay-percent", type=float, default=0.0,
                       help="percent of requests delayed before handling")
    serve.add_argument("--chaos-stall-percent", type=float, default=0.0,
                       help="percent of responses stalled mid-body")
    serve.add_argument("--chaos-truncate-percent", type=float, default=0.0,
                       help="percent of responses truncated mid-body")
    serve.add_argument("--stall-probe-ms", type=float, default=None,
                       help="attach the tsan-lite event-loop stall probe: "
                            "count callbacks holding the loop longer than "
                            "this many milliseconds (default: off)")

    plan = sub.add_parser(
        "plan",
        help="dry-run the selector on a file: decision and "
             "evaluations/predictions, no container written",
    )
    plan.add_argument("input", help="raw dataset file")
    plan.add_argument("--preference", choices=["ratio", "speed"],
                      default="ratio")
    plan.add_argument("--codec", default=None,
                      help="explicit solver override (restricts candidates)")
    plan.add_argument("--linearization", choices=["row", "column"],
                      default=None)
    plan.add_argument("--chunk-elements", type=int, default=None)
    plan.add_argument("--tau", type=float, default=None)
    _add_selector_argument(plan)
    plan.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the full decision document as JSON")

    lint = sub.add_parser(
        "lint", help="check repo invariants (rules ISO001-ISO011)"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit a machine-readable JSON report instead of text",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="run the tsan-lite concurrency sanitizer (lock-order "
             "graph, loop-stall probe, leak tracker)",
    )
    sanitize.add_argument(
        "--smoke", action="store_true",
        help="run the fixed smoke scenarios instead of the full "
             "instrumented test suite",
    )
    sanitize.add_argument(
        "--seed-inversion", action="store_true",
        help="plant a two-thread lock inversion; the run must then "
             "report the cycle (sanitizer self-test)",
    )
    sanitize.add_argument(
        "--stall-threshold-ms", type=float, default=1000.0,
        help="loop-stall threshold for the service smoke scenario "
             "(default: 1000)",
    )
    sanitize.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of text",
    )
    sanitize.add_argument(
        "pytest_args", nargs="*",
        help="extra pytest arguments for the full instrumented run",
    )

    bench = sub.add_parser("bench", help="regenerate a paper table or figure")
    bench.add_argument("--table", type=int, choices=range(1, 11),
                       help="paper table number (1-10)")
    bench.add_argument("--figure", type=int, choices=(1, 8, 9, 10),
                       help="paper figure number")
    bench.add_argument("--section-f", action="store_true",
                       help="run the Section F consistency experiment")
    bench.add_argument("--elements", type=int, default=100_000)
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    values = generate_dataset(args.dataset, n_elements=args.elements,
                              seed=args.seed)
    written = save_raw(args.output, values)
    print(f"wrote {args.dataset}: {values.size} x {values.dtype} "
          f"({written} bytes) -> {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    values = load_raw(args.input)
    if args.full:
        from repro.analysis.profile import profile_dataset

        print(profile_dataset(args.input, values, tau=args.tau).render())
        return 0
    stats = dataset_statistics(args.input, values)
    result = analyze(values, tau=args.tau)
    print(f"elements        : {stats.n_elements} x {stats.dtype}")
    print(f"unique values   : {stats.unique_percent:.1f}%")
    print(f"shannon entropy : {stats.entropy_bits:.2f} bits")
    print(f"randomness      : {stats.randomness:.1f}%")
    print(f"analyzer        : {result.summary()}")
    print(f"hard-to-compress: {'yes' if result.hard_to_compress else 'no'}; "
          f"improvable: {'yes' if result.improvable else 'no'}")
    if args.bits:
        profile = bit_frequency_profile(args.input, values)
        print(f"bit profile     : {profile.render_ascii()}")
        print(f"noisy bits      : {profile.noisy_bits}/{profile.n_bits}")
    return 0


def _add_retry_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared resilience retry/backoff flag group."""
    group = parser.add_argument_group("retry policy")
    group.add_argument("--retries", type=int, default=None, metavar="N",
                       help="retries per chunk after the first attempt "
                            "(default: policy max_attempts - 1)")
    group.add_argument("--retry-backoff", type=float, default=None,
                       metavar="SECONDS",
                       help="base of the exponential backoff between "
                            "retries (0 retries immediately)")
    group.add_argument("--retry-jitter", action="store_true",
                       help="randomise each backoff over [0, envelope] "
                            "(full jitter, seeded — decorrelates "
                            "concurrent retries)")
    group.add_argument("--retry-jitter-seed", type=int, default=None,
                       metavar="INT",
                       help="seed for the jitter stream (default 0)")


def _apply_retry_args(
    config: IsobarConfig, args: argparse.Namespace
) -> IsobarConfig:
    """Fold the shared retry flags into ``config.resilience``."""
    overrides: dict[str, object] = {}
    if getattr(args, "retries", None) is not None:
        overrides["max_attempts"] = args.retries + 1
    if getattr(args, "retry_backoff", None) is not None:
        overrides["retry_backoff_seconds"] = args.retry_backoff
    if getattr(args, "retry_jitter", False):
        overrides["retry_jitter"] = True
    if getattr(args, "retry_jitter_seed", None) is not None:
        overrides["retry_jitter_seed"] = args.retry_jitter_seed
    if getattr(args, "strict", False):
        overrides["strict"] = True
    if not overrides:
        return config
    from repro.core.resilience import ResiliencePolicy

    policy = config.resilience or ResiliencePolicy()
    return config.replace(resilience=policy.replace(**overrides))


def _add_selector_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--selector`` strategy flag."""
    parser.add_argument(
        "--selector", default=None, metavar="STRATEGY",
        help="selection strategy: eupa (default, full timing probe), "
             "learned (predict-first, probes only when uncertain), "
             "cached (learned behind a shared decision cache), or any "
             "registered strategy name",
    )


def _config_from_args(args: argparse.Namespace) -> IsobarConfig:
    """Build an :class:`IsobarConfig` from compress/stats CLI flags."""
    overrides: dict[str, object] = {
        "preference": Preference.parse(args.preference),
    }
    if args.codec:
        overrides["codec"] = args.codec
    if args.linearization:
        overrides["linearization"] = Linearization.parse(args.linearization)
    if args.chunk_elements:
        overrides["chunk_elements"] = args.chunk_elements
    if args.tau:
        overrides["tau"] = args.tau
    if getattr(args, "selector", None):
        overrides["selector"] = args.selector
    return IsobarConfig().replace(**overrides)


def _pipeline_compressor(
    config: IsobarConfig | None,
    args: argparse.Namespace,
    *,
    collect_metrics: bool = False,
) -> IsobarCompressor:
    """The compressor the ``--workers``/``--max-inflight`` flags ask for.

    ``--workers 1`` (the default) returns the serial pipeline; above
    that, the pipelined parallel compressor with the requested
    backpressure bound.  Both produce identical containers.
    """
    if getattr(args, "workers", 1) > 1:
        from repro.core.parallel import ParallelIsobarCompressor

        return ParallelIsobarCompressor(
            config,
            n_workers=args.workers,
            max_inflight=getattr(args, "max_inflight", None),
            collect_metrics=collect_metrics,
        )
    return IsobarCompressor(config, collect_metrics=collect_metrics)


def _write_metrics_json(registry, path: str, *, decision=None) -> None:
    """Dump a metrics registry as JSON to ``path`` ('-' for stdout).

    ``decision`` (a :class:`~repro.core.selector.SelectorDecision`)
    embeds the run's full selector record — including any
    ``failed_candidates`` — next to the metric series.
    """
    import json

    from repro.observability import to_json

    text = to_json(registry, indent=2)
    if decision is not None:
        document = json.loads(text)
        document["selector_decision"] = decision.to_dict()
        text = json.dumps(document, indent=2)
    if path == "-":
        print(text)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"metrics         : wrote registry JSON -> {path}")


def _cmd_compress(args: argparse.Namespace) -> int:
    import json

    values = load_raw(args.input)
    config = _apply_retry_args(_config_from_args(args), args)
    compressor = _pipeline_compressor(
        config, args, collect_metrics=args.metrics_json is not None
    )
    with Stopwatch() as sw:
        result = compressor.compress_detailed(values)
    with open(args.output, "wb") as handle:
        handle.write(result.payload)
    mb = result.original_bytes / MEGABYTE
    print(f"codec           : {result.decision.summary()}")
    print(f"ratio           : {result.ratio:.3f} "
          f"(payload-only {result.payload_ratio:.3f})")
    print(f"throughput      : {mb / sw.seconds:.1f} MB/s "
          f"({result.original_bytes} -> {result.compressed_bytes} bytes)")
    print(f"container bytes : {result.stored_payload_bytes} payload "
          f"+ {result.container_overhead_bytes} metadata overhead")
    improvable_chunks = sum(1 for c in result.chunks if c.improvable)
    print(f"chunks          : {len(result.chunks)} "
          f"({improvable_chunks} improvable)")
    if result.decision.failed_candidates:
        for fail in result.decision.failed_candidates:
            print(f"warning: selector candidate ({fail.codec_name}, "
                  f"{fail.linearization.value}) failed: {fail.error}",
                  file=sys.stderr)
    if args.metrics_json is not None:
        report = compressor.last_report
        if report is not None:
            for line in report.summary_lines():
                print(line)
        _write_metrics_json(
            compressor.metrics, args.metrics_json,
            decision=result.decision,
        )
    if args.resilience_json is not None:
        text = json.dumps(result.degradation.to_dict(), indent=2)
        if args.resilience_json == "-":
            print(text)
        else:
            with open(args.resilience_json, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"resilience      : wrote degradation report -> "
                  f"{args.resilience_json}")
    if result.degraded:
        # Mirror salvage: output was written and decodes exactly, but
        # the run was not clean — exit 2 so scripts can tell.
        for line in result.degradation.summary_lines():
            print(f"warning: {line}", file=sys.stderr)
        return 2
    return 0


def _cmd_decompress(args: argparse.Namespace) -> int:
    with open(args.input, "rb") as handle:
        payload = handle.read()
    compressor = _pipeline_compressor(
        None, args, collect_metrics=args.metrics_json is not None
    )
    with Stopwatch() as sw:
        values = compressor.decompress(payload)
    save_raw(args.output, np.asarray(values))
    mb = values.nbytes / MEGABYTE
    print(f"restored {values.size} x {values.dtype} elements "
          f"at {mb / sw.seconds:.1f} MB/s -> {args.output}")
    if args.metrics_json is not None:
        report = compressor.last_report
        if report is not None:
            for line in report.summary_lines():
                print(line)
        _write_metrics_json(compressor.metrics, args.metrics_json)
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from repro.core.autotune import autotune_tau

    values = load_raw(args.input)
    sweep = autotune_tau(values, sample_elements=args.sample_elements)
    print(f"{'tau':>8s} {'ratio':>8s} plateau")
    for tau, ratio, in_plateau in sweep.as_rows():
        marker = "*" if in_plateau else ""
        print(f"{tau:8.3f} {ratio:8.3f} {marker}")
    print(f"chosen tau       : {sweep.chosen_tau}")
    print(f"statistical floor: {sweep.statistical_floor:.3f} "
          f"(for {min(args.sample_elements, values.size)} sampled elements)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.core.random_access import ContainerReader

    with open(args.input, "rb") as handle:
        payload = handle.read()
    reader = ContainerReader(payload)
    header = reader.header
    print(f"dtype           : {header.dtype}")
    print(f"elements        : {header.n_elements} (shape {header.shape})")
    print(f"codec           : {header.codec_name}")
    print(f"linearization   : {header.linearization.value}")
    print(f"preference      : {header.preference.value}")
    print(f"tau             : {header.tau}")
    print(f"chunks          : {header.n_chunks} "
          f"(nominal {header.chunk_elements} elements each)")
    original = header.n_elements * header.element_width
    print(f"ratio           : {original / len(payload):.3f} "
          f"({original} -> {len(payload)} bytes)")
    improvable = sum(
        1 for entry in reader.chunk_index()
        if entry.metadata.incompressible_size > 0
    )
    print(f"improvable      : {improvable}/{header.n_chunks} chunks "
          f"partitioned")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.validate import validate_container

    with open(args.input, "rb") as handle:
        payload = handle.read()
    report = validate_container(payload)
    for line in report.summary_lines():
        print(line)
    if args.deep:
        from repro.core.salvage import salvage_decompress

        try:
            salvaged = salvage_decompress(payload, policy="skip")
        except IsobarError as exc:
            print(f"salvage: not recoverable ({exc})")
        else:
            lines = salvaged.report.summary_lines()
            print("salvage: " + "; ".join(
                line for line in lines
                if line.startswith(("policy ", "RESULT:"))
            ))
    return 0 if report.valid else 1


def _cmd_fsck(args: argparse.Namespace) -> int:
    from repro.core.fsck import fsck

    report = fsck(args.input, repair=args.repair)
    for line in report.summary_lines():
        print(line)
    # 0: clean (or fully repaired); 2: fixable with --repair;
    # 1: damage --repair cannot fix.
    if report.clean:
        return 0
    return 2 if report.repairable else 1


def _cmd_salvage(args: argparse.Namespace) -> int:
    from repro.core.salvage import salvage_decompress

    registry = None
    if args.metrics_json is not None:
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
    with open(args.input, "rb") as handle:
        payload = handle.read()
    with Stopwatch() as sw:
        result = salvage_decompress(
            payload, policy=args.policy, to_eof=args.unclosed,
            metrics=registry,
        )
    for line in result.report.summary_lines():
        print(line)
    if registry is not None:
        _write_metrics_json(registry, args.metrics_json)
    save_raw(args.output, np.asarray(result.values).reshape(-1))
    mb = result.values.nbytes / MEGABYTE
    print(f"wrote {result.values.size} elements "
          f"({mb / max(sw.seconds, 1e-9):.1f} MB/s) -> {args.output}")
    # 0: everything recovered; 2: partial recovery (output still written).
    return 0 if result.report.complete else 2


def _cmd_extract(args: argparse.Namespace) -> int:
    from repro.core.random_access import ContainerReader

    with open(args.input, "rb") as handle:
        payload = handle.read()
    reader = ContainerReader(payload)
    with Stopwatch() as sw:
        window = reader.read_range(args.start, args.stop)
    save_raw(args.output, window)
    first = reader.chunk_for_element(args.start).index if window.size else 0
    last = (reader.chunk_for_element(args.stop - 1).index
            if window.size else 0)
    print(f"extracted [{args.start}, {args.stop}) "
          f"({window.size} elements) touching chunks {first}..{last} "
          f"of {reader.n_chunks} in {sw.seconds * 1e3:.1f} ms -> "
          f"{args.output}")
    return 0


def _cmd_concat(args: argparse.Namespace) -> int:
    from repro.core.concat import concat_containers
    from repro.core.random_access import ContainerReader

    payloads = []
    for path in args.inputs:
        with open(path, "rb") as handle:
            payloads.append(handle.read())
    merged = concat_containers(payloads)
    with open(args.output, "wb") as handle:
        handle.write(merged)
    reader = ContainerReader(merged)
    print(f"merged {len(payloads)} containers -> {args.output}: "
          f"{reader.n_elements} elements in {reader.n_chunks} chunks "
          f"({len(merged)} bytes, no recompression)")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.observability import to_prometheus_text

    values = load_raw(args.input)
    config = _config_from_args(args)
    compressor = _pipeline_compressor(config, args, collect_metrics=True)

    result = compressor.compress_detailed(values)
    compress_report = compressor.last_report
    print("== compress ==")
    for line in compress_report.summary_lines():
        print(line)
    print(f"container: {result.stored_payload_bytes} payload bytes + "
          f"{result.container_overhead_bytes} metadata overhead "
          f"(ratio {result.ratio:.3f}, payload-only "
          f"{result.payload_ratio:.3f})")

    if not args.no_roundtrip:
        restored = compressor.decompress(result.payload)
        if not np.array_equal(np.asarray(restored), np.asarray(values)):
            print("error: round-trip mismatch", file=sys.stderr)
            return 1
        print("== decompress ==")
        for line in compressor.last_report.summary_lines():
            print(line)

    if args.prometheus is not None:
        text = to_prometheus_text(compressor.metrics)
        if args.prometheus == "-":
            print(text, end="")
        else:
            with open(args.prometheus, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"metrics         : wrote Prometheus text -> "
                  f"{args.prometheus}")
    if args.metrics_json is not None:
        _write_metrics_json(compressor.metrics, args.metrics_json)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import json

    from repro.api import plan

    values = load_raw(args.input)
    config = _config_from_args(args)
    with Stopwatch() as sw:
        decision = plan(values, config=config)
    if args.as_json:
        print(json.dumps(decision.to_dict(), indent=2))
        return 0
    print(f"decision        : {decision.summary()}")
    print(f"origin          : {decision.origin} "
          f"({sw.seconds * 1e3:.1f} ms)")
    print(f"improvable      : {'yes' if decision.improvable else 'no'}; "
          f"sample {decision.sample_elements} elements")
    for cand in decision.candidates:
        print(f"  measured {cand.codec_name:>6s} + "
              f"{cand.linearization.value:<6s}: ratio {cand.ratio:.3f}, "
              f"{cand.throughput / MEGABYTE:.1f} MB/s")
    for pred in decision.predictions:
        marker = "" if pred.confident else " (uncertain)"
        print(f"  predicted {pred.codec_name:>6s} + "
              f"{pred.linearization.value:<6s}: ratio "
              f"{pred.predicted_ratio:.3f}{marker}")
    for fail in decision.failed_candidates:
        print(f"  failed {fail.codec_name} + {fail.linearization.value}: "
              f"{fail.error}", file=sys.stderr)
    return 0


def _cmd_codecs(args: argparse.Namespace) -> int:
    from repro.codecs.base import iter_codecs

    sample = bytes(range(64)) * 64  # 4 KiB probe with structure
    print(f"{'name':14s} {'type':26s} probe ratio")
    for codec in iter_codecs():
        ratio = len(sample) / len(codec.compress(sample))
        print(f"{codec.name:14s} {type(codec).__name__:26s} {ratio:10.3f}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.devtools.lint import default_lint_root, run

    report = run(args.paths or [default_lint_root()])
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import json

    from repro.devtools.sanitizer.harness import run_smoke, run_tests

    if args.smoke:
        report = run_smoke(
            seed_inversion=args.seed_inversion,
            stall_threshold_seconds=args.stall_threshold_ms / 1000.0,
        )
    else:
        report = run_tests(args.pytest_args)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    # Imports are local: the bench stack pulls in every subsystem and
    # is only needed for this subcommand.
    from repro.bench import tables as bench_tables
    from repro.bench import figures as bench_figures

    n = args.elements
    emitted = False
    if args.table:
        table_fns = {
            1: lambda: bench_tables.table1_datasets(),
            2: lambda: bench_tables.table2_summary(n_elements=n),
            3: lambda: bench_tables.table3_statistics(n_elements=n),
            4: lambda: bench_tables.table4_analyzer(n_elements=n),
            5: lambda: bench_tables.table5_comparison(n_elements=n),
            6: lambda: bench_tables.table6_speed_preference(n_elements=n),
            7: lambda: bench_tables.table7_ratio_preference(n_elements=n),
            8: lambda: bench_tables.table8_single_precision(n_elements=n),
            9: lambda: bench_tables.table9_decompression(n_elements=n),
            10: lambda: bench_tables.table10_fpc_fpzip(n_elements=n),
        }
        print(table_fns[args.table]().render())
        emitted = True
    if args.figure:
        figure_fns = {
            1: lambda: bench_figures.figure1_bit_frequencies(n_elements=n),
            8: lambda: bench_figures.figure8_chunk_size(n_elements=max(n, 100_000)),
            9: lambda: bench_figures.figure9_linearization_cr(
                n_side=max(int(n ** 0.5), 50)),
            10: lambda: bench_figures.figure10_linearization_sp(
                n_side=max(int(n ** 0.5), 50)),
        }
        print(figure_fns[args.figure]().render())
        emitted = True
    if args.section_f:
        print(bench_tables.section_f_consistency(n_elements=n).render())
        emitted = True
    if not emitted:
        print("nothing to do: pass --table N, --figure N or --section-f",
              file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.app import (
        DEFAULT_SERVICE_POLICY,
        IsobarService,
        ServiceConfig,
    )
    from repro.service.chaos import NetworkChaos, NetworkChaosPolicy

    # Serve with the service defaults (jittered backoff + chunk
    # deadline), then layer the CLI flags on top.
    config = _apply_retry_args(
        _config_from_args(args).replace(resilience=DEFAULT_SERVICE_POLICY),
        args,
    )

    chaos = None
    if (
        args.chaos_delay_percent
        or args.chaos_stall_percent
        or args.chaos_truncate_percent
    ):
        chaos = NetworkChaos(NetworkChaosPolicy(
            seed=args.chaos_seed,
            delay_percent=args.chaos_delay_percent,
            stall_percent=args.chaos_stall_percent,
            truncate_percent=args.chaos_truncate_percent,
        ))
        print("chaos           : wire-level fault injection ENABLED",
              file=sys.stderr)

    service = IsobarService(
        ServiceConfig(
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            default_deadline_seconds=args.deadline_seconds,
            max_deadline_seconds=args.max_deadline_seconds,
            drain_seconds=args.drain_seconds,
            max_body_bytes=int(args.max_body_mb * 1024 * 1024),
            pipeline_workers=args.pipeline_workers,
            pipeline_max_inflight=args.pipeline_max_inflight,
            stall_probe_threshold_seconds=(
                args.stall_probe_ms / 1000.0
                if args.stall_probe_ms is not None else None
            ),
            isobar=config,
        ),
        chaos=chaos,
    )

    async def _run() -> None:
        await service.start()
        print(f"listening       : http://{args.host}:{service.port}")
        print(f"admission       : {args.max_inflight} in flight, "
              f"{args.max_queue} queued, then 429")
        if args.pipeline_workers > 1:
            print(f"pipeline        : {args.pipeline_workers} chunk "
                  "workers per request")
        print("drain           : SIGTERM/SIGINT finishes in-flight work "
              f"(up to {args.drain_seconds:.0f}s)")
        await service.serve_forever()
        print("drained         : all in-flight work settled, bye")

    asyncio.run(_run())
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "compress": _cmd_compress,
    "decompress": _cmd_decompress,
    "autotune": _cmd_autotune,
    "info": _cmd_info,
    "verify": _cmd_verify,
    "fsck": _cmd_fsck,
    "salvage": _cmd_salvage,
    "stats": _cmd_stats,
    "extract": _cmd_extract,
    "plan": _cmd_plan,
    "codecs": _cmd_codecs,
    "concat": _cmd_concat,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except IsobarError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
