"""Solver layer: byte-stream codecs (for ISOBAR) and array codecs.

Importing this package registers the standard byte-stream solvers —
``zlib``, ``bzip2`` and ``lzma`` — plus fast variants (``zlib-1``,
``bzip2-1``) in the global codec registry, so
``repro.codecs.get_codec("zlib")`` works out of the box.

The array codecs (:class:`FpcCodec`, :class:`FpzipLikeCodec`, the PFOR
family) are the paper's comparison baselines and are used directly
rather than through the byte-codec registry.
"""

from repro.codecs.array_base import ArrayCodec, pack_array_header, unpack_array_header
from repro.codecs.base import (
    CallableCodec,
    Codec,
    codec_names,
    codec_registry_snapshot,
    get_codec,
    iter_codecs,
    register_codec,
)
from repro.codecs.bitio import BitReader, BitWriter
from repro.codecs.bwt import BwtCodec
from repro.codecs.fpc import FpcCodec
from repro.codecs.huffman import HuffmanCodec
from repro.codecs.lzss import LzssCodec
from repro.codecs.rle import RleCodec
from repro.codecs.fpzip_like import (
    FpzipLikeCodec,
    float_to_ordered_uint,
    ordered_uint_to_float,
)
from repro.codecs.range_coder import RangeCoderCodec
from repro.codecs.pfor import (
    PdictCodec,
    PforCodec,
    PforDeltaCodec,
    pack_bits,
    unpack_bits,
)
from repro.codecs.standard import (
    Bzip2Codec,
    IsalZlibCodec,
    LzmaCodec,
    ZlibCodec,
    isal_available,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "HuffmanCodec",
    "LzssCodec",
    "RleCodec",
    "RangeCoderCodec",
    "BwtCodec",
    "ArrayCodec",
    "pack_array_header",
    "unpack_array_header",
    "CallableCodec",
    "Codec",
    "codec_names",
    "codec_registry_snapshot",
    "get_codec",
    "iter_codecs",
    "register_codec",
    "FpcCodec",
    "FpzipLikeCodec",
    "float_to_ordered_uint",
    "ordered_uint_to_float",
    "PdictCodec",
    "PforCodec",
    "PforDeltaCodec",
    "pack_bits",
    "unpack_bits",
    "Bzip2Codec",
    "IsalZlibCodec",
    "LzmaCodec",
    "ZlibCodec",
    "isal_available",
]

# Default solver registry.  zlib and bzip2 at their library-default
# levels are the paper's two solvers; the fast variants and lzma extend
# the EUPA-selector's candidate space.
register_codec(ZlibCodec())
register_codec(ZlibCodec(level=1))
register_codec(ZlibCodec(level=9))
register_codec(Bzip2Codec())
register_codec(Bzip2Codec(level=1))
register_codec(LzmaCodec())
# Optional ISA-L-accelerated DEFLATE; registered unconditionally (it
# degrades to stdlib zlib when python-isal is absent) so container
# files naming it always decode.
register_codec(IsalZlibCodec())
# From-scratch demonstration solvers (pure Python; best kept to modest
# payload sizes — ratios are honest, throughput is interpreter-bound).
register_codec(HuffmanCodec())
register_codec(LzssCodec())
register_codec(RleCodec())
register_codec(RangeCoderCodec())
register_codec(BwtCodec())
