"""Array codecs: lossless compressors that operate on typed arrays.

FPC, fpzip and the PFOR family are not byte-stream compressors — they
exploit the element structure of the data (64-bit doubles, integer
columns).  :class:`ArrayCodec` is their contract: a numpy array in, a
self-describing byte string out, with a bit-exact round trip.

A tiny self-describing header (dtype + shape) is provided so every
array codec can rebuild the exact array without out-of-band metadata.
"""

from __future__ import annotations

import abc
import struct

import numpy as np

from repro.core.exceptions import ContainerFormatError, InvalidInputError

__all__ = [
    "ArrayCodec",
    "pack_array_header",
    "unpack_array_header",
]

_HEADER_MAGIC = b"RARR"
_MAX_DIMS = 16


def pack_array_header(array: np.ndarray) -> bytes:
    """Serialize dtype and shape of ``array`` into a compact header."""
    if array.ndim > _MAX_DIMS:
        raise InvalidInputError(
            f"arrays with more than {_MAX_DIMS} dimensions are not supported"
        )
    dtype_str = array.dtype.str.encode("ascii")  # e.g. b"<f8"
    parts = [
        _HEADER_MAGIC,
        struct.pack("<BB", len(dtype_str), array.ndim),
        dtype_str,
        struct.pack(f"<{array.ndim}q", *array.shape),
    ]
    return b"".join(parts)


def unpack_array_header(data: bytes) -> tuple[np.dtype, tuple[int, ...], int]:
    """Parse a header written by :func:`pack_array_header`.

    Returns ``(dtype, shape, header_length)`` so the caller can slice
    off the payload at ``data[header_length:]``.
    """
    if len(data) < 6 or data[:4] != _HEADER_MAGIC:
        raise ContainerFormatError("missing or corrupt array header magic")
    dtype_len, ndim = struct.unpack_from("<BB", data, 4)
    offset = 6
    if len(data) < offset + dtype_len + 8 * ndim:
        raise ContainerFormatError("truncated array header")
    dtype_str = data[offset:offset + dtype_len].decode("ascii")
    offset += dtype_len
    shape = struct.unpack_from(f"<{ndim}q", data, offset)
    offset += 8 * ndim
    try:
        dtype = np.dtype(dtype_str)
    except TypeError as exc:
        raise ContainerFormatError(f"invalid dtype in header: {dtype_str!r}") from exc
    if any(dim < 0 for dim in shape):
        raise ContainerFormatError(f"negative dimension in header shape {shape}")
    return dtype, tuple(shape), offset


class ArrayCodec(abc.ABC):
    """A lossless compressor over typed numpy arrays.

    Implementations must guarantee that :meth:`decode` restores the
    exact dtype, shape and bit pattern produced by :meth:`encode`.
    """

    #: Human-readable codec name used in reports.
    name: str = ""

    @abc.abstractmethod
    def encode(self, array: np.ndarray) -> bytes:
        """Compress ``array`` into a self-describing byte string."""

    @abc.abstractmethod
    def decode(self, data: bytes) -> np.ndarray:
        """Invert :meth:`encode`, restoring the original array exactly."""

    def ratio(self, array: np.ndarray) -> float:
        """Compression ratio achieved on ``array`` (Eq. 1)."""
        arr = np.asarray(array)
        if arr.size == 0:
            raise InvalidInputError(
                f"{self.name}: cannot measure ratio of an empty array"
            )
        return arr.nbytes / len(self.encode(arr))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
