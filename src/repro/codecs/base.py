"""Solver interface: general-purpose lossless codecs.

The paper treats the compressor as an interchangeable *solver* behind
the ISOBAR preconditioner — "a user can specify a preference in
compressor to use with little to no change to our preconditioning
method".  :class:`Codec` is that contract: bytes in, bytes out, lossless
round trip.  A process-wide registry maps stable names (``"zlib"``,
``"bzip2"``, ...) to codec instances so containers can record which
solver produced them.
"""

from __future__ import annotations

import abc
import threading
from typing import Callable, Iterator

from repro.core.exceptions import CodecError, UnknownCodecError

__all__ = [
    "Codec",
    "register_codec",
    "unregister_codec",
    "get_codec",
    "codec_names",
    "iter_codecs",
    "codec_registry_snapshot",
]


class Codec(abc.ABC):
    """A lossless byte-stream compressor (the paper's *solver*).

    Implementations must guarantee ``decompress(compress(data)) == data``
    for arbitrary byte strings.  Codecs are stateless and safe to share;
    per-call parameters (e.g. compression level) are constructor
    arguments baked into the instance.
    """

    #: Registry name; subclasses must override.
    name: str = ""

    #: True when :meth:`compress`/:meth:`decompress` release the GIL for
    #: the bulk of their work (zlib/bz2/lzma/isal C calls do).  The
    #: pipelined parallel engine uses this to decide whether worker
    #: *threads* can scale the codec, or whether the work must be routed
    #: to a process pool instead.
    releases_gil: bool = False

    #: True when the codec is stateless AND resolvable by name in a
    #: freshly spawned interpreter (i.e. registered by ``repro.codecs``
    #: at import time).  Required for the process-pool fallback: the
    #: child process re-resolves the codec from its own registry, so
    #: ad-hoc codecs (chaos wrappers, test doubles) must keep the
    #: default ``False`` and stay on the thread path.
    process_safe: bool = False

    @abc.abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` and return the encoded byte string."""

    @abc.abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`, returning the original bytes."""

    def ratio(self, data: bytes) -> float:
        """Convenience: the compression ratio this codec achieves on ``data``."""
        if not data:
            raise CodecError(f"{self.name}: cannot measure ratio of empty input")
        return len(data) / len(self.compress(data))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"


_REGISTRY: dict[str, Codec] = {}
# Guards _REGISTRY: the chaos harness shadows/restores codecs while the
# parallel pipeline resolves them from worker threads.
_REGISTRY_LOCK = threading.Lock()


def register_codec(codec: Codec, *, replace: bool = False) -> Codec:
    """Add ``codec`` to the global registry under ``codec.name``.

    Registration is idempotent for the same instance; re-registering a
    different instance under an existing name requires ``replace=True``
    so accidental shadowing fails loudly.
    """
    if not codec.name:
        raise CodecError(f"codec {codec!r} has no name; cannot register")
    with _REGISTRY_LOCK:
        existing = _REGISTRY.get(codec.name)
        if existing is not None and existing is not codec and not replace:
            raise CodecError(
                f"codec name {codec.name!r} already registered; "
                "pass replace=True to override"
            )
        _REGISTRY[codec.name] = codec
    return codec


def unregister_codec(name: str) -> Codec:
    """Remove and return the codec registered under ``name``.

    Raises :class:`UnknownCodecError` when the name is absent.  Used by
    the chaos harness to restore the registry after temporarily
    shadowing a real codec with a misbehaving wrapper.
    """
    with _REGISTRY_LOCK:
        try:
            return _REGISTRY.pop(name)
        except KeyError:
            raise UnknownCodecError(name, tuple(_REGISTRY)) from None


def get_codec(name: str) -> Codec:
    """Look up a codec by registry name.

    Raises :class:`UnknownCodecError` (listing the available names) when
    the codec does not exist.
    """
    with _REGISTRY_LOCK:
        try:
            return _REGISTRY[name]
        except KeyError:
            raise UnknownCodecError(name, tuple(_REGISTRY)) from None


def codec_names() -> tuple[str, ...]:
    """Names of all registered codecs, sorted."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def iter_codecs() -> Iterator[Codec]:
    """Iterate over registered codec instances in name order."""
    for name in codec_names():
        codec = _REGISTRY.get(name)
        if codec is not None:
            yield codec


def codec_registry_snapshot() -> dict[str, Codec]:
    """A shallow copy of the registry, for tests and diagnostics."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


class CallableCodec(Codec):
    """Adapter turning a pair of functions into a :class:`Codec`.

    Useful in tests and for quick experiments::

        codec = CallableCodec("identity", lambda b: b, lambda b: b)
    """

    def __init__(
        self,
        name: str,
        compress_fn: Callable[[bytes], bytes],
        decompress_fn: Callable[[bytes], bytes],
    ):
        self.name = name
        self._compress_fn = compress_fn
        self._decompress_fn = decompress_fn

    def compress(self, data: bytes) -> bytes:
        return self._compress_fn(data)

    def decompress(self, data: bytes) -> bytes:
        return self._decompress_fn(data)


__all__.append("CallableCodec")
