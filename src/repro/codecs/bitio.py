"""Bit-level stream I/O used by the from-scratch entropy coders.

:class:`BitWriter` accumulates bits MSB-first into a growing byte
buffer; :class:`BitReader` replays them.  Both operate on plain Python
integers, which keeps them simple and exactly reversible; the entropy
coders built on top (Huffman, LZSS) handle buffering granularity.
"""

from __future__ import annotations

from repro.core.exceptions import ContainerFormatError, InvalidInputError

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulate bits MSB-first and emit whole bytes.

    The final byte is zero-padded on :meth:`getvalue`; the consumer is
    expected to know the payload length (all users store explicit
    counts).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._n_bits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._accumulator = (self._accumulator << 1) | (bit & 1)
        self._n_bits += 1
        if self._n_bits == 8:
            self._buffer.append(self._accumulator)
            self._accumulator = 0
            self._n_bits = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise InvalidInputError(f"width must be non-negative, got {width}")
        if width and value >> width:
            raise InvalidInputError(
                f"value {value} does not fit in {width} bits"
            )
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` one-bits followed by a terminating zero."""
        if value < 0:
            raise InvalidInputError(f"unary value must be >= 0, got {value}")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return 8 * len(self._buffer) + self._n_bits

    def getvalue(self) -> bytes:
        """Return the written stream, zero-padding the final byte."""
        if self._n_bits == 0:
            return bytes(self._buffer)
        tail = self._accumulator << (8 - self._n_bits)
        return bytes(self._buffer) + bytes([tail])


class BitReader:
    """Replay a stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0  # in bits

    @property
    def bits_remaining(self) -> int:
        """Bits available before the end of the underlying buffer."""
        return 8 * len(self._data) - self._position

    def read_bit(self) -> int:
        """Read the next bit; raises on exhaustion."""
        if self._position >= 8 * len(self._data):
            raise ContainerFormatError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an MSB-first integer."""
        if width < 0:
            raise InvalidInputError(f"width must be non-negative, got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self, limit: int = 1 << 20) -> int:
        """Read a unary-coded value (ones terminated by a zero)."""
        count = 0
        while self.read_bit():
            count += 1
            if count > limit:
                raise ContainerFormatError("unary run exceeds sanity limit")
        return count
