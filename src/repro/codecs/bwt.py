"""Mini-bzip2: BWT + MTF + zero-RLE + Huffman, from scratch.

bzlib2 — the paper's high-ratio solver — is a Burrows-Wheeler pipeline.
This module rebuilds that pipeline from first principles so the solver
stack contains a structural sibling of bzip2 whose every stage is
inspectable:

1. **BWT** — sort all cyclic rotations of the block (prefix-doubling
   over numpy argsort, O(n log^2 n) fully vectorised) and keep the last
   column plus the primary index;
2. **MTF** — move-to-front recoding turns the BWT's local symbol
   clustering into a stream dominated by small values;
3. **zero-RLE** — runs of MTF zeros (the dominant symbol) collapse into
   length tokens (bzip2's RUNA/RUNB idea, simplified to a two-symbol
   escape);
4. **Huffman** — the canonical Huffman coder from
   :mod:`repro.codecs.huffman` entropy-codes the result.

Input is processed in independent blocks (default 64 KiB) like the real
bzip2, bounding the sort cost and enabling streaming use.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec
from repro.codecs.huffman import HuffmanCodec
from repro.core.exceptions import CodecError, ConfigurationError

__all__ = ["BwtCodec", "bwt_forward", "bwt_inverse", "mtf_encode", "mtf_decode"]

_MAGIC = b"BWT1"


def bwt_forward(data: bytes) -> tuple[bytes, int]:
    """Burrows-Wheeler transform of one block.

    Returns ``(last_column, primary_index)`` where ``primary_index`` is
    the row of the original string in the sorted rotation matrix.
    Implemented with prefix doubling: ranks start as byte values and
    double their context length each round via a stable two-key argsort.
    """
    n = len(data)
    if n == 0:
        return b"", 0
    if n == 1:
        return data, 0
    arr = np.frombuffer(data, dtype=np.uint8)
    rank = arr.astype(np.int64)
    indices = np.arange(n, dtype=np.int64)
    k = 1
    while k < n:
        shifted = rank[(indices + k) % n]
        # Stable two-key sort: secondary key first, then primary.
        order = np.lexsort((shifted, rank))
        new_rank = np.empty(n, dtype=np.int64)
        sorted_primary = rank[order]
        sorted_secondary = shifted[order]
        changed = np.empty(n, dtype=bool)
        changed[0] = True
        changed[1:] = (
            (sorted_primary[1:] != sorted_primary[:-1])
            | (sorted_secondary[1:] != sorted_secondary[:-1])
        )
        new_rank[order] = np.cumsum(changed) - 1
        rank = new_rank
        if rank[order[-1]] == n - 1:  # all rotations distinguished
            break
        k <<= 1
    sa = np.argsort(rank, kind="stable")
    last_column = arr[(sa - 1) % n]
    primary_index = int(np.flatnonzero(sa == 0)[0])
    return last_column.tobytes(), primary_index


def bwt_inverse(last_column: bytes, primary_index: int) -> bytes:
    """Invert the BWT via the LF mapping."""
    n = len(last_column)
    if n == 0:
        return b""
    if not 0 <= primary_index < n:
        raise CodecError(
            f"BWT primary index {primary_index} out of range for block "
            f"of {n}"
        )
    column = np.frombuffer(last_column, dtype=np.uint8)
    # Stable sort of the last column gives the first column; the
    # argsort is exactly the LF-next permutation.
    lf = np.argsort(column, kind="stable")
    out = np.empty(n, dtype=np.uint8)
    position = primary_index
    for i in range(n):
        position = lf[position]
        out[i] = column[position]
    return out.tobytes()


def mtf_encode(data: bytes) -> bytes:
    """Move-to-front recoding (symbol -> current alphabet position)."""
    alphabet = list(range(256))
    out = bytearray(len(data))
    for i, byte in enumerate(data):
        position = alphabet.index(byte)
        out[i] = position
        if position:
            del alphabet[position]
            alphabet.insert(0, byte)
    return bytes(out)


def mtf_decode(data: bytes) -> bytes:
    """Invert :func:`mtf_encode`."""
    alphabet = list(range(256))
    out = bytearray(len(data))
    for i, position in enumerate(data):
        byte = alphabet[position]
        out[i] = byte
        if position:
            del alphabet[position]
            alphabet.insert(0, byte)
    return bytes(out)


def _zero_rle_encode(data: bytes) -> bytes:
    """Collapse runs of zeros into (0, length-1) token pairs.

    MTF output is dominated by zeros on BWT-clustered data; a run of
    ``r`` zeros becomes ``0x00`` followed by ``min(r, 256) - 1`` and
    repeats for longer runs.  Non-zero bytes pass through.
    """
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        if byte != 0:
            out.append(byte)
            i += 1
            continue
        run = 1
        while i + run < n and run < 256 and data[i + run] == 0:
            run += 1
        out.append(0)
        out.append(run - 1)
        i += run
    return bytes(out)


def _zero_rle_decode(data: bytes) -> bytes:
    """Invert :func:`_zero_rle_encode`."""
    out = bytearray()
    i = 0
    n = len(data)
    while i < n:
        byte = data[i]
        if byte != 0:
            out.append(byte)
            i += 1
            continue
        if i + 1 >= n:
            raise CodecError("truncated zero-run token in BWT stream")
        out.extend(b"\x00" * (data[i + 1] + 1))
        i += 2
    return bytes(out)


class BwtCodec(Codec):
    """Blocked Burrows-Wheeler compressor (miniature bzip2)."""

    process_safe = True

    def __init__(self, block_size: int = 65_536):
        if block_size < 16:
            raise ConfigurationError(
                f"block_size must be >= 16, got {block_size}"
            )
        self._block_size = block_size
        self._entropy = HuffmanCodec()
        self.name = "bwt"

    def compress(self, data: bytes) -> bytes:
        blocks = []
        for start in range(0, len(data), self._block_size):
            block = data[start:start + self._block_size]
            last_column, primary = bwt_forward(block)
            recoded = _zero_rle_encode(mtf_encode(last_column))
            packed = self._entropy.compress(recoded)
            blocks.append(struct.pack("<IQ", primary, len(packed)) + packed)
        return (
            _MAGIC
            + struct.pack("<QI", len(data), len(blocks))
            + b"".join(blocks)
        )

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 16 or data[:4] != _MAGIC:
            raise CodecError("not a BWT stream (bad magic or truncated)")
        total, n_blocks = struct.unpack_from("<QI", data, 4)
        offset = 16
        out = bytearray()
        for _ in range(n_blocks):
            if len(data) < offset + 12:
                raise CodecError("truncated BWT block header")
            primary, packed_len = struct.unpack_from("<IQ", data, offset)
            offset += 12
            packed = data[offset:offset + packed_len]
            if len(packed) != packed_len:
                raise CodecError("truncated BWT block payload")
            offset += packed_len
            recoded = self._entropy.decompress(packed)
            last_column = mtf_decode(_zero_rle_decode(recoded))
            out += bwt_inverse(last_column, primary)
        if len(out) != total:
            raise CodecError(
                f"BWT stream decoded {len(out)} bytes, header says {total}"
            )
        return bytes(out)
