"""FPC: high-speed predictive compressor for 64-bit data, from scratch.

Reimplementation of the algorithm of Burtscher & Ratanaworabhan
("FPC: A high-speed compressor for double-precision floating-point
data", IEEE ToC 2009), the stronger of the paper's Table X comparators.

Per 64-bit value the encoder:

1. predicts the value with two hash-table predictors — FCM (finite
   context method) and DFCM (differential FCM) — trained on the stream
   so far;
2. picks whichever prediction shares more leading zero *bytes* with the
   true value after XOR;
3. emits a 4-bit code (1 bit predictor choice + 3 bits leading-zero-byte
   count, with the count 4 folded down to 3 as in the original) followed
   by the non-zero residual bytes.

Two 4-bit codes are packed per header byte.  Decoding replays the same
predictor state machine, so no side information is needed beyond the
element count.

The implementation is pure Python over the sequential predictor state
(the data dependency chain cannot be vectorised); throughput is
therefore far below the C original, but ratios are faithful.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.array_base import ArrayCodec, pack_array_header, unpack_array_header
from repro.core.exceptions import ContainerFormatError, ConfigurationError, InvalidInputError

__all__ = ["FpcCodec"]

_MASK64 = (1 << 64) - 1

#: 3-bit code -> number of leading zero bytes.  FPC cannot express 4
#: leading zero bytes (code 4 means 5), so an actual count of 4 is
#: encoded as 3 and one extra zero byte is written literally.
_CODE_TO_LZB = (0, 1, 2, 3, 5, 6, 7, 8)
_LZB_TO_CODE = {0: 0, 1: 1, 2: 2, 3: 3, 4: 3, 5: 4, 6: 5, 7: 6, 8: 7}


def _leading_zero_bytes(value: int) -> int:
    """Number of leading zero bytes in a 64-bit residual."""
    if value == 0:
        return 8
    return (64 - value.bit_length()) >> 3


class FpcCodec(ArrayCodec):
    """FPC compressor for arrays of 8-byte elements (float64/int64/uint64).

    Parameters
    ----------
    table_size_log2:
        log2 of the predictor hash-table size.  The original paper
        explores 2^10 .. 2^26; larger tables raise ratio at the cost of
        memory.  Both predictors use tables of this size.
    """

    def __init__(self, table_size_log2: int = 16):
        if not 4 <= table_size_log2 <= 24:
            raise ConfigurationError(
                f"table_size_log2 must be in [4, 24], got {table_size_log2}"
            )
        self._table_bits = table_size_log2
        self._table_mask = (1 << table_size_log2) - 1
        self.name = "fpc"

    # -- public API -----------------------------------------------------

    def encode(self, array: np.ndarray) -> bytes:
        arr = np.asarray(array)
        if arr.dtype.itemsize != 8 or arr.dtype.kind not in "fiu":
            raise InvalidInputError(
                f"FPC handles 8-byte float/int elements only, got {arr.dtype!r}"
            )
        header = pack_array_header(arr)
        values = arr.reshape(-1).view(np.uint64)
        # Normalise to little-endian host-independent integer stream.
        values = values.astype(np.dtype("<u8"), copy=False).tolist()
        payload = self._encode_stream(values)
        return header + struct.pack("<B", self._table_bits) + payload

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        if dtype.itemsize != 8:
            raise ContainerFormatError(
                f"FPC payload declares non-8-byte dtype {dtype!r}"
            )
        if len(data) < offset + 1:
            raise ContainerFormatError("truncated FPC payload (missing table size)")
        table_bits = data[offset]
        if table_bits != self._table_bits:
            # Streams are self-contained: replay with the writer's table.
            decoder = FpcCodec(table_size_log2=table_bits)
            return decoder.decode(data)
        n_elements = 1
        for dim in shape:
            n_elements *= dim
        values = self._decode_stream(data[offset + 1:], n_elements)
        bits = np.array(values, dtype="<u8")
        little = bits.view(dtype.newbyteorder("<"))
        return little.astype(dtype, copy=False).reshape(shape)

    # -- stream coding ----------------------------------------------------

    def _encode_stream(self, values: list[int]) -> bytes:
        mask = self._table_mask
        fcm = [0] * (mask + 1)
        dfcm = [0] * (mask + 1)
        fcm_hash = 0
        dfcm_hash = 0
        prev = 0

        codes = bytearray()
        residuals = bytearray()
        pending_code: int | None = None

        for actual in values:
            pred_fcm = fcm[fcm_hash]
            pred_dfcm = (dfcm[dfcm_hash] + prev) & _MASK64

            res_fcm = actual ^ pred_fcm
            res_dfcm = actual ^ pred_dfcm
            if res_fcm <= res_dfcm:
                residual, predictor_bit = res_fcm, 0
            else:
                residual, predictor_bit = res_dfcm, 1

            lzb = _leading_zero_bytes(residual)
            code3 = _LZB_TO_CODE[lzb]
            emitted_lzb = _CODE_TO_LZB[code3]
            code = (predictor_bit << 3) | code3

            n_bytes = 8 - emitted_lzb
            residuals += residual.to_bytes(8, "big")[8 - n_bytes:]

            if pending_code is None:
                pending_code = code
            else:
                codes.append((pending_code << 4) | code)
                pending_code = None

            # Predictor updates (same recurrences as the original FPC).
            fcm[fcm_hash] = actual
            fcm_hash = ((fcm_hash << 6) ^ (actual >> 48)) & mask
            delta = (actual - prev) & _MASK64
            dfcm[dfcm_hash] = delta
            dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40)) & mask
            prev = actual

        if pending_code is not None:
            codes.append(pending_code << 4)

        return (
            struct.pack("<QQ", len(codes), len(residuals))
            + bytes(codes)
            + bytes(residuals)
        )

    def _decode_stream(self, payload: bytes, n_elements: int) -> list[int]:
        if len(payload) < 16:
            raise ContainerFormatError("truncated FPC payload (missing lengths)")
        n_codes, n_residuals = struct.unpack_from("<QQ", payload, 0)
        codes = payload[16:16 + n_codes]
        residuals = payload[16 + n_codes:16 + n_codes + n_residuals]
        if len(codes) != n_codes or len(residuals) != n_residuals:
            raise ContainerFormatError("truncated FPC payload (short body)")

        mask = self._table_mask
        fcm = [0] * (mask + 1)
        dfcm = [0] * (mask + 1)
        fcm_hash = 0
        dfcm_hash = 0
        prev = 0

        values: list[int] = []
        res_pos = 0
        for i in range(n_elements):
            byte = codes[i >> 1]
            code = (byte >> 4) if i % 2 == 0 else (byte & 0x0F)
            predictor_bit = code >> 3
            lzb = _CODE_TO_LZB[code & 0x07]
            n_bytes = 8 - lzb
            residual = int.from_bytes(residuals[res_pos:res_pos + n_bytes], "big")
            res_pos += n_bytes

            if predictor_bit == 0:
                prediction = fcm[fcm_hash]
            else:
                prediction = (dfcm[dfcm_hash] + prev) & _MASK64
            actual = prediction ^ residual
            values.append(actual)

            fcm[fcm_hash] = actual
            fcm_hash = ((fcm_hash << 6) ^ (actual >> 48)) & mask
            delta = (actual - prev) & _MASK64
            dfcm[dfcm_hash] = delta
            dfcm_hash = ((dfcm_hash << 2) ^ (delta >> 40)) & mask
            prev = actual

        if res_pos != n_residuals:
            raise ContainerFormatError(
                f"FPC residual stream length mismatch: consumed {res_pos}, "
                f"stored {n_residuals}"
            )
        return values
