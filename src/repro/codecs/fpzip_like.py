"""fpzip-style predictive floating-point compressor, from scratch.

Reimplementation of the approach of Lindstrom & Isenburg ("Fast and
efficient compression of floating-point data", TVCG 2006), the second
Table X comparator: traverse the n-dimensional field in a coherent
order, predict each value from its already-seen neighbours with the
Lorenzo predictor, map values to integers, and entropy-code the
prediction residuals.

Faithful pieces:

* the monotonic sign-magnitude integer mapping of IEEE floats, so that
  numerically close values share high-order bits;
* the n-dimensional Lorenzo predictor stencil (inclusion-exclusion over
  the 2^n - 1 preceding corner neighbours) for 1-D to 3-D fields;
* XOR residuals whose leading zeros reflect prediction accuracy, with a
  byte-plane (shuffle) + DEFLATE backend in place of fpzip's custom
  range coder.

Documented deviation: the Lorenzo stencil is applied over GF(2)
(XOR-difference) rather than integer addition.  In 1-D the two are the
operationally identical first-difference; in higher dimensions the
GF(2) form keeps both encode *and* decode fully vectorised (the inverse
is a cumulative XOR along each axis) while preserving the property that
smooth fields produce residuals with long common-prefix runs.  The
substitution trades a few percent of ratio for orders of magnitude of
Python throughput and is recorded in DESIGN.md.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.codecs.array_base import ArrayCodec, pack_array_header, unpack_array_header
from repro.core.exceptions import (
    ContainerFormatError,
    ConfigurationError,
    InvalidInputError,
)

__all__ = ["FpzipLikeCodec", "float_to_ordered_uint", "ordered_uint_to_float"]

_MAX_LORENZO_DIMS = 3


def float_to_ordered_uint(values: np.ndarray) -> np.ndarray:
    """Map IEEE floats to unsigned ints preserving numeric order.

    Non-negative floats map to ``bits | sign_mask``; negative floats map
    to ``~bits``.  The mapping is a bijection, so it is losslessly
    invertible by :func:`ordered_uint_to_float`, and monotone, so close
    floats map to close integers — the property the Lorenzo predictor
    relies on.
    """
    arr = np.asarray(values)
    if arr.dtype.kind != "f":
        raise InvalidInputError(
            f"ordered-uint mapping requires a float dtype, got {arr.dtype!r}"
        )
    width = arr.dtype.itemsize
    utype = np.dtype(f"<u{width}")
    bits = arr.astype(arr.dtype.newbyteorder("<"), copy=False).view(utype)
    sign_mask = np.array(1 << (8 * width - 1), dtype=utype)
    negative = (bits & sign_mask) != 0
    return np.where(negative, ~bits, bits | sign_mask)


def ordered_uint_to_float(mapped: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Invert :func:`float_to_ordered_uint` back to the float dtype."""
    dt = np.dtype(dtype)
    if dt.kind != "f":
        raise InvalidInputError(
            f"ordered-uint inverse requires a float dtype, got {dt!r}"
        )
    width = dt.itemsize
    utype = np.dtype(f"<u{width}")
    arr = np.asarray(mapped, dtype=utype)
    sign_mask = np.array(1 << (8 * width - 1), dtype=utype)
    was_nonnegative = (arr & sign_mask) != 0
    bits = np.where(was_nonnegative, arr & ~sign_mask, ~arr)
    return bits.view(dt.newbyteorder("<")).astype(dt, copy=False)


def _xor_lorenzo_forward(field: np.ndarray) -> np.ndarray:
    """GF(2) Lorenzo transform: XOR-difference along every axis.

    Equivalent to XOR-ing each element with the inclusion-exclusion
    stencil of its preceding corner neighbours.  Fully invertible by
    :func:`_xor_lorenzo_inverse`.
    """
    residual = field
    for axis in range(field.ndim):
        shifted = np.roll(residual, 1, axis=axis)
        # Zero the wrapped-around first slice so boundary elements keep
        # their raw (unpredicted) value along this axis.
        index = [slice(None)] * residual.ndim
        index[axis] = slice(0, 1)
        shifted[tuple(index)] = 0
        residual = residual ^ shifted
    return residual


def _xor_lorenzo_inverse(residual: np.ndarray) -> np.ndarray:
    """Invert :func:`_xor_lorenzo_forward` via cumulative XOR per axis."""
    field = residual
    for axis in range(residual.ndim):
        field = np.bitwise_xor.accumulate(field, axis=axis)
    return field


def _byte_planes(mapped: np.ndarray) -> bytes:
    """Split an integer array into byte planes, most significant first.

    Grouping same-significance bytes lets DEFLATE exploit the long zero
    runs the Lorenzo residuals put in the high planes — this plays the
    role of fpzip's leading-zero range coder.
    """
    width = mapped.dtype.itemsize
    big = mapped.reshape(-1).astype(mapped.dtype.newbyteorder(">"), copy=False)
    matrix = np.frombuffer(big.tobytes(), dtype=np.uint8).reshape(-1, width)
    return matrix.T.tobytes()


def _from_byte_planes(data: bytes, utype: np.dtype, n_elements: int) -> np.ndarray:
    """Rebuild the integer array from :func:`_byte_planes` output."""
    width = np.dtype(utype).itemsize
    expected = width * n_elements
    if len(data) != expected:
        raise ContainerFormatError(
            f"byte-plane payload has {len(data)} bytes, expected {expected}"
        )
    planes = np.frombuffer(data, dtype=np.uint8).reshape(width, n_elements)
    matrix = np.ascontiguousarray(planes.T)
    big = np.frombuffer(matrix.tobytes(), dtype=np.dtype(utype).newbyteorder(">"))
    return big.astype(utype, copy=False)


class FpzipLikeCodec(ArrayCodec):
    """Lorenzo-predictive compressor for 1-D to 3-D float fields.

    Parameters
    ----------
    level:
        DEFLATE level of the residual backend (1 fastest .. 9 best).
    """

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise ConfigurationError(f"level must be in [1, 9], got {level}")
        self._level = level
        self.name = "fpzip-like"

    def encode(self, array: np.ndarray) -> bytes:
        arr = np.asarray(array)
        if arr.dtype.kind != "f":
            raise InvalidInputError(
                f"fpzip-like handles float arrays only, got {arr.dtype!r}"
            )
        if not 1 <= arr.ndim <= _MAX_LORENZO_DIMS:
            raise InvalidInputError(
                f"fpzip-like supports 1-{_MAX_LORENZO_DIMS}D fields, "
                f"got {arr.ndim} dimensions"
            )
        if arr.size == 0:
            raise InvalidInputError("cannot encode an empty array")
        header = pack_array_header(arr)
        mapped = float_to_ordered_uint(arr)
        residual = _xor_lorenzo_forward(mapped)
        packed = zlib.compress(_byte_planes(residual), self._level)
        return header + struct.pack("<Q", len(packed)) + packed

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        if len(data) < offset + 8:
            raise ContainerFormatError("truncated fpzip-like payload")
        (packed_len,) = struct.unpack_from("<Q", data, offset)
        body = data[offset + 8:offset + 8 + packed_len]
        if len(body) != packed_len:
            raise ContainerFormatError("truncated fpzip-like body")
        try:
            raw = zlib.decompress(body)
        except zlib.error as exc:
            raise ContainerFormatError(
                f"fpzip-like backend decompression failed: {exc}"
            ) from exc
        n_elements = 1
        for dim in shape:
            n_elements *= dim
        utype = np.dtype(f"<u{dtype.itemsize}")
        residual = _from_byte_planes(raw, utype, n_elements).reshape(shape)
        mapped = _xor_lorenzo_inverse(residual)
        return ordered_uint_to_float(mapped, dtype).reshape(shape)
