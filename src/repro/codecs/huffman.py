"""Canonical Huffman coding over bytes, from scratch.

A minimal but complete general-purpose entropy solver, demonstrating
the paper's claim that ISOBAR works in front of *any* lossless
compressor: this codec registers like zlib/bzip2 and slots straight
into the EUPA-selector's candidate set.

Design:

* symbol alphabet = 256 byte values; frequencies from one pass;
* code lengths from the standard two-queue Huffman construction,
  limited to 32 bits (true for any input < 2^32 symbols);
* *canonical* code assignment, so the header only stores the 256 code
  lengths (RLE-compressed with zlib's raw deflate would be cheating —
  a simple nibble packing is used instead);
* payload is the MSB-first concatenation of codes via
  :mod:`repro.codecs.bitio`.

Decoding uses the canonical property: codes of each length form a
contiguous integer range, so a (first_code, first_index) table per
length decodes in O(code length) per symbol.
"""

from __future__ import annotations

import heapq
import struct
from collections import Counter

import numpy as np

from repro.codecs.base import Codec
from repro.core.exceptions import CodecError

__all__ = ["HuffmanCodec", "build_code_lengths", "canonical_codes"]

_MAGIC = b"HUF1"
_MAX_CODE_LENGTH = 32


def build_code_lengths(frequencies: dict[int, int]) -> dict[int, int]:
    """Huffman code length per symbol from a frequency map.

    Single-symbol alphabets get length 1 (a real code must emit
    something per symbol so the count-based decoder terminates).
    """
    symbols = [s for s, f in frequencies.items() if f > 0]
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    # Heap of (weight, tiebreak, tree); trees are (symbol,) leaves or
    # (left, right) internal nodes.
    heap: list[tuple[int, int, object]] = []
    tiebreak = 0
    for symbol in symbols:
        heap.append((frequencies[symbol], tiebreak, symbol))
        tiebreak += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        w1, _, t1 = heapq.heappop(heap)
        w2, _, t2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, tiebreak, (t1, t2)))
        tiebreak += 1
    lengths: dict[int, int] = {}

    def _walk(tree: object, depth: int) -> None:
        if isinstance(tree, tuple):
            _walk(tree[0], depth + 1)
            _walk(tree[1], depth + 1)
        else:
            lengths[tree] = max(depth, 1)

    _walk(heap[0][2], 0)
    if max(lengths.values()) > _MAX_CODE_LENGTH:
        raise CodecError("Huffman code length exceeded 32 bits")
    return lengths


def canonical_codes(lengths: dict[int, int]) -> dict[int, tuple[int, int]]:
    """Assign canonical codes: ``symbol -> (code, length)``.

    Symbols are ordered by (length, symbol); codes of each length form
    a contiguous block, enabling the compact range-based decoder.
    """
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: dict[int, tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class HuffmanCodec(Codec):
    """Canonical Huffman entropy coder over raw bytes."""

    name = "huffman"
    process_safe = True

    # -- encoding ---------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        frequencies = Counter(data)
        lengths = build_code_lengths(dict(frequencies))
        codes = canonical_codes(lengths)

        # Join per-byte code strings and pack with numpy — orders of
        # magnitude faster than a per-bit Python loop.
        table = {
            symbol: format(code, f"0{width}b")
            for symbol, (code, width) in codes.items()
        }
        bit_string = "".join(map(table.__getitem__, data))
        if bit_string:
            bits = np.frombuffer(bit_string.encode("ascii"), dtype=np.uint8)
            payload = np.packbits(bits - ord("0")).tobytes()
        else:
            payload = b""

        # Header: 256 code lengths packed one byte each (0 = unused).
        length_table = bytes(lengths.get(symbol, 0) for symbol in range(256))
        return (
            _MAGIC
            + struct.pack("<Q", len(data))
            + length_table
            + payload
        )

    # -- decoding -----------------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 4 + 8 + 256 or data[:4] != _MAGIC:
            raise CodecError("not a Huffman stream (bad magic or truncated)")
        (n_symbols,) = struct.unpack_from("<Q", data, 4)
        length_table = data[12:12 + 256]
        payload = data[12 + 256:]
        if n_symbols == 0:
            return b""

        lengths = {s: l for s, l in enumerate(length_table) if l > 0}
        if not lengths:
            raise CodecError("Huffman stream declares symbols but no codes")
        codes = canonical_codes(lengths)

        # Canonical decode tables per code length.
        by_length: dict[int, list[int]] = {}
        first_code: dict[int, int] = {}
        for symbol, (code, width) in sorted(
            codes.items(), key=lambda item: (item[1][1], item[1][0])
        ):
            if width not in by_length:
                by_length[width] = []
                first_code[width] = code
            by_length[width].append(symbol)

        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8)).tolist()
        n_bits = len(bits)
        out = bytearray()
        position = 0
        for _ in range(n_symbols):
            code = 0
            width = 0
            while True:
                if position >= n_bits:
                    raise CodecError("corrupt Huffman stream (exhausted)")
                code = (code << 1) | bits[position]
                position += 1
                width += 1
                if width > _MAX_CODE_LENGTH:
                    raise CodecError("corrupt Huffman stream (code too long)")
                symbols = by_length.get(width)
                if symbols is None:
                    continue
                index = code - first_code[width]
                if 0 <= index < len(symbols):
                    out.append(symbols[index])
                    break
                if index < 0:
                    raise CodecError("corrupt Huffman stream (bad code)")
        return bytes(out)
