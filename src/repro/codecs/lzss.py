"""LZSS dictionary compression over bytes, from scratch.

A complete, pure-Python LZ77-family solver — the sliding-window match
stage that underlies DEFLATE, without the Huffman back end.  Included
to widen the solver pool behind the ISOBAR preconditioner with a
structurally different compressor (dictionary matching vs the
block-sorting bzip2 vs the predictive FPC family).

Format: a bit-flag stream interleaved with tokens.

* flag 0 → literal byte (8 bits);
* flag 1 → back-reference: ``offset`` (window_bits) + ``length - min_match``
  (length_bits).

Flags live in their own bit stream so byte tokens stay aligned; the
header records both stream lengths.  Matching uses a 3-byte hash chain,
greedy with a bounded chain walk — the classic LZSS trade-off dial.
"""

from __future__ import annotations

import struct

from repro.codecs.base import Codec
from repro.codecs.bitio import BitReader, BitWriter
from repro.core.exceptions import CodecError, ConfigurationError

__all__ = ["LzssCodec"]

_MAGIC = b"LZS1"
_MIN_MATCH = 3


class LzssCodec(Codec):
    """Sliding-window LZSS with hash-chain matching.

    Parameters
    ----------
    window_bits:
        log2 of the sliding-window size (8..16; DEFLATE uses 15).
    length_bits:
        log2 of the maximum encodable match length above the minimum.
    max_chain:
        Longest hash-chain walk per position — the speed/ratio dial.
    """

    process_safe = True

    def __init__(self, window_bits: int = 12, length_bits: int = 6,
                 max_chain: int = 32):
        if not 8 <= window_bits <= 16:
            raise ConfigurationError(
                f"window_bits must be in [8, 16], got {window_bits}"
            )
        if not 2 <= length_bits <= 10:
            raise ConfigurationError(
                f"length_bits must be in [2, 10], got {length_bits}"
            )
        if max_chain < 1:
            raise ConfigurationError(
                f"max_chain must be positive, got {max_chain}"
            )
        self._window_bits = window_bits
        self._window = 1 << window_bits
        self._length_bits = length_bits
        self._max_length = _MIN_MATCH + (1 << length_bits) - 1
        self._max_chain = max_chain
        self.name = "lzss"

    # -- encoding ---------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        flags = BitWriter()
        tokens = bytearray()
        head: dict[int, int] = {}
        prev = [-1] * n  # hash chain links; -1 terminates a chain

        def _key(i: int) -> int:
            return data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)

        i = 0
        while i < n:
            best_length = 0
            best_offset = 0
            if i + _MIN_MATCH <= n:
                key = _key(i)
                candidate = head.get(key, -1)
                chain = 0
                limit = min(self._max_length, n - i)
                while (
                    candidate >= 0
                    and i - candidate <= self._window
                    and chain < self._max_chain
                ):
                    length = 0
                    while (
                        length < limit
                        and data[candidate + length] == data[i + length]
                    ):
                        length += 1
                    if length > best_length:
                        best_length = length
                        best_offset = i - candidate
                        if length >= limit:
                            break
                    candidate = prev[candidate]
                    chain += 1
            if best_length >= _MIN_MATCH:
                flags.write_bit(1)
                token = ((best_offset - 1) << self._length_bits) | (
                    best_length - _MIN_MATCH
                )
                token_bytes = (self._window_bits + self._length_bits + 7) // 8
                tokens += token.to_bytes(token_bytes, "little")
                step = best_length
            else:
                flags.write_bit(0)
                tokens.append(data[i])
                step = 1
            # Insert the skipped positions into the hash chains.
            for j in range(i, min(i + step, n - _MIN_MATCH + 1)):
                key = _key(j)
                prev[j] = head.get(key, -1)
                head[key] = j
            i += step

        flag_stream = flags.getvalue()
        return (
            _MAGIC
            + struct.pack(
                "<QIBB", n, len(flag_stream), self._window_bits,
                self._length_bits,
            )
            + flag_stream
            + bytes(tokens)
        )

    # -- decoding -----------------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        header_size = 4 + struct.calcsize("<QIBB")
        if len(data) < header_size or data[:4] != _MAGIC:
            raise CodecError("not an LZSS stream (bad magic or truncated)")
        n, flag_len, window_bits, length_bits = struct.unpack_from(
            "<QIBB", data, 4
        )
        offset = header_size
        flag_stream = data[offset:offset + flag_len]
        tokens = data[offset + flag_len:]
        token_bytes = (window_bits + length_bits + 7) // 8
        length_mask = (1 << length_bits) - 1

        flags = BitReader(flag_stream)
        out = bytearray()
        position = 0
        try:
            while len(out) < n:
                if flags.read_bit():
                    raw = tokens[position:position + token_bytes]
                    if len(raw) != token_bytes:
                        raise CodecError("truncated LZSS token stream")
                    token = int.from_bytes(raw, "little")
                    position += token_bytes
                    match_offset = (token >> length_bits) + 1
                    length = (token & length_mask) + _MIN_MATCH
                    start = len(out) - match_offset
                    if start < 0:
                        raise CodecError("LZSS back-reference before start")
                    for k in range(length):
                        out.append(out[start + k])
                else:
                    if position >= len(tokens):
                        raise CodecError("truncated LZSS literal stream")
                    out.append(tokens[position])
                    position += 1
        except Exception as exc:
            if isinstance(exc, CodecError):
                raise
            raise CodecError(f"corrupt LZSS stream: {exc}") from exc
        return bytes(out)
