"""PFOR, PFOR-DELTA and PDICT integer compression, from scratch.

Reimplementation of the super-scalar RAM-CPU cache compression family
of Zukowski et al. (ICDE 2006), discussed in the paper's related work
as the high-throughput integer alternative to entropy coders.

* **PFOR** (patched frame of reference): per block, subtract the block
  minimum and pack values into ``b`` bits.  Values that do not fit
  ("exceptions") are stored verbatim in a patch list along with their
  positions; ``b`` is chosen per block to minimise the encoded size.
* **PFOR-DELTA**: PFOR applied to the first differences of the block —
  the variant of choice for sorted or slowly-varying sequences.
* **PDICT**: dictionary coding; values are replaced by indices into a
  per-array dictionary of distinct values, index streams are bit-packed,
  and arrays with too many distinct values fall back to verbatim
  storage.

All three are vectorised with numpy (the original's selling point is
branch-free tight loops; the numpy formulation is the closest Python
analogue).  Like the originals they are integer codecs; floats are
rejected rather than silently reinterpreted.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.array_base import ArrayCodec, pack_array_header, unpack_array_header
from repro.core.exceptions import (
    ContainerFormatError,
    ConfigurationError,
    InvalidInputError,
)

__all__ = ["PforCodec", "PforDeltaCodec", "PdictCodec", "pack_bits", "unpack_bits"]

_DEFAULT_BLOCK = 4_096


def pack_bits(values: np.ndarray, bit_width: int) -> bytes:
    """Pack unsigned integers into a dense little-endian bit stream.

    Each value occupies exactly ``bit_width`` bits; ``bit_width`` of 0
    is legal for all-zero streams and packs to nothing.
    """
    if not 0 <= bit_width <= 64:
        raise InvalidInputError(f"bit_width must be in [0, 64], got {bit_width}")
    arr = np.asarray(values, dtype=np.uint64).reshape(-1)
    if bit_width == 0:
        if np.any(arr != 0):
            raise InvalidInputError("bit_width 0 requires all-zero values")
        return b""
    limit = np.uint64(1) << np.uint64(bit_width) if bit_width < 64 else None
    if limit is not None and np.any(arr >= limit):
        raise InvalidInputError(
            f"value does not fit into {bit_width} bits"
        )
    # Expand each value to bit_width little-endian bits, then pack.
    shifts = np.arange(bit_width, dtype=np.uint64)
    bits = ((arr[:, np.newaxis] >> shifts) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits.reshape(-1), bitorder="little").tobytes()


def unpack_bits(data: bytes, bit_width: int, count: int) -> np.ndarray:
    """Invert :func:`pack_bits`, returning ``count`` uint64 values."""
    if not 0 <= bit_width <= 64:
        raise InvalidInputError(f"bit_width must be in [0, 64], got {bit_width}")
    if count < 0:
        raise InvalidInputError(f"count must be non-negative, got {count}")
    if bit_width == 0:
        return np.zeros(count, dtype=np.uint64)
    needed_bits = bit_width * count
    needed_bytes = (needed_bits + 7) // 8
    if len(data) < needed_bytes:
        raise ContainerFormatError(
            f"bit stream too short: need {needed_bytes} bytes, have {len(data)}"
        )
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8, count=needed_bytes),
        bitorder="little",
    )[:needed_bits].astype(np.uint64)
    shifts = np.arange(bit_width, dtype=np.uint64)
    grouped = bits.reshape(count, bit_width)
    return (grouped << shifts).sum(axis=1, dtype=np.uint64)


def _best_bit_width(deltas: np.ndarray, exception_cost_bits: int) -> int:
    """Choose the bit width minimising packed size plus patch cost.

    ``deltas`` are non-negative offsets from the frame of reference.
    The exception cost models one verbatim value plus one position per
    exception, matching the PFOR patch list layout below.
    """
    if deltas.size == 0:
        return 0
    max_width = int(deltas.max()).bit_length()
    sorted_deltas = np.sort(deltas)
    best_width = max_width
    best_cost = None
    for width in range(max_width + 1):
        if width >= 64:
            n_exceptions = 0
        else:
            # Exact count of values needing more than `width` bits.
            threshold = np.uint64(1) << np.uint64(width)
            n_exceptions = int(
                sorted_deltas.size
                - np.searchsorted(sorted_deltas, threshold, side="left")
            )
        cost = deltas.size * width + n_exceptions * exception_cost_bits
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_width = width
    return best_width


class PforCodec(ArrayCodec):
    """Patched frame-of-reference codec for integer arrays.

    Parameters
    ----------
    block_size:
        Elements per independently-coded block.
    delta:
        When true, code first differences within each block
        (PFOR-DELTA).  Use :class:`PforDeltaCodec` for a named instance.
    """

    def __init__(self, block_size: int = _DEFAULT_BLOCK, delta: bool = False):
        if block_size < 1:
            raise ConfigurationError(
                f"block_size must be positive, got {block_size}"
            )
        self._block_size = block_size
        self._delta = delta
        self.name = "pfor-delta" if delta else "pfor"

    def encode(self, array: np.ndarray) -> bytes:
        arr = np.asarray(array)
        if arr.dtype.kind not in "iu":
            raise InvalidInputError(
                f"{self.name} handles integer arrays only, got {arr.dtype!r}"
            )
        header = pack_array_header(arr)
        flat = arr.reshape(-1).astype(np.int64)
        blocks = []
        for start in range(0, flat.size, self._block_size):
            blocks.append(self._encode_block(flat[start:start + self._block_size]))
        body = b"".join(blocks)
        return header + struct.pack("<QB", flat.size, int(self._delta)) + body

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        if len(data) < offset + 9:
            raise ContainerFormatError("truncated PFOR payload")
        n_elements, delta_flag = struct.unpack_from("<QB", data, offset)
        offset += 9
        if bool(delta_flag) != self._delta:
            decoder = PforCodec(block_size=self._block_size, delta=bool(delta_flag))
            return decoder.decode(data)
        out = np.empty(n_elements, dtype=np.int64)
        pos = 0
        view = data
        cursor = offset
        while pos < n_elements:
            count = min(self._block_size, n_elements - pos)
            block, cursor = self._decode_block(view, cursor, count)
            out[pos:pos + count] = block
            pos += count
        return out.astype(dtype, copy=False).reshape(shape)

    # -- block coding -----------------------------------------------------

    def _encode_block(self, block: np.ndarray) -> bytes:
        values = np.diff(block, prepend=block[:1] * 0) if self._delta else block
        # With delta the first element is stored as-is (prepend 0 makes
        # diff[0] == block[0]).
        reference = int(values.min())
        # Offsets are computed modulo 2**64 so extreme int64 ranges
        # (e.g. containing both INT64_MIN and INT64_MAX deltas) wrap
        # consistently on encode and decode instead of overflowing.
        ref_u = np.uint64(reference & ((1 << 64) - 1))
        offsets = values.astype(np.uint64) - ref_u
        width = _best_bit_width(offsets, exception_cost_bits=64 + 32)
        if width >= 64:
            fits = np.ones(offsets.size, dtype=bool)
        elif width == 0:
            fits = offsets == 0
        else:
            fits = offsets < (np.uint64(1) << np.uint64(width))
        exception_positions = np.flatnonzero(~fits).astype(np.uint32)
        exception_values = offsets[~fits]
        packed = pack_bits(np.where(fits, offsets, 0), width)
        head = struct.pack(
            "<qBII", reference, width, offsets.size, exception_positions.size
        )
        return (
            head
            + packed
            + exception_positions.tobytes()
            + exception_values.astype("<u8").tobytes()
        )

    def _decode_block(self, data: bytes, cursor: int, count: int) -> tuple[np.ndarray, int]:
        if len(data) < cursor + 17:
            raise ContainerFormatError("truncated PFOR block header")
        reference, width, stored, n_exc = struct.unpack_from("<qBII", data, cursor)
        cursor += 17
        if stored != count:
            raise ContainerFormatError(
                f"PFOR block stores {stored} values, expected {count}"
            )
        packed_bytes = (width * count + 7) // 8
        offsets = unpack_bits(data[cursor:cursor + packed_bytes], width, count)
        cursor += packed_bytes
        positions = np.frombuffer(data, dtype="<u4", count=n_exc, offset=cursor)
        cursor += 4 * n_exc
        exc_values = np.frombuffer(data, dtype="<u8", count=n_exc, offset=cursor)
        cursor += 8 * n_exc
        offsets = offsets.copy()
        offsets[positions] = exc_values
        ref_u = np.uint64(reference & ((1 << 64) - 1))
        values = (offsets + ref_u).astype(np.int64)
        if self._delta:
            values = np.cumsum(values)
        return values, cursor


class PforDeltaCodec(PforCodec):
    """PFOR over first differences — for sorted / smooth integer data."""

    def __init__(self, block_size: int = _DEFAULT_BLOCK):
        super().__init__(block_size=block_size, delta=True)


class PdictCodec(ArrayCodec):
    """Dictionary coding with bit-packed indices (PDICT).

    Arrays whose distinct-value count exceeds ``max_dictionary`` are
    stored verbatim (flagged in the header) — dictionary coding only
    pays off for low-cardinality data, as the original paper notes.
    """

    def __init__(self, max_dictionary: int = 65_536):
        if max_dictionary < 1:
            raise ConfigurationError(
                f"max_dictionary must be positive, got {max_dictionary}"
            )
        self._max_dictionary = max_dictionary
        self.name = "pdict"

    def encode(self, array: np.ndarray) -> bytes:
        arr = np.asarray(array)
        if arr.dtype.kind not in "iu":
            raise InvalidInputError(
                f"pdict handles integer arrays only, got {arr.dtype!r}"
            )
        header = pack_array_header(arr)
        flat = arr.reshape(-1).astype(np.int64)
        dictionary, indices = np.unique(flat, return_inverse=True)
        if dictionary.size > self._max_dictionary:
            return header + struct.pack("<B", 0) + flat.astype("<i8").tobytes()
        width = max(int(dictionary.size - 1).bit_length(), 0)
        packed = pack_bits(indices.astype(np.uint64), width)
        head = struct.pack("<BIQB", 1, dictionary.size, flat.size, width)
        return header + head + dictionary.astype("<i8").tobytes() + packed

    def decode(self, data: bytes) -> np.ndarray:
        dtype, shape, offset = unpack_array_header(data)
        if len(data) < offset + 1:
            raise ContainerFormatError("truncated PDICT payload")
        mode = data[offset]
        offset += 1
        if mode == 0:
            n_elements = 1
            for dim in shape:
                n_elements *= dim
            flat = np.frombuffer(data, dtype="<i8", count=n_elements, offset=offset)
            return flat.astype(dtype, copy=False).reshape(shape)
        if mode != 1:
            raise ContainerFormatError(f"unknown PDICT mode {mode}")
        if len(data) < offset + 13:
            raise ContainerFormatError("truncated PDICT dictionary header")
        dict_size, n_elements, width = struct.unpack_from("<IQB", data, offset)
        offset += 13
        dictionary = np.frombuffer(data, dtype="<i8", count=dict_size, offset=offset)
        offset += 8 * dict_size
        indices = unpack_bits(data[offset:], width, n_elements)
        if indices.size and int(indices.max()) >= dict_size:
            raise ContainerFormatError("PDICT index out of dictionary range")
        flat = dictionary[indices.astype(np.int64)]
        return flat.astype(dtype, copy=False).reshape(shape)
