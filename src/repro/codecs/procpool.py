"""Process-pool fallback for GIL-bound (pure-python) codecs.

The pipelined parallel engine scales codecs whose C cores release the
GIL (``codec.releases_gil``) with plain worker threads.  Pure-python
solvers — the range coder, Huffman, LZSS, BWT — hold the GIL for their
entire hot loop, so threads cannot scale them; for those the engine
swaps in a :class:`ProcessCodecProxy` that runs each call in a shared
``ProcessPoolExecutor`` instead.

Design constraints honoured here:

* **Spawn, not fork.**  The parallel engine runs worker *threads* in
  the parent; forking a threaded process can inherit a held lock (the
  codec-registry lock, logging locks) and deadlock the child.  Spawned
  children re-import ``repro.codecs`` and rebuild the registry cleanly.
* **Name-keyed dispatch.**  Only the codec *name* crosses the process
  boundary; the child re-resolves it from its own registry.  That is
  why the proxy is only installed for ``process_safe`` codecs whose
  registry entry is the very instance being used — an ad-hoc codec (a
  chaos wrapper shadowing ``"zlib"``, a test double) stays on the
  thread path so its in-process behaviour is preserved.
* **Shared-memory transfer** for large payloads: blocks at or above
  ``1 MiB`` travel to the child via ``multiprocessing.shared_memory``
  rather than being pickled through the result pipe.
* **Graceful degradation.**  Any pool-infrastructure failure (broken
  pool, no /dev/shm, spawn refused) falls back to running the call on
  the current thread — slower, never wrong.  Codec errors raised inside
  the child propagate to the caller unchanged.

The pool is process-global, created lazily under a lock (lint rule
ISO002) and torn down at interpreter exit.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from multiprocessing import get_context
from pickle import PicklingError

from repro.codecs.base import Codec, get_codec
from repro.core.exceptions import UnknownCodecError

try:  # pragma: no cover - absent only on exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "ProcessCodecProxy",
    "live_block_count",
    "shutdown_codec_pool",
    "worker_codec_for",
]

#: Payloads at or above this many bytes travel via shared memory.
SHM_THRESHOLD_BYTES = 1 << 20

_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0
# Guards _POOL/_POOL_WORKERS: proxies on concurrent pipeline runs share
# one executor and may race to (re)create it.
_POOL_LOCK = threading.Lock()

# Parent-owned shared-memory blocks whose release callback has not run
# yet.  A future's done-callback normally unlinks its block, but a pool
# torn down before the task is picked up (interpreter exit, pool
# regrowth) can drop futures without ever resolving them — the segment
# would then outlive the process in /dev/shm.  shutdown_codec_pool()
# drains whatever is still registered here.
_LIVE_BLOCKS: dict[str, object] = {}
_LIVE_BLOCKS_LOCK = threading.Lock()


def _acquire_pool(n_workers: int) -> ProcessPoolExecutor:
    """Return the shared pool, growing it if ``n_workers`` exceeds it."""
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is None or _POOL_WORKERS < n_workers:
            if _POOL is not None:
                _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = ProcessPoolExecutor(
                max_workers=n_workers, mp_context=get_context("spawn")
            )
            _POOL_WORKERS = n_workers
        return _POOL


def shutdown_codec_pool() -> None:
    """Tear down the shared process pool (idempotent).

    Registered via :mod:`atexit`; also useful in tests to force a fresh
    pool.  In-flight calls are abandoned — callers see
    :class:`concurrent.futures.BrokenExecutor` and fall back in-thread.
    """
    global _POOL, _POOL_WORKERS
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=False, cancel_futures=True)
            _POOL = None
            _POOL_WORKERS = 0
    _drain_live_blocks()


atexit.register(shutdown_codec_pool)


def _track_block(block: object) -> None:
    """Register a parent-owned block until its release callback fires."""
    with _LIVE_BLOCKS_LOCK:
        _LIVE_BLOCKS[block.name] = block  # type: ignore[attr-defined]


def _release_block(block: object) -> None:
    """Close and unlink a parent-owned shared-memory block (idempotent)."""
    with _LIVE_BLOCKS_LOCK:
        _LIVE_BLOCKS.pop(block.name, None)  # type: ignore[attr-defined]
    try:
        block.close()  # type: ignore[attr-defined]
        block.unlink()  # type: ignore[attr-defined]
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def _drain_live_blocks() -> None:
    """Release blocks whose futures died before their callback ran."""
    with _LIVE_BLOCKS_LOCK:
        leftovers = list(_LIVE_BLOCKS.values())
        _LIVE_BLOCKS.clear()
    for block in leftovers:
        try:
            block.close()  # type: ignore[attr-defined]
            block.unlink()  # type: ignore[attr-defined]
        except FileNotFoundError:
            pass


def live_block_count() -> int:
    """How many parent-owned segments are still awaiting release."""
    with _LIVE_BLOCKS_LOCK:
        return len(_LIVE_BLOCKS)


def _child_call(codec_name: str, op: str, payload: bytes) -> bytes:
    """Run one codec call in the child process (payload by pickle)."""
    codec = get_codec(codec_name)
    if op == "compress":
        return codec.compress(payload)
    return codec.decompress(payload)


def _child_call_shm(
    codec_name: str, op: str, shm_name: str, size: int
) -> bytes:
    """Run one codec call in the child (payload via shared memory)."""
    assert _shared_memory is not None
    block = _shared_memory.SharedMemory(name=shm_name)
    try:
        payload = bytes(block.buf[:size])
    finally:
        block.close()
    return _child_call(codec_name, op, payload)


class ProcessCodecProxy(Codec):
    """A :class:`Codec` running its calls in the shared process pool.

    Wraps a registry codec (same ``name``, so container metadata is
    unchanged) and forwards ``compress``/``decompress`` to a child
    process, releasing the parent's GIL for the duration of the wait.
    Built by :func:`worker_codec_for`; not registered itself.
    """

    def __init__(self, codec: Codec, n_workers: int):
        self.name = codec.name
        self.releases_gil = True  # the *wait* releases the parent's GIL
        self._codec = codec
        self._n_workers = n_workers

    def _local(self, op: str, payload: bytes) -> bytes:
        if op == "compress":
            return self._codec.compress(payload)
        return self._codec.decompress(payload)

    def _call_shm(
        self, pool: ProcessPoolExecutor, op: str, payload: bytes
    ) -> "Future[bytes]":
        """Ship ``payload`` through a shared-memory block.

        The block stays linked until the future resolves — the child
        attaches by name when the task actually runs, which may be long
        after submit() returns.
        """
        assert _shared_memory is not None
        block = _shared_memory.SharedMemory(create=True, size=len(payload))
        _track_block(block)
        try:
            block.buf[: len(payload)] = payload
            future: "Future[bytes]" = pool.submit(
                _child_call_shm, self.name, op, block.name, len(payload)
            )
            future.add_done_callback(lambda _f: _release_block(block))
        except BaseException:
            _release_block(block)
            raise
        return future

    def _call(self, op: str, payload: bytes) -> bytes:
        try:
            pool = _acquire_pool(self._n_workers)
            if (
                _shared_memory is not None
                and len(payload) >= SHM_THRESHOLD_BYTES
            ):
                future = self._call_shm(pool, op, payload)
            else:
                future = pool.submit(_child_call, self.name, op, payload)
        except (OSError, RuntimeError, PicklingError):
            # Pool or shared memory unavailable: run on this thread.
            return self._local(op, payload)
        try:
            return future.result()
        except (BrokenExecutor, FileNotFoundError):
            # Child died (or its shm attach failed) — degrade, never fail.
            return self._local(op, payload)

    def compress(self, data: bytes) -> bytes:
        return self._call("compress", data)

    def decompress(self, data: bytes) -> bytes:
        return self._call("decompress", data)

    def __repr__(self) -> str:
        return (
            f"<ProcessCodecProxy name={self.name!r} "
            f"n_workers={self._n_workers}>"
        )


def worker_codec_for(codec: Codec, n_workers: int) -> Codec:
    """Pick the codec instance pipeline workers should call.

    * ``releases_gil`` codecs (zlib/bzip2/lzma/isal) scale on threads —
      returned unchanged.
    * ``process_safe`` codecs that are the *registered* instance for
      their name are wrapped in a :class:`ProcessCodecProxy`.
    * Everything else (ad-hoc instances, chaos wrappers shadowing a
      real name, single-worker runs) stays in-thread unchanged, so
      test doubles keep their in-process semantics.
    """
    if n_workers <= 1 or codec.releases_gil or not codec.process_safe:
        return codec
    try:
        registered = get_codec(codec.name)
    except UnknownCodecError:
        return codec
    if registered is not codec:
        return codec
    return ProcessCodecProxy(codec, n_workers)
