"""Adaptive order-0 range coder (arithmetic coding), from scratch.

The strongest pure entropy solver in this repository: a Subbotin-style
carry-less range coder driven by an adaptive byte model whose
frequencies update after every symbol (so no frequency table travels
with the stream).  Unlike Huffman it is not limited to whole-bit code
lengths, so on heavily skewed byte distributions it approaches the
entropy bound asymptotically.

Components:

* :class:`_FenwickModel` — adaptive cumulative-frequency model over the
  256 byte symbols, backed by a Fenwick (binary-indexed) tree for
  O(log 256) updates and prefix sums, with periodic halving to keep the
  total below the coder's precision limit;
* :class:`RangeCoderCodec` — the byte-stream codec; encoder and decoder
  run the identical model, so the stream carries only the payload and
  the element count.

Pure Python: throughput is interpreter-bound (use on modest payloads);
compression quality is the point.
"""

from __future__ import annotations

import struct

from repro.codecs.base import Codec
from repro.core.exceptions import CodecError

__all__ = ["RangeCoderCodec"]

_MAGIC = b"RNG1"
_TOP = 1 << 24
_BOTTOM = 1 << 16
_MASK32 = (1 << 32) - 1
_MAX_TOTAL = 1 << 15
_N_SYMBOLS = 256


class _FenwickModel:
    """Adaptive frequency model over 256 symbols via a Fenwick tree."""

    def __init__(self) -> None:
        self._tree = [0] * (_N_SYMBOLS + 1)
        self._freq = [1] * _N_SYMBOLS
        self.total = 0
        for symbol in range(_N_SYMBOLS):
            self._add(symbol, 1)
            self.total += 1

    def _add(self, symbol: int, delta: int) -> None:
        index = symbol + 1
        while index <= _N_SYMBOLS:
            self._tree[index] += delta
            index += index & (-index)

    def cumulative(self, symbol: int) -> int:
        """Sum of frequencies of symbols strictly below ``symbol``."""
        index = symbol
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total

    def frequency(self, symbol: int) -> int:
        """Current frequency of ``symbol``."""
        return self._freq[symbol]

    def find(self, target: int) -> int:
        """Symbol whose cumulative interval contains ``target``."""
        index = 0
        remaining = target
        mask = 256  # highest power of two <= _N_SYMBOLS
        while mask:
            probe = index + mask
            if probe <= _N_SYMBOLS and self._tree[probe] <= remaining:
                index = probe
                remaining -= self._tree[probe]
            mask >>= 1
        return index  # tree is 1-based; `index` is the 0-based symbol

    def update(self, symbol: int, increment: int = 32) -> None:
        """Reinforce ``symbol``; halve all frequencies near the cap."""
        self._add(symbol, increment)
        self._freq[symbol] += increment
        self.total += increment
        if self.total >= _MAX_TOTAL:
            self._rescale()

    def _rescale(self) -> None:
        self._tree = [0] * (_N_SYMBOLS + 1)
        self.total = 0
        for symbol in range(_N_SYMBOLS):
            self._freq[symbol] = (self._freq[symbol] + 1) // 2
            self._add(symbol, self._freq[symbol])
            self.total += self._freq[symbol]


class RangeCoderCodec(Codec):
    """Adaptive arithmetic coder over raw bytes."""

    name = "range-coder"
    # Pure-python hot loop: worker threads cannot scale it, but the
    # codec is stateless and import-registered, so the parallel engine
    # may route it to the process-pool fallback.
    process_safe = True

    # -- encoding ---------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        model = _FenwickModel()
        out = bytearray()
        low = 0
        range_ = _MASK32

        for byte in data:
            start = model.cumulative(byte)
            freq = model.frequency(byte)
            total = model.total
            range_ //= total
            low += start * range_
            range_ *= freq
            # Carry propagation: low may exceed 32 bits after the add.
            if low > _MASK32:
                low &= _MASK32
                # Propagate the carry into already-emitted bytes.
                index = len(out) - 1
                while index >= 0:
                    if out[index] == 0xFF:
                        out[index] = 0
                        index -= 1
                    else:
                        out[index] += 1
                        break
            while True:
                if (low ^ (low + range_)) < _TOP:
                    pass
                elif range_ < _BOTTOM:
                    range_ = (-low) & (_BOTTOM - 1)
                else:
                    break
                out.append((low >> 24) & 0xFF)
                low = (low << 8) & _MASK32
                range_ = (range_ << 8) & _MASK32
                if range_ == 0:
                    range_ = _MASK32
            model.update(byte)

        # Flush the final state.
        for _ in range(4):
            out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK32
        return _MAGIC + struct.pack("<Q", len(data)) + bytes(out)

    # -- decoding -----------------------------------------------------------

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 12 or data[:4] != _MAGIC:
            raise CodecError("not a range-coder stream (bad magic)")
        (n_symbols,) = struct.unpack_from("<Q", data, 4)
        payload = data[12:]
        if n_symbols == 0:
            return b""
        if len(payload) < 4:
            raise CodecError("truncated range-coder stream")

        model = _FenwickModel()
        out = bytearray()
        low = 0
        range_ = _MASK32
        code = 0
        position = 0
        for _ in range(4):
            code = ((code << 8) | (payload[position] if position < len(payload)
                                   else 0)) & _MASK32
            position += 1

        for _ in range(n_symbols):
            total = model.total
            range_ //= total
            value = ((code - low) & _MASK32) // range_
            if value >= total:
                raise CodecError("corrupt range-coder stream (bad interval)")
            symbol = model.find(value)
            start = model.cumulative(symbol)
            freq = model.frequency(symbol)
            low = (low + start * range_) & _MASK32
            range_ *= freq
            while True:
                if (low ^ (low + range_)) < _TOP:
                    pass
                elif range_ < _BOTTOM:
                    range_ = (-low) & (_BOTTOM - 1)
                else:
                    break
                code = ((code << 8) | (payload[position]
                                       if position < len(payload) else 0)) \
                    & _MASK32
                position += 1
                low = (low << 8) & _MASK32
                range_ = (range_ << 8) & _MASK32
                if range_ == 0:
                    range_ = _MASK32
            out.append(symbol)
            model.update(symbol)
        return bytes(out)
