"""Byte-level run-length encoding, from scratch.

The simplest possible solver: runs of a repeated byte collapse to a
marker token; other bytes pass through, with the marker byte itself
escaped.  Useful as (a) a degenerate baseline that only wins on the
heavily repetitive datasets (``msg_sppm``, ``num_plasma``), sharpening
the benchmark contrast, and (b) a fast demonstration solver for the
ISOBAR pipeline in tests.

Token grammar (after the marker byte, a little-endian u16 ``L``):

* ``MARKER 0x0000``        — one literal marker byte (L = 0 is
  impossible for a run, so the escape is unambiguous);
* ``MARKER L B``           — the byte ``B`` repeated ``L`` times
  (``MIN_RUN <= L <= 0xFFFF``).

Any other byte is a literal.
"""

from __future__ import annotations

import struct

from repro.codecs.base import Codec
from repro.core.exceptions import CodecError

__all__ = ["RleCodec"]

_MAGIC = b"RLE1"
_MARKER = 0xF5
_MIN_RUN = 5
_MAX_RUN = 0xFFFF


class RleCodec(Codec):
    """Escape-marker run-length coder over raw bytes."""

    name = "rle"
    process_safe = True

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        n = len(data)
        i = 0
        while i < n:
            byte = data[i]
            run = 1
            while i + run < n and run < _MAX_RUN and data[i + run] == byte:
                run += 1
            if run >= _MIN_RUN:
                out.append(_MARKER)
                out += struct.pack("<H", run)
                out.append(byte)
                i += run
            else:
                for _ in range(run):
                    if byte == _MARKER:
                        out.append(_MARKER)
                        out += struct.pack("<H", 0)
                    else:
                        out.append(byte)
                i += run
        return _MAGIC + struct.pack("<Q", n) + bytes(out)

    def decompress(self, data: bytes) -> bytes:
        if len(data) < 12 or data[:4] != _MAGIC:
            raise CodecError("not an RLE stream (bad magic or truncated)")
        (n,) = struct.unpack_from("<Q", data, 4)
        body = data[12:]
        out = bytearray()
        i = 0
        while len(out) < n:
            if i >= len(body):
                raise CodecError("truncated RLE stream")
            byte = body[i]
            if byte != _MARKER:
                out.append(byte)
                i += 1
                continue
            if i + 3 > len(body):
                raise CodecError("truncated RLE marker token")
            (run,) = struct.unpack_from("<H", body, i + 1)
            if run == 0:
                out.append(_MARKER)
                i += 3
                continue
            if run < _MIN_RUN:
                raise CodecError(f"corrupt RLE run length {run}")
            if i + 4 > len(body):
                raise CodecError("truncated RLE run token")
            out += bytes([body[i + 3]]) * run
            i += 4
        if len(out) != n:
            raise CodecError(
                f"RLE stream decoded {len(out)} bytes, header says {n}"
            )
        return bytes(out)
