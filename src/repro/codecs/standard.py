"""Stdlib-backed general-purpose solvers: zlib, bzip2 (bzlib2), lzma.

zlib and bzip2 are the two solvers the paper evaluates (its "zlib" and
"bzlib2"); both Python modules wrap the exact C libraries the authors
used, so compression *ratios* are directly comparable.  lzma is included
as an additional high-ratio solver to demonstrate that the
preconditioner is solver-agnostic.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

from repro.codecs.base import Codec
from repro.core.exceptions import CodecError, ConfigurationError

__all__ = ["ZlibCodec", "Bzip2Codec", "LzmaCodec"]


class ZlibCodec(Codec):
    """DEFLATE (LZ77 + Huffman) via zlib — the paper's fast solver."""

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise ConfigurationError(f"zlib level must be in [1, 9], got {level}")
        self._level = level
        self.name = "zlib" if level == 6 else f"zlib-{level}"

    @property
    def level(self) -> int:
        """Configured compression level (1 fastest .. 9 best)."""
        return self._level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self._level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"zlib decompression failed: {exc}") from exc


class Bzip2Codec(Codec):
    """Burrows-Wheeler + Huffman via bz2 — the paper's high-ratio solver."""

    def __init__(self, level: int = 9):
        if not 1 <= level <= 9:
            raise ConfigurationError(f"bzip2 level must be in [1, 9], got {level}")
        self._level = level
        self.name = "bzip2" if level == 9 else f"bzip2-{level}"

    @property
    def level(self) -> int:
        """Configured block-size level (1 = 100 kB blocks .. 9 = 900 kB)."""
        return self._level

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self._level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(data)
        except (OSError, ValueError) as exc:
            raise CodecError(f"bzip2 decompression failed: {exc}") from exc


class LzmaCodec(Codec):
    """LZMA via the xz container — a slower, higher-ratio extra solver."""

    def __init__(self, preset: int = 1):
        if not 0 <= preset <= 9:
            raise ConfigurationError(
                f"lzma preset must be in [0, 9], got {preset}"
            )
        self._preset = preset
        self.name = "lzma" if preset == 1 else f"lzma-{preset}"

    @property
    def preset(self) -> int:
        """Configured LZMA preset (0 fastest .. 9 best)."""
        return self._preset

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self._preset)

    def decompress(self, data: bytes) -> bytes:
        try:
            return lzma.decompress(data)
        except lzma.LZMAError as exc:
            raise CodecError(f"lzma decompression failed: {exc}") from exc
