"""Stdlib-backed general-purpose solvers: zlib, bzip2 (bzlib2), lzma.

zlib and bzip2 are the two solvers the paper evaluates (its "zlib" and
"bzlib2"); both Python modules wrap the exact C libraries the authors
used, so compression *ratios* are directly comparable.  lzma is included
as an additional high-ratio solver to demonstrate that the
preconditioner is solver-agnostic.
"""

from __future__ import annotations

import bz2
import lzma
import zlib

from repro.codecs.base import Codec
from repro.core.exceptions import CodecError, ConfigurationError

__all__ = [
    "ZlibCodec",
    "Bzip2Codec",
    "LzmaCodec",
    "IsalZlibCodec",
    "isal_available",
]

# Optional acceleration: python-isal wraps Intel's ISA-L, whose
# igzip-style DEFLATE is several times faster than stdlib zlib while
# producing standard zlib streams.  The dependency is detected once at
# import; absent, the codec transparently runs on stdlib zlib.
try:  # pragma: no cover - exercised only where python-isal is installed
    from isal import isal_zlib as _isal_zlib
except ImportError:
    _isal_zlib = None


def isal_available() -> bool:
    """True when python-isal is importable (``isal-zlib`` accelerates)."""
    return _isal_zlib is not None


class ZlibCodec(Codec):
    """DEFLATE (LZ77 + Huffman) via zlib — the paper's fast solver."""

    # CPython's zlibmodule drops the GIL around deflate/inflate, so
    # worker threads scale this codec without a process pool.
    releases_gil = True
    process_safe = True

    def __init__(self, level: int = 6):
        if not 1 <= level <= 9:
            raise ConfigurationError(f"zlib level must be in [1, 9], got {level}")
        self._level = level
        self.name = "zlib" if level == 6 else f"zlib-{level}"

    @property
    def level(self) -> int:
        """Configured compression level (1 fastest .. 9 best)."""
        return self._level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self._level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"zlib decompression failed: {exc}") from exc


class Bzip2Codec(Codec):
    """Burrows-Wheeler + Huffman via bz2 — the paper's high-ratio solver."""

    releases_gil = True
    process_safe = True

    def __init__(self, level: int = 9):
        if not 1 <= level <= 9:
            raise ConfigurationError(f"bzip2 level must be in [1, 9], got {level}")
        self._level = level
        self.name = "bzip2" if level == 9 else f"bzip2-{level}"

    @property
    def level(self) -> int:
        """Configured block-size level (1 = 100 kB blocks .. 9 = 900 kB)."""
        return self._level

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self._level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return bz2.decompress(data)
        except (OSError, ValueError) as exc:
            raise CodecError(f"bzip2 decompression failed: {exc}") from exc


class LzmaCodec(Codec):
    """LZMA via the xz container — a slower, higher-ratio extra solver."""

    releases_gil = True
    process_safe = True

    def __init__(self, preset: int = 1):
        if not 0 <= preset <= 9:
            raise ConfigurationError(
                f"lzma preset must be in [0, 9], got {preset}"
            )
        self._preset = preset
        self.name = "lzma" if preset == 1 else f"lzma-{preset}"

    @property
    def preset(self) -> int:
        """Configured LZMA preset (0 fastest .. 9 best)."""
        return self._preset

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self._preset)

    def decompress(self, data: bytes) -> bytes:
        try:
            return lzma.decompress(data)
        except lzma.LZMAError as exc:
            raise CodecError(f"lzma decompression failed: {exc}") from exc


class IsalZlibCodec(Codec):
    """DEFLATE via Intel ISA-L when available, stdlib zlib otherwise.

    ISA-L's ``isal_zlib`` emits standard zlib streams, so containers
    written with this codec decode with plain :class:`ZlibCodec` (and
    vice versa) — the acceleration is an implementation detail, never a
    format difference.  On hosts without python-isal the codec is a
    stdlib-zlib solver under the ``isal-zlib`` name, keeping containers
    portable across hosts with and without the accelerator.

    ISA-L supports levels 0-3 (its own scale, trading ratio for speed);
    when falling back, the level maps onto a comparable stdlib level.
    """

    releases_gil = True
    process_safe = True

    #: ISA-L level -> roughly comparable stdlib zlib level.
    _STDLIB_LEVELS = {0: 1, 1: 2, 2: 6, 3: 9}

    def __init__(self, level: int = 2):
        if level not in self._STDLIB_LEVELS:
            raise ConfigurationError(
                f"isal-zlib level must be in [0, 3], got {level}"
            )
        self._level = level
        self.name = "isal-zlib" if level == 2 else f"isal-zlib-{level}"

    @property
    def level(self) -> int:
        """Configured ISA-L compression level (0 fastest .. 3 best)."""
        return self._level

    @property
    def accelerated(self) -> bool:
        """True when this codec actually runs on ISA-L."""
        return _isal_zlib is not None

    def compress(self, data: bytes) -> bytes:
        if _isal_zlib is not None:
            return _isal_zlib.compress(data, self._level)
        return zlib.compress(data, self._STDLIB_LEVELS[self._level])

    def decompress(self, data: bytes) -> bytes:
        if _isal_zlib is not None:
            try:
                return _isal_zlib.decompress(data)
            except _isal_zlib.error as exc:
                raise CodecError(
                    f"isal-zlib decompression failed: {exc}"
                ) from exc
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"isal-zlib decompression failed: {exc}") from exc
