"""ISOBAR core: analyzer, partitioner, selector, pipeline and container."""

from repro.core.adaptive import (
    AdaptiveIsobarCompressor,
    AdaptiveResult,
    SegmentInfo,
)
from repro.core.validate import ChunkFinding, ValidationReport, validate_container
from repro.core.salvage import (
    SALVAGE_POLICIES,
    ChunkOutcome,
    SalvageReport,
    SalvageResult,
    ScanEvent,
    salvage_decompress,
    scan_chunks,
)
from repro.core.bitlevel import BitLevelAnalysis, BitLevelCompressor, analyze_bits
from repro.core.concat import concat_containers, split_container_header
from repro.core.autotune import TauSweepResult, autotune_tau, minimum_reliable_tau
from repro.core.parallel import ParallelIsobarCompressor
from repro.core.random_access import ChunkIndexEntry, ContainerReader
from repro.core.records import RecordCompressor
from repro.core.stream import StreamingWriter, stream_compress, stream_decompress
from repro.core.analyzer import AnalysisResult, analyze, analyze_matrix
from repro.core.chunking import ChunkSpan, chunk_count, iter_chunks, plan_chunks
from repro.core.exceptions import (
    ChecksumError,
    ChunkTimeoutError,
    CodecError,
    ConfigurationError,
    ContainerFormatError,
    InvalidInputError,
    IsobarError,
    SelectorError,
    TruncatedContainerError,
    UnknownCodecError,
)
from repro.core.resilience import (
    BreakerBoard,
    BreakerState,
    CodecCircuitBreaker,
    DegradationEvent,
    DegradationReport,
    ResiliencePolicy,
    call_with_deadline,
)
from repro.core.metadata import (
    ChunkMetadata,
    ChunkMode,
    ContainerHeader,
    decode_mask,
    encode_mask,
)
from repro.core.partitioner import (
    Partition,
    partition,
    partition_matrix,
    reassemble,
    reassemble_matrix,
)
from repro.core.pipeline import (
    ChunkReport,
    CompressionResult,
    EncodedChunk,
    IsobarCompressor,
    decode_chunk_payload,
    encode_chunk_payload,
    isobar_compress,
    isobar_decompress,
)
from repro.core.preferences import (
    DEFAULT_CHUNK_ELEMENTS,
    DEFAULT_TAU,
    ERROR_POLICIES,
    IsobarConfig,
    Linearization,
    Preference,
    normalize_errors,
    salvage_policy_for,
)
from repro.core.workspace import ChunkWorkspace
from repro.core.selector import (
    CandidateEvaluation,
    CandidateFailure,
    EupaSelector,
    SelectorDecision,
)

__all__ = [
    "concat_containers",
    "split_container_header",
    "BitLevelAnalysis",
    "BitLevelCompressor",
    "analyze_bits",
    "AdaptiveIsobarCompressor",
    "AdaptiveResult",
    "SegmentInfo",
    "ChunkFinding",
    "ValidationReport",
    "validate_container",
    "SALVAGE_POLICIES",
    "ChunkOutcome",
    "SalvageReport",
    "SalvageResult",
    "ScanEvent",
    "salvage_decompress",
    "scan_chunks",
    "TauSweepResult",
    "autotune_tau",
    "minimum_reliable_tau",
    "ParallelIsobarCompressor",
    "ChunkIndexEntry",
    "ContainerReader",
    "RecordCompressor",
    "StreamingWriter",
    "stream_compress",
    "stream_decompress",
    "AnalysisResult",
    "analyze",
    "analyze_matrix",
    "ChunkSpan",
    "chunk_count",
    "iter_chunks",
    "plan_chunks",
    "ChecksumError",
    "ChunkTimeoutError",
    "CodecError",
    "ConfigurationError",
    "ContainerFormatError",
    "InvalidInputError",
    "IsobarError",
    "SelectorError",
    "TruncatedContainerError",
    "UnknownCodecError",
    "ChunkMetadata",
    "ChunkMode",
    "ContainerHeader",
    "decode_mask",
    "encode_mask",
    "Partition",
    "partition",
    "partition_matrix",
    "reassemble",
    "reassemble_matrix",
    "ChunkReport",
    "CompressionResult",
    "EncodedChunk",
    "IsobarCompressor",
    "decode_chunk_payload",
    "encode_chunk_payload",
    "isobar_compress",
    "isobar_decompress",
    "DEFAULT_CHUNK_ELEMENTS",
    "DEFAULT_TAU",
    "ERROR_POLICIES",
    "IsobarConfig",
    "Linearization",
    "Preference",
    "normalize_errors",
    "salvage_policy_for",
    "ChunkWorkspace",
    "BreakerBoard",
    "BreakerState",
    "CodecCircuitBreaker",
    "DegradationEvent",
    "DegradationReport",
    "ResiliencePolicy",
    "call_with_deadline",
    "CandidateEvaluation",
    "CandidateFailure",
    "EupaSelector",
    "SelectorDecision",
]
