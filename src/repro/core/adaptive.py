"""Adaptive per-stream re-selection (extension beyond the paper).

The paper makes one EUPA decision per stream and shows (Section II-F)
that for a single simulation variable the choice stays optimal.  Long
archival streams, however, can *drift*: a variable may transition from
a linear to a saturated regime, or a file may concatenate unrelated
variables.  :class:`AdaptiveIsobarCompressor` watches for drift and
re-runs the selector when the data's byte fingerprint changes:

* the trigger is the analyzer mask — if a chunk's compressibility mask
  differs from the mask the current decision was made under, the
  selector is re-evaluated on that chunk;
* an optional ``revisit_every`` forces periodic re-evaluation even
  without a mask change (guards against ratio drift the mask cannot
  see).

The output is NOT a standard single-decision container: each segment
(maximal run of chunks under one decision) is emitted as a complete
inner container, concatenated under a small envelope, so decompression
replays each segment with its own codec and linearization.

Re-selection honours ``config.selector`` like every other entry point:
each segment's inner :class:`~repro.core.pipeline.IsobarCompressor`
resolves the configured strategy, so ``selector="learned"`` or
``"cached"`` makes repeated re-evaluations progressively cheaper — the
probe results of early segments train the shared model that decides
later ones without timing (see :mod:`repro.core.selector_learned`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.analysis.bytefreq import element_width
from repro.core.analyzer import analyze
from repro.core.chunking import plan_chunks
from repro.core.exceptions import ContainerFormatError, InvalidInputError
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig

__all__ = ["SegmentInfo", "AdaptiveResult", "AdaptiveIsobarCompressor"]

_MAGIC = b"IADP"


@dataclass(frozen=True)
class SegmentInfo:
    """One maximal run of chunks compressed under a single decision."""

    index: int
    element_start: int
    element_stop: int
    codec_name: str
    linearization: str
    mask_bits: str
    stored_bytes: int


@dataclass(frozen=True)
class AdaptiveResult:
    """Envelope payload plus the segmentation record."""

    payload: bytes
    segments: tuple[SegmentInfo, ...]

    @property
    def n_decisions(self) -> int:
        """How many distinct selector evaluations the stream needed."""
        return len(self.segments)


class AdaptiveIsobarCompressor:
    """ISOBAR with drift-triggered selector re-evaluation."""

    def __init__(
        self,
        config: IsobarConfig | None = None,
        revisit_every: int | None = None,
    ):
        if revisit_every is not None and revisit_every < 1:
            raise InvalidInputError(
                f"revisit_every must be positive, got {revisit_every}"
            )
        self._config = config or IsobarConfig()
        self._revisit_every = revisit_every

    # -- compression ------------------------------------------------------

    def compress_detailed(self, values: np.ndarray) -> AdaptiveResult:
        """Segment the stream by fingerprint and compress each segment."""
        arr = np.asarray(values)
        element_width(arr.dtype)
        flat = arr.reshape(-1)
        spans = plan_chunks(flat.size, self._config.chunk_elements)

        # Group chunks into segments with a stable analyzer mask.
        segments: list[tuple[int, int]] = []  # element spans
        current_mask: tuple[bool, ...] | None = None
        chunks_in_segment = 0
        segment_start = 0
        for span in spans:
            chunk = flat[span.start:span.stop]
            mask = tuple(bool(b) for b in
                         analyze(chunk, tau=self._config.tau).mask)
            revisit = (
                self._revisit_every is not None
                and chunks_in_segment >= self._revisit_every
            )
            if current_mask is None:
                current_mask = mask
            elif mask != current_mask or revisit:
                segments.append((segment_start, span.start))
                segment_start = span.start
                current_mask = mask
                chunks_in_segment = 0
            chunks_in_segment += 1
        if flat.size or not segments:
            segments.append((segment_start, flat.size))

        parts: list[bytes] = [_MAGIC, struct.pack("<I", len(segments))]
        infos: list[SegmentInfo] = []
        for index, (start, stop) in enumerate(segments):
            segment = flat[start:stop]
            compressor = IsobarCompressor(self._config)
            result = compressor.compress_detailed(segment)
            parts.append(struct.pack("<Q", len(result.payload)))
            parts.append(result.payload)
            mask_bits = ""
            if result.chunks:
                first = result.chunks[0]
                analysis = analyze(segment[: min(segment.size,
                                                 self._config.chunk_elements)],
                                   tau=self._config.tau) if segment.size else None
                mask_bits = (
                    "".join("1" if b else "0" for b in analysis.mask)
                    if analysis is not None else ""
                )
            infos.append(
                SegmentInfo(
                    index=index,
                    element_start=start,
                    element_stop=stop,
                    codec_name=result.decision.codec_name,
                    linearization=result.decision.linearization.value,
                    mask_bits=mask_bits,
                    stored_bytes=len(result.payload),
                )
            )
        return AdaptiveResult(payload=b"".join(parts), segments=tuple(infos))

    def compress(self, values: np.ndarray) -> bytes:
        """Compress to the adaptive envelope format."""
        return self.compress_detailed(values).payload

    # -- decompression ----------------------------------------------------

    def decompress(self, data: bytes) -> np.ndarray:
        """Restore the concatenated segments bit-exactly."""
        if len(data) < 8 or data[:4] != _MAGIC:
            raise ContainerFormatError("not an adaptive envelope (bad magic)")
        (n_segments,) = struct.unpack_from("<I", data, 4)
        offset = 8
        pieces: list[np.ndarray] = []
        inner = IsobarCompressor(self._config)
        for _ in range(n_segments):
            if len(data) < offset + 8:
                raise ContainerFormatError("truncated adaptive envelope")
            (length,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            payload = data[offset:offset + length]
            if len(payload) != length:
                raise ContainerFormatError("truncated segment payload")
            offset += length
            pieces.append(np.asarray(inner.decompress(payload)).reshape(-1))
        if not pieces:
            raise ContainerFormatError("adaptive envelope with no segments")
        return np.concatenate(pieces)
