"""ISOBAR-analyzer: byte-column compressibility identification (Section II-A).

The analyzer views the input as an ``N x w`` byte matrix and classifies
every byte-column as *compressible* or *incompressible* using the
paper's frequency-distribution tolerance: a column is incompressible
when all 256 of its byte-value frequencies fall below
``tau * N / 256`` — i.e. the column's byte histogram is statistically
indistinguishable from uniform noise, which entropy coders cannot
shrink.  The output mask drives the partitioner (Figure 4) and the
improvable / undetermined decision of Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bytefreq import byte_view, column_frequencies
from repro.core.exceptions import InvalidInputError
from repro.core.preferences import DEFAULT_TAU, MIN_ANALYZER_ELEMENTS

__all__ = ["AnalysisResult", "analyze", "analyze_matrix"]


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one ISOBAR-analyzer pass over a chunk or dataset.

    Attributes
    ----------
    mask:
        Boolean array of length ``w``; ``True`` marks a *compressible*
        byte-column (the ``1`` entries of the paper's output array).
    n_elements / element_width:
        Dimensions of the analysed byte matrix.
    tau / threshold:
        The tolerance multiplier used and the resulting absolute
        frequency threshold ``tau * N / 256``.
    column_max_frequencies:
        Peak byte-value frequency per column — the statistic the
        threshold is compared against.
    column_entropy_bits:
        Shannon entropy (bits/byte) per column, kept for diagnostics.
    low_confidence:
        True when the chunk had fewer than
        :data:`~repro.core.preferences.MIN_ANALYZER_ELEMENTS` elements,
        making the histogram statistics thin.
    """

    mask: np.ndarray
    n_elements: int
    element_width: int
    tau: float
    threshold: float
    column_max_frequencies: np.ndarray = field(repr=False)
    column_entropy_bits: np.ndarray = field(repr=False)
    low_confidence: bool = False

    @property
    def n_compressible(self) -> int:
        """Number of byte-columns classified compressible."""
        return int(np.count_nonzero(self.mask))

    @property
    def n_incompressible(self) -> int:
        """Number of byte-columns classified incompressible (noise)."""
        return self.element_width - self.n_compressible

    @property
    def hard_to_compress(self) -> bool:
        """Table IV's "HTC?" column: does the data contain noise columns?"""
        return self.n_incompressible > 0

    @property
    def htc_bytes_percent(self) -> float:
        """Table IV's "HTC Bytes (%)": share of incompressible bytes."""
        return 100.0 * self.n_incompressible / self.element_width

    @property
    def improvable(self) -> bool:
        """Algorithm 1's branch: improvable iff the mask is mixed.

        All-compressible or all-incompressible inputs are *undetermined*
        and flow to the solver unchanged.
        """
        return 0 < self.n_compressible < self.element_width

    @property
    def undetermined(self) -> bool:
        """Complement of :attr:`improvable`."""
        return not self.improvable

    def summary(self) -> str:
        """One-line human-readable classification, for logs and the CLI."""
        mask_bits = "".join("1" if bit else "0" for bit in self.mask)
        kind = "improvable" if self.improvable else "undetermined"
        return (
            f"mask={mask_bits} ({kind}); "
            f"HTC bytes: {self.htc_bytes_percent:.1f}%; "
            f"threshold {self.threshold:.1f} over N={self.n_elements}"
        )


def analyze_matrix(matrix: np.ndarray, tau: float = DEFAULT_TAU) -> AnalysisResult:
    """Run the analyzer on an already-built ``(N, w)`` byte matrix."""
    mat = np.asarray(matrix)
    if mat.ndim != 2 or mat.dtype != np.uint8:
        raise InvalidInputError(
            f"expected an (N, w) uint8 byte matrix, got {mat.dtype!r} "
            f"with shape {mat.shape}"
        )
    n_elements, width = mat.shape
    if n_elements == 0 or width == 0:
        raise InvalidInputError("cannot analyze an empty byte matrix")
    frequencies = column_frequencies(mat)
    max_freq = frequencies.max(axis=1)
    threshold = tau * n_elements / 256.0
    # A column is incompressible when every frequency is *below* the
    # tolerance level, i.e. its maximum is below the threshold.
    compressible = max_freq >= threshold
    # Entropy diagnostics from the same histogram (avoids a second
    # counting pass over the matrix).
    probs = frequencies / float(n_elements)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(probs > 0, probs * np.log2(probs), 0.0)
    entropy_bits = -terms.sum(axis=1)
    return AnalysisResult(
        mask=compressible,
        n_elements=int(n_elements),
        element_width=int(width),
        tau=float(tau),
        threshold=float(threshold),
        column_max_frequencies=max_freq,
        column_entropy_bits=entropy_bits,
        low_confidence=n_elements < MIN_ANALYZER_ELEMENTS,
    )


def analyze(values: np.ndarray, tau: float = DEFAULT_TAU) -> AnalysisResult:
    """Run the ISOBAR-analyzer on an element array.

    ``values`` may have any shape; elements are viewed in little-endian
    byte order (column 0 = least-significant byte).  Returns the
    compressibility mask plus the diagnostics the rest of the workflow
    and the benchmark tables need.
    """
    return analyze_matrix(byte_view(values), tau=tau)
