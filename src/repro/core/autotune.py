"""Automatic tau selection (extension of the paper's fixed tau = 1.42).

The paper fixes tau after observing that the compression-ratio
improvement is stable when tau varies over [1.4, 1.5].  This module
automates that observation: it sweeps tau over a grid on a sample of
the input, measures the actual achieved ratio per tau, finds the widest
*plateau* (maximal contiguous run of taus whose ratios agree within a
tolerance), and returns its midpoint.

There is also a closed-form statistical lower bound: for an
incompressible column the peak of a uniform multinomial histogram
concentrates at ``N/256 + sqrt(2 * (N/256) * ln 256)``, so any tau below

    tau_min(N) = 1 + sqrt(2 * 256 * ln(256) / N)

risks classifying genuine noise as compressible at chunk size ``N``.
``minimum_reliable_tau`` exposes that bound — at the paper's 375 000
element chunks it evaluates to ~1.09, comfortably below 1.42, while at
8 000 elements it is ~1.60, *above* 1.42: the quantitative reason the
paper needs large chunks (Figure 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError, InvalidInputError
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig

__all__ = ["minimum_reliable_tau", "TauSweepResult", "autotune_tau"]

_DEFAULT_GRID = (1.1, 1.2, 1.3, 1.35, 1.4, 1.45, 1.5, 1.6, 1.8, 2.0)


def minimum_reliable_tau(n_elements: int) -> float:
    """Smallest tau that keeps uniform noise below the threshold at N.

    Derived from the Gaussian approximation of the maximum cell of a
    uniform multinomial over 256 bins (see module docstring).  Chunks
    smaller than ~1 000 elements have no reliable tau below 2.
    """
    if n_elements < 1:
        raise InvalidInputError(
            f"n_elements must be positive, got {n_elements}"
        )
    return 1.0 + math.sqrt(2.0 * 256.0 * math.log(256.0) / n_elements)


@dataclass(frozen=True)
class TauSweepResult:
    """Outcome of :func:`autotune_tau`."""

    chosen_tau: float
    grid: tuple[float, ...]
    ratios: tuple[float, ...]
    plateau: tuple[float, ...]
    statistical_floor: float

    def as_rows(self) -> list[list[object]]:
        """(tau, ratio, in-plateau) rows for reporting."""
        plateau_set = set(self.plateau)
        return [
            [tau, ratio, tau in plateau_set]
            for tau, ratio in zip(self.grid, self.ratios)
        ]


def autotune_tau(
    values: np.ndarray,
    grid: tuple[float, ...] = _DEFAULT_GRID,
    sample_elements: int = 65_536,
    tolerance: float = 0.01,
    config: IsobarConfig | None = None,
) -> TauSweepResult:
    """Pick tau by locating the widest ratio plateau on a sample.

    Parameters
    ----------
    values:
        The data to tune for (a representative chunk suffices).
    grid:
        Ascending tau candidates to sweep.
    sample_elements:
        Leading-sample size actually compressed per grid point.
    tolerance:
        Relative ratio difference under which two neighbouring grid
        points count as the same plateau.
    config:
        Base configuration (codec, linearization, preference) used for
        the sweep; only tau varies.

    Returns the sweep record; ``chosen_tau`` is the midpoint of the
    widest plateau, clamped to at least the statistical floor for the
    sample size.
    """
    if len(grid) < 2:
        raise ConfigurationError("tau grid needs at least two points")
    if sorted(grid) != list(grid):
        raise ConfigurationError("tau grid must be ascending")
    if not 0.0 < tolerance < 1.0:
        raise ConfigurationError(
            f"tolerance must be in (0, 1), got {tolerance}"
        )
    flat = np.asarray(values).reshape(-1)
    if flat.size == 0:
        raise InvalidInputError("cannot autotune on empty input")
    sample = flat[: min(sample_elements, flat.size)]
    base = config or IsobarConfig(sample_elements=8_192)

    ratios = []
    for tau in grid:
        compressor = IsobarCompressor(base.replace(tau=tau))
        ratios.append(compressor.compress_detailed(sample).ratio)

    # Widest contiguous run of grid points whose ratios pairwise agree
    # with the run's running maximum within `tolerance`.
    best_start, best_stop = 0, 1
    start = 0
    for i in range(1, len(grid)):
        window = ratios[start:i + 1]
        if max(window) - min(window) > tolerance * max(window):
            start = i
        if i + 1 - start > best_stop - best_start:
            best_start, best_stop = start, i + 1
    plateau = tuple(grid[best_start:best_stop])

    floor = minimum_reliable_tau(sample.size)
    chosen = plateau[len(plateau) // 2]
    chosen = max(chosen, min(floor, grid[-1]))
    return TauSweepResult(
        chosen_tau=float(chosen),
        grid=tuple(grid),
        ratios=tuple(ratios),
        plateau=plateau,
        statistical_floor=floor,
    )
