"""Bit-level preconditioning variant (tests the paper's granularity claim).

Section II-A argues the analyzer should work at the *byte* level rather
than the bit level: byte histograms have "greater variance of entropy",
i.e. more statistical resolution per classification decision, and byte
granularity matches what entropy-coding solvers consume.  This module
implements the road not taken — a bit-column analyzer and partitioner —
so the claim becomes a measurable ablation instead of an assertion:

* each of the ``8 * width`` bit-columns is classified *noise* when its
  dominant-value probability is below a threshold (default 0.53), else
  *signal*;
* signal bit-planes are packed and sent to the solver; noise bit-planes
  are packed and stored raw;
* reassembly interleaves the planes back bit-exactly.

The comparison benchmark shows where this loses to ISOBAR: bit-level
classification needs far more samples for the same confidence (a fair
coin and a 0.53-biased coin are hard to separate), misclassification
costs are asymmetric, and per-plane solver calls fragment the stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bytefreq import byte_matrix, element_width, matrix_to_elements
from repro.codecs.base import get_codec
from repro.core.exceptions import ContainerFormatError, InvalidInputError

__all__ = ["BitLevelAnalysis", "analyze_bits", "BitLevelCompressor"]

_MAGIC = b"IBIT"


@dataclass(frozen=True)
class BitLevelAnalysis:
    """Bit-column classification of one array."""

    #: True = signal (predictable) bit-column, False = noise.
    mask: np.ndarray
    n_elements: int
    n_bit_columns: int
    threshold: float
    probabilities: np.ndarray

    @property
    def n_noise_bits(self) -> int:
        """Bit-columns classified as noise."""
        return int(np.count_nonzero(~self.mask))

    @property
    def noise_fraction(self) -> float:
        """Share of each element's bits classified noise."""
        return self.n_noise_bits / self.n_bit_columns


def _bit_matrix(values: np.ndarray) -> np.ndarray:
    """(N, width*8) bit matrix, LSB-first within each byte-column."""
    matrix = byte_matrix(values)
    return np.unpackbits(matrix, axis=1, bitorder="little")


def analyze_bits(values: np.ndarray, threshold: float = 0.53) -> BitLevelAnalysis:
    """Classify every bit-column by its dominant-value probability."""
    if not 0.5 < threshold < 1.0:
        raise InvalidInputError(
            f"threshold must be in (0.5, 1.0), got {threshold}"
        )
    bits = _bit_matrix(values)
    ones = bits.mean(axis=0)
    probabilities = np.maximum(ones, 1.0 - ones)
    mask = probabilities >= threshold
    return BitLevelAnalysis(
        mask=mask,
        n_elements=int(bits.shape[0]),
        n_bit_columns=int(bits.shape[1]),
        threshold=float(threshold),
        probabilities=probabilities,
    )


class BitLevelCompressor:
    """Bit-plane partition + solver pipeline (the ablation comparator).

    Parameters
    ----------
    codec_name:
        Registry name of the solver for the signal bit-planes.
    threshold:
        Dominant-probability cut between signal and noise bit-columns.
    """

    def __init__(self, codec_name: str = "zlib", threshold: float = 0.53):
        self._codec = get_codec(codec_name)
        self._threshold = threshold
        self.name = f"bitlevel+{codec_name}"

    def compress(self, values: np.ndarray) -> bytes:
        """Partition bit-planes and compress the signal ones."""
        arr = np.asarray(values).reshape(-1)
        width = element_width(arr.dtype)
        if arr.size == 0:
            raise InvalidInputError("cannot compress an empty array")
        analysis = analyze_bits(arr, threshold=self._threshold)
        bits = _bit_matrix(arr)
        planes = np.ascontiguousarray(bits.T)  # (n_bit_columns, N)

        signal = planes[analysis.mask]
        noise = planes[~analysis.mask]
        signal_bytes = np.packbits(signal, axis=None).tobytes() if signal.size else b""
        noise_bytes = np.packbits(noise, axis=None).tobytes() if noise.size else b""
        compressed = self._codec.compress(signal_bytes)

        mask_bytes = np.packbits(
            analysis.mask.astype(np.uint8), bitorder="little"
        ).tobytes()
        dtype_str = arr.dtype.str.encode("ascii")
        header = (
            _MAGIC
            + bytes([len(dtype_str)])
            + dtype_str
            + arr.size.to_bytes(8, "little")
            + bytes([len(mask_bytes)])
            + mask_bytes
            + len(compressed).to_bytes(8, "little")
        )
        return header + compressed + noise_bytes

    def decompress(self, data: bytes) -> np.ndarray:
        """Invert :meth:`compress` bit-exactly."""
        if len(data) < 6 or data[:4] != _MAGIC:
            raise ContainerFormatError("not a bit-level container")
        dtype_len = data[4]
        dtype = np.dtype(data[5:5 + dtype_len].decode("ascii"))
        offset = 5 + dtype_len
        n_elements = int.from_bytes(data[offset:offset + 8], "little")
        offset += 8
        mask_len = data[offset]
        offset += 1
        n_bit_columns = dtype.itemsize * 8
        mask = np.unpackbits(
            np.frombuffer(data, dtype=np.uint8, count=mask_len, offset=offset),
            bitorder="little",
        )[:n_bit_columns].astype(bool)
        offset += mask_len
        compressed_len = int.from_bytes(data[offset:offset + 8], "little")
        offset += 8
        compressed = data[offset:offset + compressed_len]
        noise_bytes = data[offset + compressed_len:]

        signal_bytes = self._codec.decompress(compressed)
        n_signal = int(np.count_nonzero(mask))
        n_noise = n_bit_columns - n_signal

        def _planes(buffer: bytes, n_planes: int) -> np.ndarray:
            if n_planes == 0:
                return np.empty((0, n_elements), dtype=np.uint8)
            expected_bits = n_planes * n_elements
            unpacked = np.unpackbits(
                np.frombuffer(buffer, dtype=np.uint8)
            )[:expected_bits]
            if unpacked.size != expected_bits:
                raise ContainerFormatError("bit-plane stream truncated")
            return unpacked.reshape(n_planes, n_elements)

        planes = np.empty((n_bit_columns, n_elements), dtype=np.uint8)
        planes[mask] = _planes(signal_bytes, n_signal)
        planes[~mask] = _planes(noise_bytes, n_noise)
        bits = np.ascontiguousarray(planes.T)
        matrix = np.packbits(bits, axis=1, bitorder="little")
        return matrix_to_elements(matrix, dtype)

    def ratio(self, values: np.ndarray) -> float:
        """Compression ratio achieved on ``values``."""
        arr = np.asarray(values)
        return arr.nbytes / len(self.compress(arr))
