"""Input chunking (Section II-D, Figure 6).

Extreme-scale arrays cannot be compressed in one pass; ISOBAR segments
them into chunks of a configurable element count (the paper settles on
~375 000 doubles ≈ 3 MB, Figure 8) and processes each independently.
This module plans and iterates those chunks; the container format keeps
one metadata record per chunk so decompression can stream as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.exceptions import InvalidInputError
from repro.core.preferences import DEFAULT_CHUNK_ELEMENTS

__all__ = ["ChunkSpan", "plan_chunks", "iter_chunks", "chunk_count"]


@dataclass(frozen=True)
class ChunkSpan:
    """Half-open element range ``[start, stop)`` of one chunk."""

    index: int
    start: int
    stop: int

    @property
    def n_elements(self) -> int:
        """Number of elements covered by this span."""
        return self.stop - self.start


def plan_chunks(
    n_elements: int, chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
) -> list[ChunkSpan]:
    """Split ``n_elements`` into consecutive spans of ``chunk_elements``.

    The final span may be shorter.  Zero-length inputs produce an empty
    plan (a valid container with zero chunks).
    """
    if n_elements < 0:
        raise InvalidInputError(f"n_elements must be non-negative, got {n_elements}")
    if chunk_elements < 1:
        raise InvalidInputError(
            f"chunk_elements must be positive, got {chunk_elements}"
        )
    spans = []
    for index, start in enumerate(range(0, n_elements, chunk_elements)):
        stop = min(start + chunk_elements, n_elements)
        spans.append(ChunkSpan(index=index, start=start, stop=stop))
    return spans


def chunk_count(
    n_elements: int, chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
) -> int:
    """Number of chunks :func:`plan_chunks` would produce."""
    if n_elements < 0:
        raise InvalidInputError(f"n_elements must be non-negative, got {n_elements}")
    if chunk_elements < 1:
        raise InvalidInputError(
            f"chunk_elements must be positive, got {chunk_elements}"
        )
    return -(-n_elements // chunk_elements)


def iter_chunks(
    values: np.ndarray, chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
) -> Iterator[tuple[ChunkSpan, np.ndarray]]:
    """Yield ``(span, view)`` pairs over the flat view of ``values``.

    Views are produced lazily and reference the original buffer — no
    copies are made, matching the in-situ pipelining the paper targets.
    """
    flat = np.asarray(values).reshape(-1)
    for span in plan_chunks(flat.size, chunk_elements):
        yield span, flat[span.start:span.stop]
