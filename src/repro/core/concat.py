"""Container concatenation: recompression-free appends.

Time-series archives grow by appending timesteps.  Because ISOBAR
chunks are independent, two containers written with the same dtype,
solver and linearization can be merged by *re-framing alone*: the chunk
records and payloads are copied verbatim and only the global header's
element/chunk counts change.  No payload is decompressed or
recompressed, so concatenation runs at memcpy speed and is exactly
lossless by construction.

Each input's chunk-index footer (if any) is stripped — its offsets are
meaningless after re-framing — and the merged container gets a fresh
footer indexing the combined chain, so the result opens in O(1) like
any directly written container.

Constraints checked before merging (mismatches raise):

* identical dtype (bit-exactness would otherwise be ambiguous);
* identical codec and linearization (chunks must decode uniformly —
  the container format records one solver per stream);
* the merged shape becomes 1-D (original multidimensional shapes are
  not meaningfully concatenable in general).
"""

from __future__ import annotations

from repro.core.exceptions import ContainerFormatError, InvalidInputError
from repro.core.metadata import (
    ChunkIndexRecord,
    ChunkMetadata,
    ContainerFooter,
    ContainerHeader,
    locate_footer,
)

__all__ = ["concat_containers", "split_container_header"]


def split_container_header(data: bytes) -> tuple[ContainerHeader, bytes]:
    """Parse a container into ``(header, chunk_stream_bytes)``.

    Walks the chunk records to validate the stream reaches exactly the
    end of the payload.  A validated chunk-index footer after the last
    chunk is stripped (the merge re-frames the chunks, so per-container
    offsets no longer apply); anything else trailing is rejected to
    keep the merge well-defined.
    """
    header, offset = ContainerHeader.decode(data)
    chunk_start = offset
    width = header.element_width
    elements = 0
    for _ in range(header.n_chunks):
        meta, payload_offset = ChunkMetadata.decode(data, offset, width)
        offset = (payload_offset + meta.compressed_size
                  + meta.incompressible_size)
        if offset > len(data):
            raise ContainerFormatError("container truncated mid-chunk")
        elements += meta.n_elements
    if elements != header.n_elements:
        raise ContainerFormatError(
            f"chunks cover {elements} elements, header declares "
            f"{header.n_elements}"
        )
    if offset != len(data):
        location = locate_footer(data)
        if not (location.ok and location.start == offset):
            raise ContainerFormatError(
                f"{len(data) - offset} trailing bytes after the last chunk"
            )
    return header, data[chunk_start:offset]


def concat_containers(containers: list[bytes]) -> bytes:
    """Merge containers into one, copying chunk payloads verbatim.

    The result decompresses to the concatenation of the inputs'
    element streams (flattened 1-D) and carries a freshly built
    chunk-index footer over the merged chain.
    """
    if not containers:
        raise InvalidInputError("need at least one container to concatenate")
    parsed = [split_container_header(data) for data in containers]
    first = parsed[0][0]
    for header, _ in parsed[1:]:
        if header.dtype != first.dtype:
            raise InvalidInputError(
                f"dtype mismatch: {header.dtype} vs {first.dtype}"
            )
        if header.codec_name != first.codec_name:
            raise InvalidInputError(
                f"codec mismatch: {header.codec_name} vs {first.codec_name}"
            )
        if header.linearization != first.linearization:
            raise InvalidInputError(
                f"linearization mismatch: {header.linearization.value} vs "
                f"{first.linearization.value}"
            )

    total_elements = sum(header.n_elements for header, _ in parsed)
    total_chunks = sum(header.n_chunks for header, _ in parsed)
    merged_header = ContainerHeader(
        dtype=first.dtype,
        n_elements=total_elements,
        shape=(total_elements,),
        codec_name=first.codec_name,
        linearization=first.linearization,
        preference=first.preference,
        tau=first.tau,
        chunk_elements=first.chunk_elements,
        n_chunks=total_chunks,
    )
    header_bytes = merged_header.encode()

    # Re-index the merged chain for the footer: chunk record layouts
    # are copied verbatim, so each entry is the source entry shifted to
    # its new absolute position.
    entries: list[ChunkIndexRecord] = []
    cursor = len(header_bytes)
    width = merged_header.element_width
    for header, chunk_stream in parsed:
        offset = 0
        for _ in range(header.n_chunks):
            meta, payload_offset = ChunkMetadata.decode(
                chunk_stream, offset, width
            )
            entries.append(
                ChunkIndexRecord(
                    payload_offset=cursor + payload_offset,
                    compressed_size=meta.compressed_size,
                    incompressible_size=meta.incompressible_size,
                    n_elements=meta.n_elements,
                )
            )
            offset = (payload_offset + meta.compressed_size
                      + meta.incompressible_size)
        cursor += len(chunk_stream)
    footer = ContainerFooter(entries=tuple(entries)).encode()
    return (
        header_bytes
        + b"".join(chunk_stream for _, chunk_stream in parsed)
        + footer
    )
