"""Container concatenation: recompression-free appends.

Time-series archives grow by appending timesteps.  Because ISOBAR
chunks are independent, two containers written with the same dtype,
solver and linearization can be merged by *re-framing alone*: the chunk
records and payloads are copied verbatim and only the global header's
element/chunk counts change.  No payload is decompressed or
recompressed, so concatenation runs at memcpy speed and is exactly
lossless by construction.

Constraints checked before merging (mismatches raise):

* identical dtype (bit-exactness would otherwise be ambiguous);
* identical codec and linearization (chunks must decode uniformly —
  the container format records one solver per stream);
* the merged shape becomes 1-D (original multidimensional shapes are
  not meaningfully concatenable in general).
"""

from __future__ import annotations

from repro.core.exceptions import ContainerFormatError, InvalidInputError
from repro.core.metadata import ChunkMetadata, ContainerHeader

__all__ = ["concat_containers", "split_container_header"]


def split_container_header(data: bytes) -> tuple[ContainerHeader, bytes]:
    """Parse a container into ``(header, chunk_stream_bytes)``.

    Walks the chunk records to validate the stream reaches exactly the
    end of the payload (trailing garbage is rejected to keep the merge
    well-defined).
    """
    header, offset = ContainerHeader.decode(data)
    chunk_start = offset
    width = header.element_width
    elements = 0
    for _ in range(header.n_chunks):
        meta, payload_offset = ChunkMetadata.decode(data, offset, width)
        offset = (payload_offset + meta.compressed_size
                  + meta.incompressible_size)
        if offset > len(data):
            raise ContainerFormatError("container truncated mid-chunk")
        elements += meta.n_elements
    if elements != header.n_elements:
        raise ContainerFormatError(
            f"chunks cover {elements} elements, header declares "
            f"{header.n_elements}"
        )
    if offset != len(data):
        raise ContainerFormatError(
            f"{len(data) - offset} trailing bytes after the last chunk"
        )
    return header, data[chunk_start:]


def concat_containers(containers: list[bytes]) -> bytes:
    """Merge containers into one, copying chunk payloads verbatim.

    The result decompresses to the concatenation of the inputs'
    element streams (flattened 1-D).
    """
    if not containers:
        raise InvalidInputError("need at least one container to concatenate")
    parsed = [split_container_header(data) for data in containers]
    first = parsed[0][0]
    for header, _ in parsed[1:]:
        if header.dtype != first.dtype:
            raise InvalidInputError(
                f"dtype mismatch: {header.dtype} vs {first.dtype}"
            )
        if header.codec_name != first.codec_name:
            raise InvalidInputError(
                f"codec mismatch: {header.codec_name} vs {first.codec_name}"
            )
        if header.linearization != first.linearization:
            raise InvalidInputError(
                f"linearization mismatch: {header.linearization.value} vs "
                f"{first.linearization.value}"
            )

    total_elements = sum(header.n_elements for header, _ in parsed)
    total_chunks = sum(header.n_chunks for header, _ in parsed)
    merged_header = ContainerHeader(
        dtype=first.dtype,
        n_elements=total_elements,
        shape=(total_elements,),
        codec_name=first.codec_name,
        linearization=first.linearization,
        preference=first.preference,
        tau=first.tau,
        chunk_elements=first.chunk_elements,
        n_chunks=total_chunks,
    )
    return merged_header.encode() + b"".join(
        chunk_stream for _, chunk_stream in parsed
    )
