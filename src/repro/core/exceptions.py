"""Exception hierarchy for the ISOBAR reproduction library.

Every error raised by this package derives from :class:`IsobarError`, so
callers can catch a single base class at an API boundary.  The concrete
subclasses distinguish the failure domains a user can act on: bad input
arrays, malformed containers, unknown codecs, and configuration mistakes.
"""

from __future__ import annotations

__all__ = [
    "IsobarError",
    "InvalidInputError",
    "ContainerFormatError",
    "TruncatedContainerError",
    "ChecksumError",
    "CodecError",
    "UnknownCodecError",
    "ChunkTimeoutError",
    "ConfigurationError",
    "SelectorError",
]


class IsobarError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidInputError(IsobarError, ValueError):
    """The input array or buffer cannot be processed.

    Raised when an input is empty where data is required, has an
    unsupported dtype, or its byte length is not a multiple of the
    declared element width.
    """


class ContainerFormatError(IsobarError, ValueError):
    """A serialized ISOBAR container is malformed or truncated."""


class TruncatedContainerError(ContainerFormatError):
    """The container byte stream ends before a declared structure does.

    Raised from every truncation path — header record, chunk metadata
    record, chunk payload — so callers can distinguish "cut short"
    (e.g. an interrupted download or a crashed writer) from "malformed".
    Truncated containers are prime candidates for
    :func:`repro.core.salvage.salvage_decompress`.
    """


class ChecksumError(ContainerFormatError):
    """Stored checksum does not match the decoded payload.

    This indicates corruption of the container between compression and
    decompression; the payload must not be trusted.
    """


class CodecError(IsobarError, RuntimeError):
    """A solver (lossless compressor) failed to compress or decompress."""


class UnknownCodecError(CodecError, KeyError):
    """A codec name was requested that is not present in the registry."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = available
        detail = f"unknown codec {name!r}"
        if available:
            detail += f"; available codecs: {', '.join(sorted(available))}"
        super().__init__(detail)


class ChunkTimeoutError(CodecError):
    """A solver call exceeded the per-chunk deadline.

    Raised by :func:`repro.core.resilience.call_with_deadline` when a
    codec does not return within ``ResiliencePolicy.chunk_deadline_seconds``.
    The resilience layer treats it like any other solver failure
    (retry, then degrade); under a strict policy it propagates.
    """


class ConfigurationError(IsobarError, ValueError):
    """An ISOBAR configuration value is out of its legal range."""


class SelectorError(IsobarError, RuntimeError):
    """The EUPA-selector could not produce a decision.

    Raised, for example, when the candidate set is empty after applying
    user constraints, or when a sample cannot be drawn from the input.
    """


class SanitizerError(IsobarError, AssertionError):
    """The runtime concurrency sanitizer observed a violation.

    Subclasses :class:`AssertionError` because the sanitizer's checks
    are assertions about process state (no lock cycle, no leaked
    executor or segment, a scenario's roundtrip held) — a pytest
    fixture raising it fails the test the way a plain assert would.
    """
