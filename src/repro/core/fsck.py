"""Container filesystem check: ``isobar fsck [--repair]``.

An archival container can go wrong in ways strict readers only surface
as exceptions: a lost or bit-flipped index footer, a stale footer left
behind by an append, payload regions chewed up by storage faults, or a
``<path>.tmp.<pid>`` orphan abandoned by a :class:`StreamingWriter`
that died before ``close()``.  :func:`fsck` inspects all of it in one
pass and produces a structured :class:`FsckReport`; with
``repair=True`` it fixes what can be fixed safely:

* **Footer repair** — when the chunk chain is intact but the footer is
  lost, truncated, CRC-damaged or inconsistent with the chain, the
  footer is rebuilt from the chain (deterministic encoding makes the
  rebuild byte-identical to the lost original) and the file rewritten
  atomically.  Pre-footer containers are upgraded the same way.
* **Orphan finalization** — an abandoned StreamingWriter temp file
  whose destination never appeared is completed: the zero-count
  placeholder header is patched from a forward scan, a partial final
  chunk is dropped, the footer appended, and the file atomically
  renamed into place.

Payload damage (unreadable chunk regions) is *reported*, never
repaired — fsck restores indexing and bookkeeping, it does not invent
data.  Use :func:`repro.core.salvage.salvage_decompress` to recover
what survives, and ``isobar verify --deep`` for per-chunk CRC audits.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field

from repro.codecs.base import get_codec
from repro.core.exceptions import (
    InvalidInputError,
    IsobarError,
    UnknownCodecError,
)
from repro.core.metadata import (
    ChunkIndexRecord,
    ContainerFooter,
    ContainerHeader,
    locate_footer,
)

__all__ = ["FsckIssue", "FsckReport", "OrphanReport", "fsck"]


@dataclass(frozen=True)
class FsckIssue:
    """One problem found in the container, localised to a byte region.

    ``kind`` groups related problems: ``"chain"`` (unreadable payload
    region), ``"header"`` (header/chain disagreement), ``"footer"``
    (index footer damage) or ``"orphan"`` (abandoned temp file).
    ``repairable`` tells whether ``--repair`` can fix it.
    """

    kind: str
    start: int
    end: int
    detail: str
    repairable: bool


@dataclass(frozen=True)
class OrphanReport:
    """One ``<path>.tmp.<pid>`` file left behind by a crashed writer."""

    path: str
    n_chunks: int
    n_elements: int
    dropped_bytes: int  # partial final chunk discarded at finalization
    finalized: bool
    detail: str = ""


@dataclass
class FsckReport:
    """Everything :func:`fsck` learned (and did) about a container."""

    path: str
    exists: bool = True
    footer_status: str = "absent"
    footer_detail: str = ""
    n_chunks: int = 0
    n_elements: int = 0
    issues: list[FsckIssue] = field(default_factory=list)
    orphans: list[OrphanReport] = field(default_factory=list)
    actions: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No issues and no pending orphans.

        An ``absent`` footer on an otherwise healthy pre-footer
        container is advisory (the scan-indexed open keeps working),
        so it does not make the container unclean.
        """
        return not self.issues and not any(
            not orphan.finalized for orphan in self.orphans
        )

    @property
    def repaired(self) -> bool:
        """True when a repair pass changed anything."""
        return bool(self.actions)

    @property
    def unrepairable(self) -> list[FsckIssue]:
        """Issues ``--repair`` cannot fix (lost payload, bad orphans)."""
        return [issue for issue in self.issues if not issue.repairable]

    @property
    def repairable(self) -> bool:
        """True when everything wrong can be fixed by ``--repair``."""
        pending_ok = all(
            orphan.detail.endswith("(finalizable)")
            or orphan.detail.startswith("empty temp file")
            for orphan in self.orphans
            if not orphan.finalized
        )
        return not self.unrepairable and pending_ok

    def summary_lines(self) -> list[str]:
        """Human-readable report body."""
        lines = [f"fsck {self.path}"]
        if not self.exists:
            lines.append("container file does not exist")
        else:
            lines.append(
                f"chain: {self.n_chunks} chunks, {self.n_elements} elements"
            )
            footer_line = f"footer: {self.footer_status}"
            if self.footer_detail:
                footer_line += f" ({self.footer_detail})"
            lines.append(footer_line)
        for issue in self.issues:
            flag = "repairable" if issue.repairable else "UNREPAIRABLE"
            lines.append(
                f"[{issue.kind}] bytes {issue.start}..{issue.end}: "
                f"{issue.detail} ({flag})"
            )
        for orphan in self.orphans:
            state = (
                "finalized" if orphan.finalized
                else f"pending: {orphan.detail}"
            )
            lines.append(
                f"[orphan] {orphan.path}: {orphan.n_chunks} chunks, "
                f"{orphan.n_elements} elements ({state})"
            )
        for action in self.actions:
            lines.append(f"[repaired] {action}")
        if self.clean:
            verdict = "REPAIRED" if self.actions else "CLEAN"
        elif self.repairable:
            verdict = "NEEDS REPAIR (run with --repair)"
        else:
            verdict = "DAMAGED"
        lines.append(f"RESULT: {verdict}")
        return lines


def _walk_chain(data: bytes, *, to_eof: bool = False) -> tuple[
    ContainerHeader | None,
    list[ChunkIndexRecord],
    int,
    list[FsckIssue],
]:
    """Walk the chunk chain structurally via the salvage scanner.

    Returns ``(header, chain, chain_end, issues)`` where ``chain_end``
    is the offset just past the last readable chunk; a ``None`` header
    means the container is unreadable from byte zero.

    ``to_eof=True`` is the crashed-writer mode: the header's zero-count
    placeholder is ignored, chunks are discovered by forward scan, and
    the walk stops at the first unreadable region (everything after a
    tear is treated as the torn tail, so finalization never stitches
    damage into a published container).
    """
    from repro.core.salvage import scan_chunks

    issues: list[FsckIssue] = []
    try:
        header, offset = ContainerHeader.decode(data)
    except IsobarError as exc:
        issues.append(
            FsckIssue("header", 0, len(data), f"unreadable header: {exc}",
                      repairable=False)
        )
        return None, [], 0, issues
    try:
        codec = get_codec(header.codec_name)
    except UnknownCodecError as exc:
        issues.append(
            FsckIssue("header", 0, offset, str(exc), repairable=False)
        )
        return header, [], offset, issues

    chain: list[ChunkIndexRecord] = []
    chain_end = offset
    for event in scan_chunks(data, header, offset, codec, to_eof=to_eof):
        if event.kind == "gap":
            issues.append(
                FsckIssue(
                    "chain", event.start, event.end,
                    f"unreadable chunk region: {event.cause}",
                    repairable=False,
                )
            )
            if to_eof:
                break
            continue
        meta = event.meta
        chain.append(
            ChunkIndexRecord(
                payload_offset=event.payload_offset,
                compressed_size=meta.compressed_size,
                incompressible_size=meta.incompressible_size,
                n_elements=meta.n_elements,
            )
        )
        chain_end = event.end
    if to_eof:
        return header, chain, chain_end, issues
    if len(chain) != header.n_chunks:
        issues.append(
            FsckIssue(
                "header", 0, chain_end,
                f"chain walk found {len(chain)} chunks, header declares "
                f"{header.n_chunks}",
                repairable=False,
            )
        )
    elif sum(entry.n_elements for entry in chain) != header.n_elements:
        issues.append(
            FsckIssue(
                "header", 0, chain_end,
                f"chain covers "
                f"{sum(e.n_elements for e in chain)} elements, header "
                f"declares {header.n_elements}",
                repairable=False,
            )
        )
    return header, chain, chain_end, issues


def _atomic_rewrite(path: str, payload: bytes) -> None:
    """Replace ``path`` with ``payload`` via write-to-temp + rename."""
    temp_path = f"{path}.fsck.{os.getpid()}"
    with open(temp_path, "wb") as sink:
        sink.write(payload)
        sink.flush()
        os.fsync(sink.fileno())
    os.replace(temp_path, path)


def _check_footer(
    report: FsckReport,
    data: bytes,
    chain: list[ChunkIndexRecord],
    chain_end: int,
    chain_intact: bool,
) -> None:
    """Classify the footer against the walked chain (mirrors
    ``isobar verify``'s four-way status) and record its issue."""
    location = locate_footer(data)
    trailing = len(data) - chain_end
    if location.ok:
        footer = location.footer
        assert footer is not None
        if chain_intact and tuple(chain) == footer.entries:
            report.footer_status = "ok"
            if chain_intact and chain_end < location.start:
                report.issues.append(
                    FsckIssue(
                        "chain", chain_end, location.start,
                        f"{location.start - chain_end} stray bytes between "
                        "the last chunk and the footer",
                        repairable=False,
                    )
                )
            return
        report.footer_status = "inconsistent"
        report.footer_detail = (
            f"footer indexes {footer.n_chunks} chunks but the chain walk "
            f"found {len(chain)}"
            if footer.n_chunks != len(chain)
            else "footer entries disagree with the chunk chain"
        )
        report.issues.append(
            FsckIssue(
                "footer", location.start, len(data), report.footer_detail,
                repairable=chain_intact,
            )
        )
        return
    if location.status == "absent" and trailing == 0:
        report.footer_status = "absent"
        report.footer_detail = "pre-footer container (scan-indexed open)"
        return
    report.footer_status = "rebuildable"
    report.footer_detail = location.detail or (
        f"{trailing} trailing bytes after the last chunk are not a "
        "valid footer"
    )
    report.issues.append(
        FsckIssue(
            "footer", chain_end, len(data),
            f"footer {location.status}: {report.footer_detail}",
            repairable=chain_intact,
        )
    )


def _repair_footer(
    report: FsckReport,
    path: str,
    data: bytes,
    chain: list[ChunkIndexRecord],
    chain_end: int,
) -> None:
    """Rebuild the footer from the intact chain and rewrite the file.

    The footer encoding is deterministic, so when the chain is
    undamaged the rebuilt footer is byte-identical to what the writer
    originally appended.
    """
    footer = ContainerFooter(entries=tuple(chain)).encode()
    _atomic_rewrite(path, data[:chain_end] + footer)
    dropped = len(data) - chain_end
    action = f"rebuilt index footer ({len(footer)} bytes)"
    if dropped:
        action += f", dropped {dropped} damaged trailing bytes"
    report.actions.append(action)
    report.footer_status = "ok"
    report.footer_detail = "rebuilt from the chunk chain"
    report.issues = [i for i in report.issues if i.kind != "footer"]


def _examine_orphan(orphan_path: str, final_exists: bool) -> OrphanReport:
    """Inspect one abandoned temp file without modifying it."""
    with open(orphan_path, "rb") as source:
        data = source.read()
    if not data:
        return OrphanReport(
            orphan_path, 0, 0, 0, finalized=False,
            detail="empty temp file, nothing recoverable",
        )
    header, chain, chain_end, _ = _walk_chain(data, to_eof=True)
    if header is None:
        return OrphanReport(
            orphan_path, 0, 0, 0, finalized=False,
            detail="unreadable header, cannot finalize",
        )
    if final_exists:
        return OrphanReport(
            orphan_path,
            len(chain), sum(e.n_elements for e in chain),
            len(data) - chain_end, finalized=False,
            detail="destination already exists; not overwriting "
            "(remove the temp file manually if it is stale)",
        )
    return OrphanReport(
        orphan_path,
        len(chain), sum(e.n_elements for e in chain),
        len(data) - chain_end, finalized=False,
        detail="crashed writer temp file (finalizable)",
    )


def _finalize_orphan(
    report: FsckReport, orphan: OrphanReport, final_path: str
) -> OrphanReport:
    """Complete a crashed writer's temp file and publish it atomically.

    The placeholder header is re-encoded with the counts found by the
    forward scan (the writer's own ``close()`` patch, done late), the
    partial final chunk is dropped, and the index footer appended —
    producing exactly the container ``close()`` would have written for
    the chunks that made it to disk.
    """
    with open(orphan.path, "rb") as source:
        data = source.read()
    header, chain, chain_end, _ = _walk_chain(data, to_eof=True)
    assert header is not None
    # A crashed writer's header still declares zero chunks — the scan,
    # not the header, holds the true counts.
    from dataclasses import replace

    n_elements = sum(entry.n_elements for entry in chain)
    patched = replace(
        header,
        n_elements=n_elements,
        shape=(n_elements,),
        n_chunks=len(chain),
    )
    encoded = patched.encode()
    _, header_end = ContainerHeader.decode(data)
    if len(encoded) != header_end:
        return OrphanReport(
            orphan.path, orphan.n_chunks, orphan.n_elements,
            orphan.dropped_bytes, finalized=False,
            detail=f"patched header is {len(encoded)} bytes, placeholder "
            f"was {header_end}",
        )
    footer = ContainerFooter(entries=tuple(chain)).encode()
    _atomic_rewrite(final_path, encoded + data[header_end:chain_end] + footer)
    os.unlink(orphan.path)
    report.actions.append(
        f"finalized {orphan.path} -> {final_path} "
        f"({len(chain)} chunks, {orphan.dropped_bytes} partial bytes "
        "dropped)"
    )
    return OrphanReport(
        orphan.path, len(chain), n_elements,
        orphan.dropped_bytes, finalized=True,
    )


def fsck(path: str | os.PathLike, *, repair: bool = False) -> FsckReport:
    """Check (and optionally repair) a container file and its orphans.

    Validates header ↔ chunk-chain ↔ footer agreement, locates every
    unreadable payload region, and looks for ``<path>.tmp.<pid>``
    files abandoned by crashed streaming writers.  With
    ``repair=True``: rebuilds a lost/damaged/stale footer from an
    intact chain (byte-identical to the original), appends a footer to
    pre-footer containers, finalizes orphans whose destination is
    missing, and removes empty temp files.  Lost payload is reported,
    never fabricated.

    Never raises for content damage — everything lands in the report.
    ``path`` may name a container that does not exist yet when an
    orphan for it does (crash before first publish).
    """
    final_path = os.fspath(path)
    orphan_paths = sorted(glob.glob(glob.escape(final_path) + ".tmp.*"))
    report = FsckReport(path=final_path)
    exists = os.path.exists(final_path)
    if not exists and not orphan_paths:
        raise InvalidInputError(
            f"no container or writer temp file at {final_path}"
        )

    if exists:
        with open(final_path, "rb") as source:
            data = source.read()
        header, chain, chain_end, issues = _walk_chain(data)
        report.issues.extend(issues)
        report.n_chunks = len(chain)
        report.n_elements = sum(entry.n_elements for entry in chain)
        if header is not None:
            chain_intact = not issues
            _check_footer(report, data, chain, chain_end, chain_intact)
            needs_footer = report.footer_status in (
                "rebuildable", "inconsistent", "absent"
            )
            footer_repairable = chain_intact and (
                report.footer_status != "absent"
                or len(data) == chain_end  # clean pre-footer upgrade
            )
            if repair and needs_footer and footer_repairable:
                _repair_footer(report, final_path, data, chain, chain_end)
    else:
        report.exists = False

    for orphan_path in orphan_paths:
        orphan = _examine_orphan(orphan_path, final_exists=exists)
        if repair:
            if orphan.detail.startswith("empty temp file"):
                os.unlink(orphan.path)
                report.actions.append(
                    f"removed empty temp file {orphan.path}"
                )
                orphan = OrphanReport(
                    orphan.path, 0, 0, 0, finalized=True,
                    detail="empty temp file removed",
                )
            elif not exists and orphan.detail.endswith("(finalizable)"):
                orphan = _finalize_orphan(report, orphan, final_path)
                if orphan.finalized:
                    # Only the first orphan wins the rename; the report
                    # now describes the freshly published container.
                    exists = True
                    report.exists = True
                    report.n_chunks = orphan.n_chunks
                    report.n_elements = orphan.n_elements
                    report.footer_status = "ok"
                    report.footer_detail = "rebuilt at finalization"
        report.orphans.append(orphan)
    return report
