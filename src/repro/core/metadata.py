"""Container metadata: the ``M`` of Algorithm 1, in binary form.

Two records make up an ISOBAR container's bookkeeping (Figure 7):

* :class:`ContainerHeader` — the overall metadata written once by the
  EUPA-selector: element dtype and count, original shape, chosen solver
  and linearization, analyzer tolerance, chunking geometry.
* :class:`ChunkMetadata` — per-chunk metadata from the partitioner:
  element count, processing mode (partitioned vs passthrough), the
  compressibility mask, payload sizes and a CRC of the raw bytes.

Both serialize to compact little-endian structs with explicit magics
and validate on decode, raising :class:`ContainerFormatError` on any
inconsistency rather than fabricating data.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ContainerFormatError, TruncatedContainerError
from repro.core.preferences import Linearization, Preference

__all__ = [
    "FORMAT_VERSION",
    "ChunkMode",
    "ContainerHeader",
    "ChunkMetadata",
    "encode_mask",
    "decode_mask",
]

FORMAT_VERSION = 1

_HEADER_MAGIC = b"ISBR"
_CHUNK_MAGIC = b"CHNK"
_MAX_NAME = 255
_MAX_DIMS = 16

_LINEARIZATION_CODES = {Linearization.ROW: 0, Linearization.COLUMN: 1}
_LINEARIZATION_FROM_CODE = {v: k for k, v in _LINEARIZATION_CODES.items()}
_PREFERENCE_CODES = {Preference.RATIO: 0, Preference.SPEED: 1}
_PREFERENCE_FROM_CODE = {v: k for k, v in _PREFERENCE_CODES.items()}


class ChunkMode(enum.IntEnum):
    """How one chunk was processed (Algorithm 1's two branches, plus
    the resilience layer's degraded fallback encoding)."""

    #: Undetermined chunk: the whole chunk went through the solver.
    PASSTHROUGH = 0
    #: Improvable chunk: compressible columns solved, noise stored raw.
    PARTITIONED = 1
    #: Degraded chunk: the primary solver failed, so the raw chunk
    #: bytes were compressed with stdlib ``zlib`` instead (a standard
    #: zlib stream, independent of the codec registry).  The mask is
    #: all-False and the incompressible stream is empty.  See
    #: :mod:`repro.core.resilience`.
    FALLBACK_ZLIB = 2


def encode_mask(mask: np.ndarray) -> bytes:
    """Pack a boolean column mask into bytes, LSB-first."""
    arr = np.asarray(mask, dtype=bool)
    return np.packbits(arr.astype(np.uint8), bitorder="little").tobytes()


def decode_mask(data: bytes, width: int) -> np.ndarray:
    """Unpack ``width`` mask bits written by :func:`encode_mask`."""
    needed = (width + 7) // 8
    if len(data) < needed:
        raise TruncatedContainerError(
            f"mask needs {needed} bytes for width {width}, have {len(data)}"
        )
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8, count=needed), bitorder="little"
    )
    return bits[:width].astype(bool)


def _need(data: bytes, pos: int, n_bytes: int, what: str) -> None:
    """Bounds-check a decode cursor; truncation must never surface as a
    bare ``struct.error`` or ``IndexError``."""
    if len(data) < pos + n_bytes:
        raise TruncatedContainerError(
            f"container truncated inside {what}: need {n_bytes} bytes at "
            f"offset {pos}, have {max(len(data) - pos, 0)}"
        )


@dataclass(frozen=True)
class ContainerHeader:
    """Global container metadata written once per compressed stream."""

    dtype: np.dtype
    n_elements: int
    shape: tuple[int, ...]
    codec_name: str
    linearization: Linearization
    preference: Preference
    tau: float
    chunk_elements: int
    n_chunks: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        if len(self.codec_name.encode("utf-8")) > _MAX_NAME:
            raise ContainerFormatError(
                f"codec name too long ({len(self.codec_name)} chars)"
            )
        if len(self.shape) > _MAX_DIMS:
            raise ContainerFormatError(
                f"too many dimensions ({len(self.shape)} > {_MAX_DIMS})"
            )

    @property
    def element_width(self) -> int:
        """Element width ``w`` in bytes."""
        return self.dtype.itemsize

    def encode(self) -> bytes:
        """Serialize to the on-disk header record."""
        dtype_str = self.dtype.str.encode("ascii")
        codec = self.codec_name.encode("utf-8")
        parts = [
            _HEADER_MAGIC,
            struct.pack("<H", FORMAT_VERSION),
            struct.pack("<B", len(dtype_str)),
            dtype_str,
            struct.pack("<Q", self.n_elements),
            struct.pack("<B", len(self.shape)),
            struct.pack(f"<{len(self.shape)}q", *self.shape),
            struct.pack("<B", len(codec)),
            codec,
            struct.pack(
                "<BBdQI",
                _LINEARIZATION_CODES[self.linearization],
                _PREFERENCE_CODES[self.preference],
                self.tau,
                self.chunk_elements,
                self.n_chunks,
            ),
        ]
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["ContainerHeader", int]:
        """Parse a header record; returns ``(header, next_offset)``."""
        if len(data) < offset + 4:
            raise TruncatedContainerError(
                "container truncated inside header magic"
            )
        if data[offset:offset + 4] != _HEADER_MAGIC:
            raise ContainerFormatError("missing ISOBAR container magic")
        pos = offset + 4
        _need(data, pos, 2, "header version")
        (version,) = struct.unpack_from("<H", data, pos)
        pos += 2
        if version != FORMAT_VERSION:
            raise ContainerFormatError(
                f"unsupported container version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        _need(data, pos, 1, "header dtype length")
        dtype_len = data[pos]
        pos += 1
        _need(data, pos, dtype_len, "header dtype string")
        try:
            dtype = np.dtype(data[pos:pos + dtype_len].decode("ascii"))
        except (TypeError, UnicodeDecodeError) as exc:
            raise ContainerFormatError(f"invalid dtype in header: {exc}") from exc
        pos += dtype_len
        _need(data, pos, 9, "header element count")
        (n_elements,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        ndim = data[pos]
        pos += 1
        if ndim > _MAX_DIMS:
            raise ContainerFormatError(f"header declares {ndim} dimensions")
        _need(data, pos, 8 * ndim, "header shape")
        shape = struct.unpack_from(f"<{ndim}q", data, pos)
        pos += 8 * ndim
        _need(data, pos, 1, "header codec length")
        codec_len = data[pos]
        pos += 1
        _need(data, pos, codec_len, "header codec name")
        try:
            codec_name = data[pos:pos + codec_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ContainerFormatError(
                f"invalid codec name in header: {exc}"
            ) from exc
        pos += codec_len
        _need(data, pos, struct.calcsize("<BBdQI"), "header trailer")
        lin_code, pref_code, tau, chunk_elements, n_chunks = struct.unpack_from(
            "<BBdQI", data, pos
        )
        pos += struct.calcsize("<BBdQI")
        if lin_code not in _LINEARIZATION_FROM_CODE:
            raise ContainerFormatError(f"unknown linearization code {lin_code}")
        if pref_code not in _PREFERENCE_FROM_CODE:
            raise ContainerFormatError(f"unknown preference code {pref_code}")
        header = cls(
            dtype=dtype,
            n_elements=n_elements,
            shape=tuple(shape),
            codec_name=codec_name,
            linearization=_LINEARIZATION_FROM_CODE[lin_code],
            preference=_PREFERENCE_FROM_CODE[pref_code],
            tau=tau,
            chunk_elements=chunk_elements,
            n_chunks=n_chunks,
        )
        return header, pos


@dataclass(frozen=True)
class ChunkMetadata:
    """Per-chunk record: mode, mask, payload sizes, integrity check."""

    n_elements: int
    mode: ChunkMode
    mask: np.ndarray
    compressed_size: int
    incompressible_size: int
    raw_crc32: int

    def encode(self) -> bytes:
        """Serialize the chunk record (excluding the payloads)."""
        mask_bytes = encode_mask(self.mask)
        return b"".join(
            [
                _CHUNK_MAGIC,
                struct.pack(
                    "<QBIB",
                    self.n_elements,
                    int(self.mode),
                    self.raw_crc32 & 0xFFFFFFFF,
                    len(mask_bytes),
                ),
                mask_bytes,
                struct.pack("<QQ", self.compressed_size, self.incompressible_size),
            ]
        )

    @classmethod
    def decode(
        cls, data: bytes, offset: int, element_width: int
    ) -> tuple["ChunkMetadata", int]:
        """Parse a chunk record; returns ``(metadata, next_offset)``."""
        if len(data) < offset + 4:
            raise TruncatedContainerError(
                "container truncated inside chunk magic"
            )
        if data[offset:offset + 4] != _CHUNK_MAGIC:
            raise ContainerFormatError("missing chunk magic (corrupt container)")
        pos = offset + 4
        _need(data, pos, struct.calcsize("<QBIB"), "chunk record fields")
        n_elements, mode_code, crc, mask_len = struct.unpack_from("<QBIB", data, pos)
        pos += struct.calcsize("<QBIB")
        try:
            mode = ChunkMode(mode_code)
        except ValueError:
            raise ContainerFormatError(f"unknown chunk mode {mode_code}") from None
        _need(data, pos, mask_len, "chunk mask")
        mask = decode_mask(data[pos:pos + mask_len], element_width)
        pos += mask_len
        if len(data) < pos + 16:
            raise TruncatedContainerError("truncated chunk size fields")
        compressed_size, incompressible_size = struct.unpack_from("<QQ", data, pos)
        pos += 16
        meta = cls(
            n_elements=n_elements,
            mode=mode,
            mask=mask,
            compressed_size=compressed_size,
            incompressible_size=incompressible_size,
            raw_crc32=crc,
        )
        return meta, pos
