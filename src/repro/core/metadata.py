"""Container metadata: the ``M`` of Algorithm 1, in binary form.

Two records make up an ISOBAR container's bookkeeping (Figure 7):

* :class:`ContainerHeader` — the overall metadata written once by the
  EUPA-selector: element dtype and count, original shape, chosen solver
  and linearization, analyzer tolerance, chunking geometry.
* :class:`ChunkMetadata` — per-chunk metadata from the partitioner:
  element count, processing mode (partitioned vs passthrough), the
  compressibility mask, payload sizes and a CRC of the raw bytes.

Both serialize to compact little-endian structs with explicit magics
and validate on decode, raising :class:`ContainerFormatError` on any
inconsistency rather than fabricating data.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ContainerFormatError, TruncatedContainerError
from repro.core.preferences import Linearization, Preference

__all__ = [
    "FORMAT_VERSION",
    "FOOTER_VERSION",
    "ChunkMode",
    "ContainerHeader",
    "ChunkMetadata",
    "ChunkIndexRecord",
    "ContainerFooter",
    "FooterLocation",
    "locate_footer",
    "chunk_record_nbytes",
    "encode_mask",
    "decode_mask",
]

FORMAT_VERSION = 1
FOOTER_VERSION = 1

_HEADER_MAGIC = b"ISBR"
_CHUNK_MAGIC = b"CHNK"
_FOOTER_MAGIC = b"ISIX"
_FOOTER_END_MAGIC = b"XISI"
_MAX_NAME = 255
_MAX_DIMS = 16

#: Per-entry struct of the index footer:
#: ``(payload_offset, compressed_size, incompressible_size, n_elements)``.
_FOOTER_ENTRY_STRUCT = struct.Struct("<QQQQ")
#: Fixed head of the footer body: version + entry count.
_FOOTER_HEAD_STRUCT = struct.Struct("<HI")
#: Trailer after the body: CRC-32 of the body + total footer length.
_FOOTER_TAIL_STRUCT = struct.Struct("<II")
#: Bytes of trailer + end magic that follow the CRC-covered body.
_FOOTER_TAIL_NBYTES = _FOOTER_TAIL_STRUCT.size + 4

_LINEARIZATION_CODES = {Linearization.ROW: 0, Linearization.COLUMN: 1}
_LINEARIZATION_FROM_CODE = {v: k for k, v in _LINEARIZATION_CODES.items()}
_PREFERENCE_CODES = {Preference.RATIO: 0, Preference.SPEED: 1}
_PREFERENCE_FROM_CODE = {v: k for k, v in _PREFERENCE_CODES.items()}


class ChunkMode(enum.IntEnum):
    """How one chunk was processed (Algorithm 1's two branches, plus
    the resilience layer's degraded fallback encoding)."""

    #: Undetermined chunk: the whole chunk went through the solver.
    PASSTHROUGH = 0
    #: Improvable chunk: compressible columns solved, noise stored raw.
    PARTITIONED = 1
    #: Degraded chunk: the primary solver failed, so the raw chunk
    #: bytes were compressed with stdlib ``zlib`` instead (a standard
    #: zlib stream, independent of the codec registry).  The mask is
    #: all-False and the incompressible stream is empty.  See
    #: :mod:`repro.core.resilience`.
    FALLBACK_ZLIB = 2


def encode_mask(mask: np.ndarray) -> bytes:
    """Pack a boolean column mask into bytes, LSB-first."""
    arr = np.asarray(mask, dtype=bool)
    return np.packbits(arr.astype(np.uint8), bitorder="little").tobytes()


def decode_mask(data: bytes, width: int) -> np.ndarray:
    """Unpack ``width`` mask bits written by :func:`encode_mask`."""
    needed = (width + 7) // 8
    if len(data) < needed:
        raise TruncatedContainerError(
            f"mask needs {needed} bytes for width {width}, have {len(data)}"
        )
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8, count=needed), bitorder="little"
    )
    return bits[:width].astype(bool)


def _need(data: bytes, pos: int, n_bytes: int, what: str) -> None:
    """Bounds-check a decode cursor; truncation must never surface as a
    bare ``struct.error`` or ``IndexError``."""
    if len(data) < pos + n_bytes:
        raise TruncatedContainerError(
            f"container truncated inside {what}: need {n_bytes} bytes at "
            f"offset {pos}, have {max(len(data) - pos, 0)}"
        )


@dataclass(frozen=True)
class ContainerHeader:
    """Global container metadata written once per compressed stream."""

    dtype: np.dtype
    n_elements: int
    shape: tuple[int, ...]
    codec_name: str
    linearization: Linearization
    preference: Preference
    tau: float
    chunk_elements: int
    n_chunks: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "dtype", np.dtype(self.dtype))
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        if len(self.codec_name.encode("utf-8")) > _MAX_NAME:
            raise ContainerFormatError(
                f"codec name too long ({len(self.codec_name)} chars)"
            )
        if len(self.shape) > _MAX_DIMS:
            raise ContainerFormatError(
                f"too many dimensions ({len(self.shape)} > {_MAX_DIMS})"
            )

    @property
    def element_width(self) -> int:
        """Element width ``w`` in bytes."""
        return self.dtype.itemsize

    def encode(self) -> bytes:
        """Serialize to the on-disk header record."""
        dtype_str = self.dtype.str.encode("ascii")
        codec = self.codec_name.encode("utf-8")
        parts = [
            _HEADER_MAGIC,
            struct.pack("<H", FORMAT_VERSION),
            struct.pack("<B", len(dtype_str)),
            dtype_str,
            struct.pack("<Q", self.n_elements),
            struct.pack("<B", len(self.shape)),
            struct.pack(f"<{len(self.shape)}q", *self.shape),
            struct.pack("<B", len(codec)),
            codec,
            struct.pack(
                "<BBdQI",
                _LINEARIZATION_CODES[self.linearization],
                _PREFERENCE_CODES[self.preference],
                self.tau,
                self.chunk_elements,
                self.n_chunks,
            ),
        ]
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> tuple["ContainerHeader", int]:
        """Parse a header record; returns ``(header, next_offset)``."""
        if len(data) < offset + 4:
            raise TruncatedContainerError(
                "container truncated inside header magic"
            )
        if data[offset:offset + 4] != _HEADER_MAGIC:
            raise ContainerFormatError("missing ISOBAR container magic")
        pos = offset + 4
        _need(data, pos, 2, "header version")
        (version,) = struct.unpack_from("<H", data, pos)
        pos += 2
        if version != FORMAT_VERSION:
            raise ContainerFormatError(
                f"unsupported container version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        _need(data, pos, 1, "header dtype length")
        dtype_len = data[pos]
        pos += 1
        _need(data, pos, dtype_len, "header dtype string")
        try:
            dtype = np.dtype(data[pos:pos + dtype_len].decode("ascii"))
        except (TypeError, UnicodeDecodeError) as exc:
            raise ContainerFormatError(f"invalid dtype in header: {exc}") from exc
        pos += dtype_len
        _need(data, pos, 9, "header element count")
        (n_elements,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        ndim = data[pos]
        pos += 1
        if ndim > _MAX_DIMS:
            raise ContainerFormatError(f"header declares {ndim} dimensions")
        _need(data, pos, 8 * ndim, "header shape")
        shape = struct.unpack_from(f"<{ndim}q", data, pos)
        pos += 8 * ndim
        _need(data, pos, 1, "header codec length")
        codec_len = data[pos]
        pos += 1
        _need(data, pos, codec_len, "header codec name")
        try:
            codec_name = data[pos:pos + codec_len].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ContainerFormatError(
                f"invalid codec name in header: {exc}"
            ) from exc
        pos += codec_len
        _need(data, pos, struct.calcsize("<BBdQI"), "header trailer")
        lin_code, pref_code, tau, chunk_elements, n_chunks = struct.unpack_from(
            "<BBdQI", data, pos
        )
        pos += struct.calcsize("<BBdQI")
        if lin_code not in _LINEARIZATION_FROM_CODE:
            raise ContainerFormatError(f"unknown linearization code {lin_code}")
        if pref_code not in _PREFERENCE_FROM_CODE:
            raise ContainerFormatError(f"unknown preference code {pref_code}")
        header = cls(
            dtype=dtype,
            n_elements=n_elements,
            shape=tuple(shape),
            codec_name=codec_name,
            linearization=_LINEARIZATION_FROM_CODE[lin_code],
            preference=_PREFERENCE_FROM_CODE[pref_code],
            tau=tau,
            chunk_elements=chunk_elements,
            n_chunks=n_chunks,
        )
        return header, pos


@dataclass(frozen=True)
class ChunkMetadata:
    """Per-chunk record: mode, mask, payload sizes, integrity check."""

    n_elements: int
    mode: ChunkMode
    mask: np.ndarray
    compressed_size: int
    incompressible_size: int
    raw_crc32: int

    def encode(self) -> bytes:
        """Serialize the chunk record (excluding the payloads)."""
        mask_bytes = encode_mask(self.mask)
        return b"".join(
            [
                _CHUNK_MAGIC,
                struct.pack(
                    "<QBIB",
                    self.n_elements,
                    int(self.mode),
                    self.raw_crc32 & 0xFFFFFFFF,
                    len(mask_bytes),
                ),
                mask_bytes,
                struct.pack("<QQ", self.compressed_size, self.incompressible_size),
            ]
        )

    @classmethod
    def decode(
        cls, data: bytes, offset: int, element_width: int
    ) -> tuple["ChunkMetadata", int]:
        """Parse a chunk record; returns ``(metadata, next_offset)``."""
        if len(data) < offset + 4:
            raise TruncatedContainerError(
                "container truncated inside chunk magic"
            )
        if data[offset:offset + 4] != _CHUNK_MAGIC:
            raise ContainerFormatError("missing chunk magic (corrupt container)")
        pos = offset + 4
        _need(data, pos, struct.calcsize("<QBIB"), "chunk record fields")
        n_elements, mode_code, crc, mask_len = struct.unpack_from("<QBIB", data, pos)
        pos += struct.calcsize("<QBIB")
        try:
            mode = ChunkMode(mode_code)
        except ValueError:
            raise ContainerFormatError(f"unknown chunk mode {mode_code}") from None
        _need(data, pos, mask_len, "chunk mask")
        mask = decode_mask(data[pos:pos + mask_len], element_width)
        pos += mask_len
        if len(data) < pos + 16:
            raise TruncatedContainerError("truncated chunk size fields")
        compressed_size, incompressible_size = struct.unpack_from("<QQ", data, pos)
        pos += 16
        meta = cls(
            n_elements=n_elements,
            mode=mode,
            mask=mask,
            compressed_size=compressed_size,
            incompressible_size=incompressible_size,
            raw_crc32=crc,
        )
        return meta, pos


def chunk_record_nbytes(element_width: int) -> int:
    """Size in bytes of one chunk record for the given element width.

    The record layout is fixed given the header (`magic + <QBIB> +
    packed mask + <QQ>`), which is what lets a footer entry store only
    the *payload* offset: the record always starts exactly this many
    bytes earlier.
    """
    mask_len = (element_width + 7) // 8
    return 4 + struct.calcsize("<QBIB") + mask_len + 16


@dataclass(frozen=True)
class ChunkIndexRecord:
    """One index-footer entry: where a chunk's payload lives.

    ``payload_offset`` is the absolute container offset of the first
    payload byte (i.e. just *after* the chunk record);
    ``compressed_size`` / ``incompressible_size`` mirror the record's
    own size fields, and ``n_elements`` lets a reader build element
    spans without touching the chunk chain at all.
    """

    payload_offset: int
    compressed_size: int
    incompressible_size: int
    n_elements: int

    @property
    def payload_end(self) -> int:
        """Absolute offset one past the chunk's last payload byte."""
        return self.payload_offset + self.compressed_size + self.incompressible_size

    def record_offset(self, element_width: int) -> int:
        """Absolute offset of the chunk's metadata record."""
        return self.payload_offset - chunk_record_nbytes(element_width)


@dataclass(frozen=True)
class ContainerFooter:
    """Versioned, CRC-guarded chunk-index footer (bgzip-style).

    Appended after the last chunk so pre-footer readers — which stop
    after ``header.n_chunks`` records — never see it.  Layout::

        body    := "ISIX" u16:version u32:n_entries entry*
        entry   := u64:payload_offset u64:compressed_size
                   u64:incompressible_size u64:n_elements
        trailer := u32:crc32(body) u32:footer_len "XISI"

    ``footer_len`` is the total footer size (body + trailer), so a
    reader seeks ``footer_len`` back from EOF after validating the end
    magic.  Encoding is fully deterministic: rebuilding a footer from
    an undamaged chunk chain reproduces it byte-identically.
    """

    entries: tuple[ChunkIndexRecord, ...]
    version: int = FOOTER_VERSION

    @property
    def n_chunks(self) -> int:
        """Number of chunk entries in the index."""
        return len(self.entries)

    @property
    def n_elements(self) -> int:
        """Total elements covered by the indexed chunks."""
        return sum(entry.n_elements for entry in self.entries)

    def encode(self) -> bytes:
        """Serialize to the on-disk footer (deterministic)."""
        parts = [
            _FOOTER_MAGIC,
            _FOOTER_HEAD_STRUCT.pack(self.version, len(self.entries)),
        ]
        for entry in self.entries:
            parts.append(
                _FOOTER_ENTRY_STRUCT.pack(
                    entry.payload_offset,
                    entry.compressed_size,
                    entry.incompressible_size,
                    entry.n_elements,
                )
            )
        body = b"".join(parts)
        footer_len = len(body) + _FOOTER_TAIL_NBYTES
        return (
            body
            + _FOOTER_TAIL_STRUCT.pack(zlib.crc32(body) & 0xFFFFFFFF, footer_len)
            + _FOOTER_END_MAGIC
        )

    @property
    def encoded_nbytes(self) -> int:
        """Size of :meth:`encode`'s output without building it."""
        return (
            4
            + _FOOTER_HEAD_STRUCT.size
            + len(self.entries) * _FOOTER_ENTRY_STRUCT.size
            + _FOOTER_TAIL_NBYTES
        )


@dataclass(frozen=True)
class FooterLocation:
    """Outcome of :func:`locate_footer`.

    ``status`` is one of:

    * ``"ok"`` — ``footer`` holds the validated index, starting at
      absolute offset ``start``;
    * ``"absent"`` — no footer trailer at EOF (pre-footer container,
      or the footer was truncated away along with its end magic);
    * ``"truncated"`` — the trailer is present but the declared
      ``footer_len`` reaches before the start of the data;
    * ``"malformed"`` — the trailer is present but the body fails
      structural validation (bad leading magic, unknown version,
      length/entry-count disagreement);
    * ``"crc_mismatch"`` — structure parses but the body CRC fails.

    Anything other than ``"ok"`` leaves ``footer`` as ``None`` and
    readers fall back to the structural chunk-chain scan.
    """

    status: str
    footer: "ContainerFooter | None" = None
    start: int = -1
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True when a validated footer was found."""
        return self.status == "ok"


def locate_footer(data: bytes) -> FooterLocation:
    """Discover and validate an index footer by seeking from EOF.

    Accepts the container's trailing bytes (at minimum the last
    ``footer_len`` bytes; typically callers pass the whole stream or a
    tail slice ending at EOF).  Never raises on damage — every failure
    mode maps to a :class:`FooterLocation` status so callers can fall
    back to the structural scan.
    """
    min_len = 4 + _FOOTER_HEAD_STRUCT.size + _FOOTER_TAIL_NBYTES
    if len(data) < min_len:
        return FooterLocation("absent", detail="stream shorter than any footer")
    if data[-4:] != _FOOTER_END_MAGIC:
        return FooterLocation("absent", detail="no footer end magic at EOF")
    crc_stored, footer_len = _FOOTER_TAIL_STRUCT.unpack_from(
        data, len(data) - _FOOTER_TAIL_NBYTES
    )
    if footer_len < min_len or footer_len > len(data):
        return FooterLocation(
            "truncated",
            detail=(
                f"footer declares {footer_len} bytes but only "
                f"{len(data)} are available"
            ),
        )
    start = len(data) - footer_len
    body = data[start:len(data) - _FOOTER_TAIL_NBYTES]
    if body[:4] != _FOOTER_MAGIC:
        return FooterLocation(
            "malformed", start=start, detail="footer leading magic missing"
        )
    version, n_entries = _FOOTER_HEAD_STRUCT.unpack_from(body, 4)
    if version != FOOTER_VERSION:
        return FooterLocation(
            "malformed", start=start,
            detail=f"unsupported footer version {version}",
        )
    expected_body = 4 + _FOOTER_HEAD_STRUCT.size + n_entries * _FOOTER_ENTRY_STRUCT.size
    if expected_body != len(body):
        return FooterLocation(
            "malformed", start=start,
            detail=(
                f"footer declares {n_entries} entries "
                f"({expected_body} body bytes) but spans {len(body)}"
            ),
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc_stored:
        return FooterLocation(
            "crc_mismatch", start=start, detail="footer body CRC-32 mismatch"
        )
    pos = 4 + _FOOTER_HEAD_STRUCT.size
    entries = []
    for _ in range(n_entries):
        payload_offset, compressed, incompressible, n_elements = (
            _FOOTER_ENTRY_STRUCT.unpack_from(body, pos)
        )
        pos += _FOOTER_ENTRY_STRUCT.size
        entries.append(
            ChunkIndexRecord(
                payload_offset=payload_offset,
                compressed_size=compressed,
                incompressible_size=incompressible,
                n_elements=n_elements,
            )
        )
    footer = ContainerFooter(entries=tuple(entries), version=version)
    return FooterLocation("ok", footer=footer, start=start)
