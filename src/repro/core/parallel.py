"""Thread-parallel chunk compression (a natural in-situ extension).

Chunks are compressed independently in the ISOBAR workflow (Section
II-D), so the work maps cleanly onto a thread pool; the hot paths —
numpy byte-column histograms and the zlib/bz2 C solvers — release the
GIL, so threads yield genuine parallel speed-up without the pickling
cost of processes.

:class:`ParallelIsobarCompressor` produces byte-for-byte the same
container format as :class:`~repro.core.pipeline.IsobarCompressor`
(chunks are assembled in order), so streams are interchangeable between
the serial and parallel implementations in both directions.

With ``collect_metrics=True`` the workers record into one shared,
thread-safe tracer and registry, so per-stage seconds and chunk
counters equal the serial pipeline's totals for the same input (CPU
time is summed across workers; only the wall clock shrinks).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.codecs.base import Codec, get_codec
from repro.core.analyzer import AnalysisResult
from repro.core.chunking import plan_chunks
from repro.core.exceptions import (
    ConfigurationError,
    ContainerFormatError,
    TruncatedContainerError,
)
from repro.core.metadata import ChunkMetadata, ContainerHeader
from repro.core.pipeline import (
    ChunkReport,
    CompressionResult,
    IsobarCompressor,
    _degradation_from_reports,
    decode_chunk_payload,
)
from repro.core.preferences import (
    IsobarConfig,
    normalize_errors,
    salvage_policy_for,
)
from repro.core.selector import SelectorDecision
from repro.observability.registry import MetricsRegistry
from repro.observability.trace import AnyTracer, Tracer

__all__ = ["ParallelIsobarCompressor"]


class ParallelIsobarCompressor(IsobarCompressor):
    """ISOBAR pipeline with thread-parallel per-chunk compression.

    Parameters
    ----------
    config:
        Workflow configuration (as for the serial compressor).
    n_workers:
        Thread-pool size; 1 degenerates to serial execution.
    collect_metrics / metrics:
        As for the serial compressor; workers aggregate into one
        thread-safe registry, so counters match a serial run's.
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        n_workers: int = 4,
        *,
        collect_metrics: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be positive, got {n_workers}"
            )
        super().__init__(
            config, collect_metrics=collect_metrics, metrics=metrics
        )
        self._n_workers = n_workers

    @property
    def n_workers(self) -> int:
        """Configured thread-pool size."""
        return self._n_workers

    def compress_detailed(self, values: np.ndarray) -> CompressionResult:
        """Compress with per-chunk parallelism; same container output."""
        import time

        from repro.analysis.bytefreq import element_width

        wall_start = time.perf_counter()
        tracer = self._tracer()
        arr = np.asarray(values)
        element_width(arr.dtype)
        flat = arr.reshape(-1)

        select_start = time.perf_counter()
        decision, codec, lead_analysis, lead_seconds = self._decide(
            flat, tracer
        )
        select_seconds = time.perf_counter() - select_start - lead_seconds
        tracer.add("select", select_seconds)

        spans = plan_chunks(flat.size, self._config.chunk_elements)
        chunks = [flat[span.start:span.stop] for span in spans]

        if self._n_workers == 1 or len(chunks) <= 1:
            outcomes = [
                self._compress_chunk(
                    i, chunk, decision, codec, tracer,
                    analysis=lead_analysis if i == 0 else None,
                )
                for i, chunk in enumerate(chunks)
            ]
        else:
            outcomes = self._compress_chunks_parallel(
                chunks, decision, codec, tracer, lead_analysis
            )

        merge_start = time.perf_counter()
        blobs = [blob for blob, _ in outcomes]
        reports = tuple(report for _, report in outcomes)
        header = ContainerHeader(
            dtype=arr.dtype,
            n_elements=flat.size,
            shape=arr.shape,
            codec_name=decision.codec_name,
            linearization=decision.linearization,
            preference=self._config.preference,
            tau=self._config.tau,
            chunk_elements=self._config.chunk_elements,
            n_chunks=len(blobs),
        )
        payload = header.encode() + b"".join(blobs)
        tracer.add(
            "merge", time.perf_counter() - merge_start,
            bytes_out=len(payload),
        )
        result = CompressionResult(
            payload=payload,
            header=header,
            decision=decision,
            chunks=reports,
            analyze_seconds=lead_seconds
            + sum(r.analyze_seconds for r in reports),
            compress_seconds=sum(r.compress_seconds for r in reports),
            select_seconds=select_seconds,
            degradation=_degradation_from_reports(reports),
        )
        if self._metrics.enabled:
            self._finish_compress_run(
                result, tracer, time.perf_counter() - wall_start
            )
        return result

    def _compress_chunks_parallel(
        self,
        chunks: list[np.ndarray],
        decision: SelectorDecision,
        codec: Codec,
        tracer: AnyTracer,
        lead_analysis: AnalysisResult | None = None,
    ) -> list[tuple[bytes, ChunkReport]]:
        """Fan chunk compression out over futures, in chunk order.

        One future per chunk (not ``pool.map``): a failing chunk must
        not poison the pool.  Under a resilience policy a worker that
        raised is retried serially — the resilient encoder degrades
        the chunk instead of failing, so one poisoned chunk costs one
        serial retry, never the run.  Without a policy (or when the
        serial retry fails too) outstanding futures are cancelled via
        ``shutdown(cancel_futures=True)`` and the original exception
        propagates — already-running workers finish their chunk, but
        no queued work starts.
        """
        policy = self._config.resilience
        outcomes: list[tuple[bytes, ChunkReport]] = []
        with ThreadPoolExecutor(max_workers=self._n_workers) as pool:
            futures = [
                pool.submit(
                    self._compress_chunk, i, chunk, decision, codec, tracer,
                    analysis=lead_analysis if i == 0 else None,
                )
                for i, chunk in enumerate(chunks)
            ]
            for i, future in enumerate(futures):
                try:
                    outcomes.append(future.result())
                except Exception:
                    if policy is None or policy.strict:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                    try:
                        outcomes.append(
                            self._compress_chunk(
                                i, chunks[i], decision, codec, tracer,
                                analysis=lead_analysis if i == 0 else None,
                            )
                        )
                    except Exception:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
        return outcomes

    def decompress(self, data: bytes, *, errors: str = "raise") -> np.ndarray:
        """Parallel decompression of the standard container format.

        Chunk records are walked sequentially (offsets depend on stored
        sizes), then payload decoding fans out across the pool, each
        worker landing its chunk in a disjoint slice of one
        preallocated result.  With ``errors="salvage-skip"`` or
        ``"salvage-zero"`` the lenient salvage decoder takes over
        (serially — recovery is not a hot path).
        """
        import time

        errors = normalize_errors(errors)
        if errors != "raise":
            from repro.core.salvage import salvage_decompress

            return salvage_decompress(
                data, policy=salvage_policy_for(errors),
                metrics=self._metrics,
            ).values

        wall_start = time.perf_counter()
        tracer = self._tracer()
        header, offset = ContainerHeader.decode(data)
        codec = get_codec(header.codec_name)
        width = header.element_width

        flat = np.empty(header.n_elements, dtype=header.dtype)
        cursor = 0
        chunk_slices = []
        for index in range(header.n_chunks):
            record_offset = offset
            meta, offset = ChunkMetadata.decode(data, offset, width)
            end_comp = offset + meta.compressed_size
            end_incomp = end_comp + meta.incompressible_size
            if end_incomp > len(data):
                raise TruncatedContainerError(
                    f"chunk {index} at byte offset {record_offset}: "
                    "container truncated inside chunk payload"
                )
            end_cursor = cursor + meta.n_elements
            target = (
                flat[cursor:end_cursor] if end_cursor <= flat.size else None
            )
            chunk_slices.append((index, record_offset, meta,
                                 data[offset:end_comp],
                                 data[end_comp:end_incomp],
                                 target))
            offset = end_incomp
            cursor = end_cursor

        decoder = _ChunkDecoder(
            header, codec, tracer if self._metrics.enabled else None
        )
        if self._n_workers == 1 or len(chunk_slices) <= 1:
            for item in chunk_slices:
                decoder(item)
        else:
            # Futures instead of pool.map: a damaged chunk surfaces its
            # original exception immediately and cancels queued decode
            # work instead of letting the pool run to completion.
            with ThreadPoolExecutor(max_workers=self._n_workers) as pool:
                futures = [
                    pool.submit(decoder, item) for item in chunk_slices
                ]
                for future in futures:
                    try:
                        future.result()
                    except Exception:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
        self._instruments.chunks_decoded.inc(header.n_chunks)

        merge_start = time.perf_counter()
        if cursor != header.n_elements:
            raise ContainerFormatError(
                f"container reassembled {cursor} elements, header "
                f"declares {header.n_elements}"
            )
        tracer.add(
            "merge", time.perf_counter() - merge_start, bytes_out=flat.nbytes
        )
        if self._metrics.enabled:
            self._finish_decompress_run(
                header, len(data), flat.nbytes, tracer,
                time.perf_counter() - wall_start,
            )
        n_shape = 1
        for dim in header.shape:
            n_shape *= dim
        if header.shape and n_shape == header.n_elements:
            return flat.reshape(header.shape)
        return flat


class _ChunkDecoder:
    """Callable decoding one indexed chunk record from the walk.

    Each record carries its own disjoint output slice of the shared
    preallocated result, so workers never contend for memory (``None``
    for chunks overflowing the declared total — those decode to scratch
    and the caller reports the element-count mismatch).
    """

    def __init__(
        self,
        header: ContainerHeader,
        codec: Codec,
        tracer: Tracer | None = None,
    ):
        self._header = header
        self._codec = codec
        self._tracer = tracer

    def __call__(
        self,
        item: tuple[
            int, int, ChunkMetadata, bytes, bytes, np.ndarray | None
        ],
    ) -> np.ndarray:
        import time

        index, record_offset, meta, compressed, incompressible, target = item
        start = 0.0 if self._tracer is None else time.perf_counter()
        chunk = decode_chunk_payload(
            self._header,
            self._codec,
            meta,
            compressed,
            incompressible,
            chunk_index=index,
            byte_offset=record_offset,
            out=target,
        )
        if self._tracer is not None:
            self._tracer.add(
                "decode", time.perf_counter() - start,
                bytes_in=len(compressed) + len(incompressible),
            )
        return chunk
