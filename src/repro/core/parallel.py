"""Pipelined parallel chunk compression (a natural in-situ extension).

Chunks are compressed independently in the ISOBAR workflow (Section
II-D), so the work maps onto the pipelined block-worker engine
(:mod:`repro.core.pipeline_engine`): a bounded feed queue of chunk
jobs, ``n_workers`` workers running the codec calls, sequence-numbered
ordered reassembly, and a ``max_inflight`` backpressure bound so huge
streams never buffer more than a fixed number of blocks.

Worker *threads* scale the hot paths whose C cores release the GIL —
numpy byte-column histograms and the zlib/bz2/lzma/isal solvers.  For
pure-python solvers (``codec.releases_gil`` is false) the engine
routes the codec calls to a shared process pool with shared-memory
payload transfer instead (:mod:`repro.codecs.procpool`), falling back
to in-thread execution for ad-hoc codecs that a fresh process could
not resolve (chaos wrappers, test doubles) — so fault-injection
behaves identically in serial and parallel modes.

:class:`ParallelIsobarCompressor` produces byte-for-byte the same
container format as :class:`~repro.core.pipeline.IsobarCompressor`
(chunks are reassembled in submission order regardless of worker
completion order), so streams are interchangeable between the serial
and parallel implementations in both directions.

With ``collect_metrics=True`` the workers record into one shared,
thread-safe tracer and registry, so per-stage seconds and chunk
counters equal the serial pipeline's totals for the same input (CPU
time is summed across workers; only the wall clock shrinks).  The
engine additionally exports queue-depth / in-flight gauges and
per-worker wait-time counters (see ``docs/observability.md``).
"""

from __future__ import annotations

import numpy as np

from repro.codecs.base import Codec, get_codec
from repro.codecs.procpool import worker_codec_for
from repro.core.analyzer import AnalysisResult
from repro.core.chunking import plan_chunks
from repro.core.exceptions import (
    ConfigurationError,
    ContainerFormatError,
    TruncatedContainerError,
)
from repro.core.metadata import ChunkMetadata, ContainerHeader
from repro.core.pipeline import (
    ChunkReport,
    CompressionResult,
    IsobarCompressor,
    _degradation_from_reports,
    decode_chunk_payload,
    index_footer_from_reports,
)
from repro.core.pipeline_engine import PipelinedBlockRunner, RunnerStats
from repro.core.preferences import (
    IsobarConfig,
    normalize_errors,
    salvage_policy_for,
)
from repro.core.selector import SelectorDecision
from repro.observability.registry import MetricsRegistry
from repro.observability.trace import AnyTracer, Tracer

__all__ = ["ParallelIsobarCompressor"]

#: One decoded chunk record from the sequential metadata walk:
#: (index, record_offset, metadata, compressed, incompressible, target).
_ChunkItem = tuple[int, int, ChunkMetadata, bytes, bytes, "np.ndarray | None"]


class ParallelIsobarCompressor(IsobarCompressor):
    """ISOBAR pipeline with pipelined per-chunk parallelism.

    Parameters
    ----------
    config:
        Workflow configuration (as for the serial compressor).
    n_workers:
        Pipeline worker count; 1 degenerates to serial execution.
    max_inflight:
        Backpressure bound: maximum chunk blocks fed to workers but not
        yet reassembled.  Defaults to ``max(2 * n_workers, 4)``.  Peak
        buffered memory is roughly ``max_inflight`` chunk payloads on
        top of the input/output arrays.
    collect_metrics / metrics:
        As for the serial compressor; workers aggregate into one
        thread-safe registry, so counters match a serial run's.
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        n_workers: int = 4,
        *,
        max_inflight: int | None = None,
        collect_metrics: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be positive, got {n_workers}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        super().__init__(
            config, collect_metrics=collect_metrics, metrics=metrics
        )
        self._n_workers = n_workers
        self._max_inflight = max_inflight
        #: Engine accounting from the most recent parallel run (None
        #: until a multi-chunk parallel path has executed); tests use
        #: ``peak_inflight`` to assert the backpressure bound held.
        self.last_runner_stats: RunnerStats | None = None

    @property
    def n_workers(self) -> int:
        """Configured pipeline worker count."""
        return self._n_workers

    @property
    def max_inflight(self) -> int | None:
        """Configured backpressure bound (None = engine default)."""
        return self._max_inflight

    def _runner(self, name: str) -> PipelinedBlockRunner:
        runner: PipelinedBlockRunner = PipelinedBlockRunner(
            self._n_workers,
            max_inflight=self._max_inflight,
            name=name,
            instruments=(
                self._instruments if self._metrics.enabled else None
            ),
        )
        self.last_runner_stats = runner.stats
        return runner

    def compress_detailed(self, values: np.ndarray) -> CompressionResult:
        """Compress with per-chunk parallelism; same container output."""
        import time

        from repro.analysis.bytefreq import element_width

        wall_start = time.perf_counter()
        tracer = self._tracer()
        arr = np.asarray(values)
        element_width(arr.dtype)
        flat = arr.reshape(-1)

        select_start = time.perf_counter()
        decision, codec, lead_analysis, lead_seconds = self._decide(
            flat, tracer
        )
        select_seconds = time.perf_counter() - select_start - lead_seconds
        tracer.add("select", select_seconds)

        spans = plan_chunks(flat.size, self._config.chunk_elements)
        chunks = [flat[span.start:span.stop] for span in spans]

        if self._n_workers == 1 or len(chunks) <= 1:
            outcomes = [
                self._compress_chunk(
                    i, chunk, decision, codec, tracer,
                    analysis=lead_analysis if i == 0 else None,
                )
                for i, chunk in enumerate(chunks)
            ]
        else:
            outcomes = self._compress_chunks_parallel(
                chunks, decision, codec, tracer, lead_analysis
            )

        merge_start = time.perf_counter()
        blobs = [blob for blob, _ in outcomes]
        reports = tuple(report for _, report in outcomes)
        header = ContainerHeader(
            dtype=arr.dtype,
            n_elements=flat.size,
            shape=arr.shape,
            codec_name=decision.codec_name,
            linearization=decision.linearization,
            preference=self._config.preference,
            tau=self._config.tau,
            chunk_elements=self._config.chunk_elements,
            n_chunks=len(blobs),
        )
        header_bytes = header.encode()
        footer_bytes = index_footer_from_reports(
            len(header_bytes), list(reports)
        ).encode()
        payload = header_bytes + b"".join(blobs) + footer_bytes
        tracer.add(
            "merge", time.perf_counter() - merge_start,
            bytes_out=len(payload),
        )
        result = CompressionResult(
            payload=payload,
            header=header,
            decision=decision,
            chunks=reports,
            analyze_seconds=lead_seconds
            + sum(r.analyze_seconds for r in reports),
            compress_seconds=sum(r.compress_seconds for r in reports),
            select_seconds=select_seconds,
            degradation=_degradation_from_reports(reports),
            footer_bytes=len(footer_bytes),
        )
        if self._metrics.enabled:
            self._finish_compress_run(
                result, tracer, time.perf_counter() - wall_start
            )
        return result

    def _compress_chunks_parallel(
        self,
        chunks: list[np.ndarray],
        decision: SelectorDecision,
        codec: Codec,
        tracer: AnyTracer,
        lead_analysis: AnalysisResult | None = None,
    ) -> list[tuple[bytes, ChunkReport]]:
        """Run chunk compression through the pipelined engine, in order.

        Workers call the codec through :func:`worker_codec_for` — the
        codec itself when its C core releases the GIL, a process-pool
        proxy for registered pure-python codecs, unchanged otherwise.
        A failing chunk never poisons the engine: under a resilience
        policy the chunk is retried serially with the *original* codec
        (the resilient encoder degrades it instead of failing), so one
        poisoned chunk costs one serial retry, never the run.  Without
        a policy (or when the serial retry fails too) the runner is
        cancelled — running workers finish their block, queued blocks
        never start (``cancel_futures`` semantics) — and the original
        exception propagates.
        """
        policy = self._config.resilience
        worker_codec = worker_codec_for(codec, self._n_workers)
        runner = self._runner("isobar-compress")

        def _job(seq: int, chunk: np.ndarray) -> tuple[bytes, ChunkReport]:
            return self._compress_chunk(
                seq, chunk, decision, worker_codec, tracer,
                analysis=lead_analysis if seq == 0 else None,
            )

        outcomes: list[tuple[bytes, ChunkReport]] = []
        for block in runner.run(chunks, _job):
            if block.error is None:
                assert block.value is not None
                outcomes.append(block.value)
                continue
            if (
                policy is None
                or policy.strict
                or not isinstance(block.error, Exception)
            ):
                runner.cancel()
                raise block.error
            try:
                outcomes.append(
                    self._compress_chunk(
                        block.seq, chunks[block.seq], decision, codec,
                        tracer,
                        analysis=lead_analysis if block.seq == 0 else None,
                    )
                )
            except Exception:
                runner.cancel()
                raise
        return outcomes

    def decompress(self, data: bytes, *, errors: str = "raise") -> np.ndarray:
        """Parallel decompression of the standard container format.

        Chunk records are walked sequentially (offsets depend on stored
        sizes), then payload decoding fans out across the pool, each
        worker landing its chunk in a disjoint slice of one
        preallocated result.  With ``errors="salvage-skip"`` or
        ``"salvage-zero"`` the lenient salvage decoder takes over
        (serially — recovery is not a hot path).
        """
        import time

        errors = normalize_errors(errors)
        if errors != "raise":
            from repro.core.salvage import salvage_decompress

            return salvage_decompress(
                data, policy=salvage_policy_for(errors),
                metrics=self._metrics,
            ).values

        wall_start = time.perf_counter()
        tracer = self._tracer()
        header, offset = ContainerHeader.decode(data)
        codec = get_codec(header.codec_name)
        width = header.element_width

        flat = np.empty(header.n_elements, dtype=header.dtype)
        cursor = 0
        chunk_slices = []
        for index in range(header.n_chunks):
            record_offset = offset
            meta, offset = ChunkMetadata.decode(data, offset, width)
            end_comp = offset + meta.compressed_size
            end_incomp = end_comp + meta.incompressible_size
            if end_incomp > len(data):
                raise TruncatedContainerError(
                    f"chunk {index} at byte offset {record_offset}: "
                    "container truncated inside chunk payload"
                )
            end_cursor = cursor + meta.n_elements
            target = (
                flat[cursor:end_cursor] if end_cursor <= flat.size else None
            )
            chunk_slices.append((index, record_offset, meta,
                                 data[offset:end_comp],
                                 data[end_comp:end_incomp],
                                 target))
            offset = end_incomp
            cursor = end_cursor

        decoder = _ChunkDecoder(
            header,
            worker_codec_for(codec, self._n_workers),
            tracer if self._metrics.enabled else None,
        )
        if self._n_workers == 1 or len(chunk_slices) <= 1:
            for item in chunk_slices:
                decoder(item)
        else:
            # Workers decode straight into disjoint slices of the
            # preallocated result, so ordered reassembly is free; the
            # ordered consumption loop exists to surface a damaged
            # chunk's original exception immediately and cancel queued
            # decode work instead of letting the engine run on.
            runner = self._runner("isobar-decompress")

            def _decode(seq: int, item: _ChunkItem) -> np.ndarray:
                return decoder(item)

            for block in runner.run(chunk_slices, _decode):
                if block.error is not None:
                    runner.cancel()
                    raise block.error
        self._instruments.chunks_decoded.inc(header.n_chunks)

        merge_start = time.perf_counter()
        if cursor != header.n_elements:
            raise ContainerFormatError(
                f"container reassembled {cursor} elements, header "
                f"declares {header.n_elements}"
            )
        tracer.add(
            "merge", time.perf_counter() - merge_start, bytes_out=flat.nbytes
        )
        if self._metrics.enabled:
            self._finish_decompress_run(
                header, len(data), flat.nbytes, tracer,
                time.perf_counter() - wall_start,
            )
        n_shape = 1
        for dim in header.shape:
            n_shape *= dim
        if header.shape and n_shape == header.n_elements:
            return flat.reshape(header.shape)
        return flat


class _ChunkDecoder:
    """Callable decoding one indexed chunk record from the walk.

    Each record carries its own disjoint output slice of the shared
    preallocated result, so workers never contend for memory (``None``
    for chunks overflowing the declared total — those decode to scratch
    and the caller reports the element-count mismatch).
    """

    def __init__(
        self,
        header: ContainerHeader,
        codec: Codec,
        tracer: Tracer | None = None,
    ):
        self._header = header
        self._codec = codec
        self._tracer = tracer

    def __call__(self, item: _ChunkItem) -> np.ndarray:
        import time

        index, record_offset, meta, compressed, incompressible, target = item
        start = 0.0 if self._tracer is None else time.perf_counter()
        chunk = decode_chunk_payload(
            self._header,
            self._codec,
            meta,
            compressed,
            incompressible,
            chunk_index=index,
            byte_offset=record_offset,
            out=target,
        )
        if self._tracer is not None:
            self._tracer.add(
                "decode", time.perf_counter() - start,
                bytes_in=len(compressed) + len(incompressible),
            )
        return chunk
