"""ISOBAR-partitioner: byte-column segmentation (Section II-B, Figure 5).

Given the analyzer's mask, the partitioner splits the byte matrix into

* the *compressible* columns ``C``, linearized row-wise or column-wise
  and handed to the solver, and
* the *incompressible* columns ``I``, stored verbatim (the noise the
  solver is spared from),

plus the metadata needed to reassemble the original elements
bit-exactly.  Both linearizations and the exact inverse are implemented
here; the container format persists which one was used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.bytefreq import byte_view, matrix_to_elements
from repro.core.exceptions import InvalidInputError
from repro.core.preferences import Linearization

__all__ = ["Partition", "partition_matrix", "partition", "reassemble_matrix", "reassemble"]


@dataclass(frozen=True)
class Partition:
    """The ``{C, I, M}`` triple of Algorithm 1 for one chunk.

    Attributes
    ----------
    compressible:
        The linearized compressible byte stream ``C`` (input to the
        solver).
    incompressible:
        The raw incompressible byte stream ``I`` (stored as-is),
        always column-major so each noise column stays contiguous.
    mask:
        Boolean compressibility mask ``M`` over the ``w`` byte-columns.
    linearization:
        How ``compressible`` was laid out (row- or column-wise).
    n_elements / element_width:
        Byte-matrix dimensions needed for reassembly.
    """

    compressible: bytes
    incompressible: bytes
    mask: np.ndarray
    linearization: Linearization
    n_elements: int
    element_width: int

    @property
    def compressible_fraction(self) -> float:
        """Fraction of each element's bytes routed to the solver."""
        return float(np.count_nonzero(self.mask)) / self.element_width


def _validate_mask(mask: np.ndarray, width: int) -> np.ndarray:
    arr = np.asarray(mask, dtype=bool)
    if arr.shape != (width,):
        raise InvalidInputError(
            f"mask length {arr.size} does not match element width {width}"
        )
    return arr


def partition_matrix(
    matrix: np.ndarray,
    mask: np.ndarray,
    linearization: Linearization = Linearization.ROW,
) -> Partition:
    """Split an ``(N, w)`` byte matrix by ``mask``.

    Row linearization keeps each element's compressible bytes adjacent
    (matrix sliced by columns, flattened row-major); column
    linearization emits whole byte-columns in sequence (flattened
    column-major).  The incompressible side is always stored
    column-major.
    """
    mat = np.asarray(matrix)
    if mat.ndim != 2 or mat.dtype != np.uint8:
        raise InvalidInputError(
            f"expected an (N, w) uint8 byte matrix, got {mat.dtype!r} "
            f"with shape {mat.shape}"
        )
    n_elements, width = mat.shape
    mask_arr = _validate_mask(mask, width)
    lin = Linearization.parse(linearization)

    comp = mat[:, mask_arr]
    incomp = mat[:, ~mask_arr]
    if lin is Linearization.ROW:
        comp_bytes = np.ascontiguousarray(comp).tobytes()
    else:
        comp_bytes = np.asfortranarray(comp).tobytes(order="F")
    incomp_bytes = np.asfortranarray(incomp).tobytes(order="F")
    return Partition(
        compressible=comp_bytes,
        incompressible=incomp_bytes,
        mask=mask_arr,
        linearization=lin,
        n_elements=int(n_elements),
        element_width=int(width),
    )


def partition(
    values: np.ndarray,
    mask: np.ndarray,
    linearization: Linearization = Linearization.ROW,
) -> Partition:
    """Partition an element array (views its bytes without copying)."""
    return partition_matrix(byte_view(values), mask, linearization)


def reassemble_matrix(
    compressible: bytes,
    incompressible: bytes,
    mask: np.ndarray,
    linearization: Linearization,
    n_elements: int,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Rebuild the ``(N, w)`` byte matrix from a partition's streams.

    Exact inverse of :func:`partition_matrix` for matching metadata;
    validates stream lengths so corruption is caught before elements
    are fabricated.  ``out``, when given, must be a C-contiguous
    ``(n_elements, w)`` uint8 array; the matrix is written into it
    (letting decoders land chunks directly in a preallocated result)
    and it is returned.
    """
    mask_arr = np.asarray(mask, dtype=bool)
    width = mask_arr.size
    lin = Linearization.parse(linearization)
    n_comp_cols = int(np.count_nonzero(mask_arr))
    n_incomp_cols = width - n_comp_cols

    expected_comp = n_elements * n_comp_cols
    expected_incomp = n_elements * n_incomp_cols
    if len(compressible) != expected_comp:
        raise InvalidInputError(
            f"compressible stream has {len(compressible)} bytes, "
            f"expected {expected_comp}"
        )
    if len(incompressible) != expected_incomp:
        raise InvalidInputError(
            f"incompressible stream has {len(incompressible)} bytes, "
            f"expected {expected_incomp}"
        )

    if out is not None:
        if (
            out.shape != (n_elements, width)
            or out.dtype != np.uint8
            or not out.flags.c_contiguous
        ):
            raise InvalidInputError(
                f"out buffer must be C-contiguous uint8 with shape "
                f"({n_elements}, {width}), got {out.dtype!r} {out.shape}"
            )
        matrix = out
    else:
        matrix = np.empty((n_elements, width), dtype=np.uint8)
    if n_comp_cols:
        comp_flat = np.frombuffer(compressible, dtype=np.uint8)
        if lin is Linearization.ROW:
            matrix[:, mask_arr] = comp_flat.reshape(n_elements, n_comp_cols)
        else:
            matrix[:, mask_arr] = comp_flat.reshape(
                n_comp_cols, n_elements
            ).T
    if n_incomp_cols:
        incomp_flat = np.frombuffer(incompressible, dtype=np.uint8)
        matrix[:, ~mask_arr] = incomp_flat.reshape(n_incomp_cols, n_elements).T
    return matrix


def reassemble(partition_result: Partition, dtype: np.dtype) -> np.ndarray:
    """Rebuild the original 1-D element array from a :class:`Partition`."""
    matrix = reassemble_matrix(
        partition_result.compressible,
        partition_result.incompressible,
        partition_result.mask,
        partition_result.linearization,
        partition_result.n_elements,
    )
    return matrix_to_elements(matrix, dtype)
