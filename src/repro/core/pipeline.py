"""The ISOBAR-compress workflow (Algorithm 1) over chunked inputs.

:class:`IsobarCompressor` wires the components together exactly as
Figure 2 draws them:

1. the EUPA-selector picks the solver and linearization from a timed
   sample (once per stream — Section II-F shows the choice is stable
   across a whole simulation);
2. each chunk runs through the ISOBAR-analyzer;
3. improvable chunks are partitioned — compressible byte-columns go
   through the solver, incompressible ones are stored raw;
4. undetermined chunks pass to the solver whole;
5. the merger writes one self-describing container: global header,
   then per chunk its metadata, solver output and raw noise bytes
   (Figure 7).

Decompression replays the container without re-analysis; every chunk
carries a CRC32 of its raw bytes, so corruption surfaces as
:class:`~repro.core.exceptions.ChecksumError` instead of silent damage.
"""

from __future__ import annotations

import time
import zlib as _zlib
from dataclasses import dataclass

import numpy as np

from repro.analysis.bytefreq import element_width, matrix_to_elements
from repro.codecs.base import Codec, get_codec
from repro.core.analyzer import analyze
from repro.core.chunking import iter_chunks
from repro.core.exceptions import (
    ChecksumError,
    CodecError,
    ContainerFormatError,
    IsobarError,
    TruncatedContainerError,
)
from repro.core.metadata import ChunkMetadata, ChunkMode, ContainerHeader
from repro.core.partitioner import partition, reassemble_matrix
from repro.core.preferences import IsobarConfig, Linearization, Preference
from repro.core.selector import EupaSelector, SelectorDecision

__all__ = [
    "ChunkReport",
    "CompressionResult",
    "IsobarCompressor",
    "decode_chunk_payload",
    "isobar_compress",
    "isobar_decompress",
]


def decode_chunk_payload(
    header: ContainerHeader,
    codec: Codec,
    meta: ChunkMetadata,
    compressed: bytes,
    incompressible: bytes,
    *,
    chunk_index: int | None = None,
    byte_offset: int | None = None,
) -> np.ndarray:
    """Decode one chunk's payload streams back into an element array.

    This is the single authoritative chunk decoder shared by the serial
    pipeline, the parallel decoder, the streaming reader, the validator
    and the salvage scanner.  Every failure — solver error, stream-length
    mismatch, CRC mismatch — is re-raised as an :class:`IsobarError`
    whose message carries the chunk index and absolute byte offset when
    the caller provides them, so corruption reports always point at the
    damaged region instead of a bare ``zlib`` error code.
    """
    where = ""
    if chunk_index is not None:
        where = f"chunk {chunk_index}"
        if byte_offset is not None:
            where += f" at byte offset {byte_offset}"
        where += ": "
    try:
        if meta.mode is ChunkMode.PARTITIONED:
            comp_stream = codec.decompress(compressed)
            matrix = reassemble_matrix(
                comp_stream,
                incompressible,
                meta.mask,
                header.linearization,
                meta.n_elements,
            )
            chunk = matrix_to_elements(matrix, header.dtype)
            raw = matrix.tobytes()
        else:
            raw = codec.decompress(compressed)
            expected = meta.n_elements * header.element_width
            if len(raw) != expected:
                raise ContainerFormatError(
                    f"chunk payload decodes to {len(raw)} bytes, "
                    f"expected {expected}"
                )
            chunk = np.frombuffer(
                raw, dtype=header.dtype.newbyteorder("<")
            ).astype(header.dtype, copy=False)
    except CodecError as exc:
        raise CodecError(f"{where}{exc}") from exc
    except ChecksumError:
        raise
    except IsobarError as exc:
        # Stream-length / reassembly inconsistencies become format
        # errors: the payload structure does not match its metadata.
        raise ContainerFormatError(f"{where}{exc}") from exc
    if _zlib.crc32(raw) != meta.raw_crc32:
        raise ChecksumError(
            f"{where}chunk CRC mismatch (stored {meta.raw_crc32:#010x}, "
            f"computed {_zlib.crc32(raw):#010x})"
        )
    return chunk


def _little_endian_bytes(chunk: np.ndarray) -> bytes:
    """Raw chunk bytes in platform-independent little-endian order."""
    le = chunk.astype(chunk.dtype.newbyteorder("<"), copy=False)
    return np.ascontiguousarray(le).tobytes()


@dataclass(frozen=True)
class ChunkReport:
    """Per-chunk accounting produced by :meth:`IsobarCompressor.compress_detailed`."""

    index: int
    n_elements: int
    mode: ChunkMode
    improvable: bool
    htc_bytes_percent: float
    raw_bytes: int
    stored_bytes: int
    analyze_seconds: float
    compress_seconds: float


@dataclass(frozen=True)
class CompressionResult:
    """Full outcome of one compression run, with measured statistics."""

    payload: bytes
    header: ContainerHeader
    decision: SelectorDecision
    chunks: tuple[ChunkReport, ...]
    analyze_seconds: float
    compress_seconds: float
    select_seconds: float

    @property
    def original_bytes(self) -> int:
        """Uncompressed input size in bytes."""
        return self.header.n_elements * self.header.element_width

    @property
    def compressed_bytes(self) -> int:
        """Size of the produced container."""
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio (Eq. 1) including all container overhead."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def improvable(self) -> bool:
        """True when at least one chunk took the partitioned path."""
        return any(chunk.improvable for chunk in self.chunks)


class IsobarCompressor:
    """End-to-end ISOBAR-compress preconditioner + solver pipeline.

    Parameters
    ----------
    config:
        Workflow configuration; defaults mirror the paper (tau = 1.42,
        375 000-element chunks, zlib/bzip2 candidates, ratio
        preference).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.pipeline import IsobarCompressor
    >>> data = np.linspace(0.0, 1.0, 10_000)
    >>> compressor = IsobarCompressor()
    >>> blob = compressor.compress(data)
    >>> restored = compressor.decompress(blob)
    >>> bool(np.array_equal(restored, data))
    True
    """

    def __init__(self, config: IsobarConfig | None = None):
        self._config = config or IsobarConfig()
        self._selector = EupaSelector(self._config)

    @property
    def config(self) -> IsobarConfig:
        """The active workflow configuration."""
        return self._config

    # -- compression ------------------------------------------------------

    def compress(self, values: np.ndarray) -> bytes:
        """Compress ``values`` into a self-contained ISOBAR container."""
        return self.compress_detailed(values).payload

    def compress_detailed(self, values: np.ndarray) -> CompressionResult:
        """Compress ``values`` and return payload plus full statistics."""
        arr = np.asarray(values)
        element_width(arr.dtype)  # validates dtype kind
        flat = arr.reshape(-1)

        select_start = time.perf_counter()
        decision, codec = self._decide(flat)
        select_seconds = time.perf_counter() - select_start

        chunk_blobs: list[bytes] = []
        reports: list[ChunkReport] = []
        total_analyze = 0.0
        total_compress = 0.0
        for span, chunk in iter_chunks(flat, self._config.chunk_elements):
            blob, report = self._compress_chunk(span.index, chunk, decision, codec)
            chunk_blobs.append(blob)
            reports.append(report)
            total_analyze += report.analyze_seconds
            total_compress += report.compress_seconds

        header = ContainerHeader(
            dtype=arr.dtype,
            n_elements=flat.size,
            shape=arr.shape,
            codec_name=decision.codec_name,
            linearization=decision.linearization,
            preference=self._config.preference,
            tau=self._config.tau,
            chunk_elements=self._config.chunk_elements,
            n_chunks=len(chunk_blobs),
        )
        payload = header.encode() + b"".join(chunk_blobs)
        return CompressionResult(
            payload=payload,
            header=header,
            decision=decision,
            chunks=tuple(reports),
            analyze_seconds=total_analyze,
            compress_seconds=total_compress,
            select_seconds=select_seconds,
        )

    def _decide(self, flat: np.ndarray) -> tuple[SelectorDecision, Codec]:
        """Run the selector on the leading chunk's analysis."""
        if flat.size == 0:
            # Empty stream: nothing to sample; fall back to configured
            # or first-candidate codec with row linearization.
            codec_name = self._config.codec or self._config.candidate_codecs[0]
            linearization = self._config.linearization or Linearization.ROW
            decision = SelectorDecision(
                codec_name=codec_name,
                linearization=linearization,
                preference=self._config.preference,
                improvable=False,
                candidates=(),
                sample_elements=0,
            )
            return decision, get_codec(codec_name)
        lead = flat[: min(flat.size, self._config.chunk_elements)]
        analysis = analyze(lead, tau=self._config.tau)
        decision = self._selector.select(flat, analysis=analysis)
        return decision, get_codec(decision.codec_name)

    def _compress_chunk(
        self,
        index: int,
        chunk: np.ndarray,
        decision: SelectorDecision,
        codec: Codec,
    ) -> tuple[bytes, ChunkReport]:
        raw = _little_endian_bytes(chunk)
        crc = _zlib.crc32(raw)

        analyze_start = time.perf_counter()
        analysis = analyze(chunk, tau=self._config.tau)
        analyze_seconds = time.perf_counter() - analyze_start

        compress_start = time.perf_counter()
        if analysis.improvable:
            part = partition(chunk, analysis.mask, decision.linearization)
            compressed = codec.compress(part.compressible)
            incompressible = part.incompressible
            mode = ChunkMode.PARTITIONED
        else:
            compressed = codec.compress(raw)
            incompressible = b""
            mode = ChunkMode.PASSTHROUGH
        compress_seconds = time.perf_counter() - compress_start

        meta = ChunkMetadata(
            n_elements=chunk.size,
            mode=mode,
            mask=analysis.mask,
            compressed_size=len(compressed),
            incompressible_size=len(incompressible),
            raw_crc32=crc,
        )
        blob = meta.encode() + compressed + incompressible
        report = ChunkReport(
            index=index,
            n_elements=int(chunk.size),
            mode=mode,
            improvable=analysis.improvable,
            htc_bytes_percent=analysis.htc_bytes_percent,
            raw_bytes=len(raw),
            stored_bytes=len(blob),
            analyze_seconds=analyze_seconds,
            compress_seconds=compress_seconds,
        )
        return blob, report

    # -- decompression ----------------------------------------------------

    def decompress(self, data: bytes, *, errors: str = "raise") -> np.ndarray:
        """Restore the exact original array from a container.

        Parameters
        ----------
        data:
            A serialized ISOBAR container.
        errors:
            ``"raise"`` (default) aborts on the first damaged chunk;
            ``"skip"`` and ``"zero_fill"`` delegate to
            :func:`repro.core.salvage.salvage_decompress` and return
            whatever could be recovered (skipping lost chunks, or
            substituting zero elements for them, respectively).
        """
        if errors != "raise":
            from repro.core.salvage import salvage_decompress

            return salvage_decompress(data, policy=errors).values

        header, offset = ContainerHeader.decode(data)
        codec = get_codec(header.codec_name)
        width = header.element_width

        pieces: list[np.ndarray] = []
        for index in range(header.n_chunks):
            record_offset = offset
            meta, offset = ChunkMetadata.decode(data, offset, width)
            end_comp = offset + meta.compressed_size
            end_incomp = end_comp + meta.incompressible_size
            if end_incomp > len(data):
                raise TruncatedContainerError(
                    f"chunk {index} at byte offset {record_offset}: "
                    "container truncated inside chunk payload"
                )
            compressed = data[offset:end_comp]
            incompressible = data[end_comp:end_incomp]
            offset = end_incomp
            pieces.append(
                decode_chunk_payload(
                    header,
                    codec,
                    meta,
                    compressed,
                    incompressible,
                    chunk_index=index,
                    byte_offset=record_offset,
                )
            )

        if pieces:
            # concatenate() normalises byte order to native; restore the
            # header's exact dtype (e.g. big-endian inputs round-trip).
            flat = np.concatenate(pieces).astype(header.dtype, copy=False)
        else:
            flat = np.empty(0, dtype=header.dtype)
        if flat.size != header.n_elements:
            raise ContainerFormatError(
                f"container reassembled {flat.size} elements, header "
                f"declares {header.n_elements}"
            )
        n_shape = 1
        for dim in header.shape:
            n_shape *= dim
        if header.shape and n_shape == header.n_elements:
            return flat.reshape(header.shape)
        return flat


def isobar_compress(
    values: np.ndarray,
    preference: Preference | str = Preference.RATIO,
    *,
    codec: str | None = None,
    linearization: Linearization | str | None = None,
    config: IsobarConfig | None = None,
) -> bytes:
    """One-call ISOBAR compression with the paper's defaults.

    Parameters
    ----------
    values:
        Fixed-width numeric array of any shape.
    preference:
        ``"ratio"`` or ``"speed"`` (EUPA-selector target).
    codec / linearization:
        Optional explicit overrides (Section II-C allows fixing both).
    config:
        Full configuration object; when given, the other keyword
        arguments are applied on top of it.
    """
    base = config or IsobarConfig()
    overrides: dict[str, object] = {"preference": Preference.parse(preference)}
    if codec is not None:
        overrides["codec"] = codec
    if linearization is not None:
        overrides["linearization"] = Linearization.parse(linearization)
    return IsobarCompressor(base.replace(**overrides)).compress(values)


def isobar_decompress(data: bytes, *, errors: str = "raise") -> np.ndarray:
    """Restore an array compressed by :func:`isobar_compress`.

    ``errors`` selects the damage policy: ``"raise"`` (strict,
    default), ``"skip"`` or ``"zero_fill"`` (lenient salvage decode —
    see :func:`repro.core.salvage.salvage_decompress`).
    """
    return IsobarCompressor().decompress(data, errors=errors)
