"""The ISOBAR-compress workflow (Algorithm 1) over chunked inputs.

:class:`IsobarCompressor` wires the components together exactly as
Figure 2 draws them:

1. the EUPA-selector picks the solver and linearization from a timed
   sample (once per stream — Section II-F shows the choice is stable
   across a whole simulation);
2. each chunk runs through the ISOBAR-analyzer;
3. improvable chunks are partitioned — compressible byte-columns go
   through the solver, incompressible ones are stored raw;
4. undetermined chunks pass to the solver whole;
5. the merger writes one self-describing container: global header,
   then per chunk its metadata, solver output and raw noise bytes
   (Figure 7).

Decompression replays the container without re-analysis; every chunk
carries a CRC32 of its raw bytes, so corruption surfaces as
:class:`~repro.core.exceptions.ChecksumError` instead of silent damage.
Strict decoding is the default; ``decompress(data, errors="skip")`` or
``errors="zero_fill"`` instead delegates to the lenient salvage decoder
(:mod:`repro.core.salvage`), which resynchronizes over damaged regions
and returns everything recoverable.

Both directions can be observed: ``IsobarCompressor(collect_metrics=
True)`` records per-stage wall-clock, chunk outcomes and byte routing
into a :class:`~repro.observability.MetricsRegistry` and summarises
each run as a :class:`~repro.observability.PipelineReport` (see
``docs/observability.md``); the default leaves null instruments on the
hot path.
"""

from __future__ import annotations

import threading
import time
import warnings
import zlib as _zlib
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.bytefreq import byte_view, element_width, matrix_to_elements
from repro.codecs.base import Codec, get_codec
from repro.core.analyzer import AnalysisResult, analyze, analyze_matrix
from repro.core.chunking import iter_chunks
from repro.core.exceptions import (
    ChecksumError,
    ChunkTimeoutError,
    CodecError,
    ContainerFormatError,
    InvalidInputError,
    IsobarError,
    SelectorError,
    TruncatedContainerError,
)
from repro.core.metadata import (
    ChunkIndexRecord,
    ChunkMetadata,
    ChunkMode,
    ContainerFooter,
    ContainerHeader,
)
from repro.core.partitioner import partition, reassemble_matrix
from repro.core.preferences import (
    IsobarConfig,
    Linearization,
    Preference,
    normalize_errors,
    salvage_policy_for,
)
from repro.core.resilience import (
    BreakerBoard,
    BreakerState,
    DegradationEvent,
    DegradationReport,
    ResiliencePolicy,
    call_with_deadline,
)
from repro.core.selector import SelectorDecision, resolve_selector
from repro.core.workspace import ChunkWorkspace
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.observability.report import PipelineReport
from repro.observability.trace import NULL_TRACER, AnyTracer, Tracer

__all__ = [
    "ChunkReport",
    "CompressionResult",
    "EncodedChunk",
    "IsobarCompressor",
    "decode_chunk_payload",
    "encode_chunk_payload",
    "index_footer_from_reports",
    "isobar_compress",
    "isobar_decompress",
]


def _writable_byte_view(out: np.ndarray) -> np.ndarray | None:
    """``out`` as an ``(N, w)`` uint8 matrix, or ``None`` if ineligible.

    Eligible outputs are C-contiguous little-endian element arrays —
    the common case — letting decoders reassemble chunks directly into
    a preallocated result instead of staging through a fresh matrix.
    """
    if (
        out.flags.c_contiguous
        and out.flags.writeable
        and out.dtype == out.dtype.newbyteorder("<")
    ):
        return out.view(np.uint8).reshape(out.size, out.dtype.itemsize)
    return None


def decode_chunk_payload(
    header: ContainerHeader,
    codec: Codec,
    meta: ChunkMetadata,
    compressed: bytes,
    incompressible: bytes,
    *,
    chunk_index: int | None = None,
    byte_offset: int | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Decode one chunk's payload streams back into an element array.

    This is the single authoritative chunk decoder shared by the serial
    pipeline, the parallel decoder, the streaming reader, the validator
    and the salvage scanner.  Every failure — solver error, stream-length
    mismatch, CRC mismatch — is re-raised as an :class:`IsobarError`
    whose message carries the chunk index and absolute byte offset when
    the caller provides them, so corruption reports always point at the
    damaged region instead of a bare ``zlib`` error code.

    ``out``, when given, must be a 1-D array of ``header.dtype`` with
    ``meta.n_elements`` elements; the chunk is decoded into it and
    ``out`` is returned, so callers can assemble a whole container in a
    single preallocated buffer without a concatenation pass.
    """
    where = ""
    if chunk_index is not None:
        where = f"chunk {chunk_index}"
        if byte_offset is not None:
            where += f" at byte offset {byte_offset}"
        where += ": "
    if out is not None and out.size != meta.n_elements:
        raise InvalidInputError(
            f"{where}out buffer holds {out.size} elements, chunk "
            f"declares {meta.n_elements}"
        )
    try:
        if meta.mode is ChunkMode.PARTITIONED:
            # Degraded-to-raw chunks carry an all-False mask and an
            # empty solver stream; skip the solver for them (stdlib
            # zlib rejects empty streams, and there is nothing to do).
            comp_stream = codec.decompress(compressed) if compressed else b""
            matrix_out = _writable_byte_view(out) if out is not None else None
            matrix = reassemble_matrix(
                comp_stream,
                incompressible,
                meta.mask,
                header.linearization,
                meta.n_elements,
                out=matrix_out,
            )
            if matrix_out is not None:
                chunk = out
            else:
                chunk = matrix_to_elements(matrix, header.dtype)
            # The matrix is C-contiguous little-endian — exactly the
            # chunk's raw byte stream — so the CRC reads it in place.
            raw = matrix
        elif meta.mode is ChunkMode.FALLBACK_ZLIB:
            # Resilience fallback: a standard stdlib-zlib stream of the
            # raw little-endian chunk bytes, independent of the
            # container's registered codec.
            try:
                raw = _zlib.decompress(compressed)
            except _zlib.error as exc:
                raise CodecError(
                    f"zlib-fallback payload undecodable: {exc}"
                ) from exc
            expected = meta.n_elements * header.element_width
            if len(raw) != expected:
                raise ContainerFormatError(
                    f"zlib-fallback payload decodes to {len(raw)} bytes, "
                    f"expected {expected}"
                )
            chunk = np.frombuffer(
                raw, dtype=header.dtype.newbyteorder("<")
            ).astype(header.dtype, copy=False)
        elif meta.mode is ChunkMode.PASSTHROUGH:
            raw = codec.decompress(compressed)
            expected = meta.n_elements * header.element_width
            if len(raw) != expected:
                raise ContainerFormatError(
                    f"chunk payload decodes to {len(raw)} bytes, "
                    f"expected {expected}"
                )
            chunk = np.frombuffer(
                raw, dtype=header.dtype.newbyteorder("<")
            ).astype(header.dtype, copy=False)
        else:
            # Unreachable for well-formed metadata; guards against a
            # future ChunkMode member missing its decode branch.
            raise ContainerFormatError(f"unhandled chunk mode {meta.mode!r}")
    except CodecError as exc:
        raise CodecError(f"{where}{exc}") from exc
    except ChecksumError:
        raise
    except IsobarError as exc:
        # Stream-length / reassembly inconsistencies become format
        # errors: the payload structure does not match its metadata.
        raise ContainerFormatError(f"{where}{exc}") from exc
    if _zlib.crc32(raw) != meta.raw_crc32:
        raise ChecksumError(
            f"{where}chunk CRC mismatch (stored {meta.raw_crc32:#010x}, "
            f"computed {_zlib.crc32(raw):#010x})"
        )
    if out is not None and chunk is not out:
        # Ineligible out buffers (byte-swapped dtype, strided) still
        # honour the contract: copy the decoded chunk into place.
        out[...] = chunk
        return out
    return chunk


def _little_endian_bytes(chunk: np.ndarray) -> bytes:
    """Raw chunk bytes in platform-independent little-endian order."""
    le = chunk.astype(chunk.dtype.newbyteorder("<"), copy=False)
    return np.ascontiguousarray(le).tobytes()


def _buffer_nbytes(raw: bytes | np.ndarray) -> int:
    """Byte length of a raw-chunk buffer (bytes or uint8 matrix view)."""
    return raw.nbytes if isinstance(raw, np.ndarray) else len(raw)


def _buffer_bytes(raw: bytes | np.ndarray) -> bytes:
    """Materialise a raw-chunk buffer as ``bytes`` (solver input)."""
    return raw.tobytes() if isinstance(raw, np.ndarray) else raw


@dataclass(frozen=True)
class EncodedChunk:
    """One chunk's encoded payload streams plus resilience accounting.

    Produced by :func:`encode_chunk_payload` — the compress-side
    counterpart of :func:`decode_chunk_payload` shared by the serial
    pipeline, the parallel workers and the streaming writer.
    """

    mode: ChunkMode
    mask: np.ndarray
    compressed: bytes
    #: May be a ``memoryview`` into a :class:`ChunkWorkspace` buffer —
    #: only valid until the workspace's next chunk; callers materialise
    #: it into the container record before reuse.
    incompressible: bytes | memoryview
    #: Uncompressed bytes that went through a solver (0 for raw chunks).
    solver_bytes: int
    partition_seconds: float
    solve_seconds: float
    #: ``codec.name`` on the healthy path, else ``"zlib-fallback"``/``"raw"``.
    encoding: str
    degraded: bool
    #: Primary-codec attempts actually made (0 when the breaker was open).
    attempts: int
    #: Attempts beyond the first.
    retries: int
    #: Degradation cause (``"error"``/``"timeout"``/``"breaker_open"``).
    cause: str | None = None
    #: Message of the last primary-codec error, when there was one.
    error: str | None = None


def _fallback_streams(
    chunk: np.ndarray,
    raw: bytes | np.ndarray,
    linearization: Linearization,
    deadline: float | None,
) -> tuple[ChunkMode, np.ndarray, bytes, bytes, int, str]:
    """Degraded encodings: stdlib zlib first, raw passthrough last.

    Both reuse existing container vocabulary: ``FALLBACK_ZLIB`` is a
    standard zlib stream of the raw little-endian bytes, and the raw
    form is a ``PARTITIONED`` chunk with an all-False mask — exactly
    how the paper stores an all-incompressible chunk (Section II-B) —
    so every released decoder already round-trips it.
    """
    all_false = np.zeros(chunk.dtype.itemsize, dtype=bool)
    try:
        compressed = call_with_deadline(
            lambda data: _zlib.compress(data, 6), raw, deadline
        )
        return (
            ChunkMode.FALLBACK_ZLIB, all_false, compressed, b"",
            _buffer_nbytes(raw), "zlib-fallback",
        )
    # isobar: ignore[ISO005] last-resort degrade path: any zlib failure
    except Exception:  # noqa: BLE001 - falls through to raw passthrough
        part = partition(chunk, all_false, linearization)
        return (
            ChunkMode.PARTITIONED, all_false, b"", part.incompressible,
            0, "raw",
        )


def encode_chunk_payload(
    chunk: np.ndarray,
    raw: bytes | np.ndarray,
    analysis: AnalysisResult,
    linearization: Linearization,
    codec: Codec,
    *,
    policy: ResiliencePolicy | None = None,
    breakers: BreakerBoard | None = None,
    chunk_index: int = 0,
    tracer: AnyTracer = NULL_TRACER,
    workspace: ChunkWorkspace | None = None,
) -> EncodedChunk:
    """Encode one analyzed chunk into its container payload streams.

    On the healthy path this reproduces Algorithm 1's two branches
    byte-for-byte: improvable chunks are partitioned and their signal
    columns solved, undetermined chunks pass to the solver whole.

    ``raw`` is the chunk's little-endian byte stream — either ``bytes``
    or, on the zero-copy hot path, the chunk's own ``(N, w)`` uint8
    view (:func:`repro.analysis.bytefreq.byte_view`).  A
    :class:`~repro.core.workspace.ChunkWorkspace` routes the partition
    gathers through reusable buffers; the returned chunk's
    ``incompressible`` stream then aliases the workspace and must be
    consumed before its next use.

    With a :class:`~repro.core.resilience.ResiliencePolicy` the solver
    call is fault-contained: it is retried (with backoff) under an
    optional per-chunk deadline, gated by the codec's circuit breaker,
    and on exhaustion the chunk *degrades* through the fallback chain —
    stdlib ``zlib``, then raw passthrough — instead of failing the run.
    A strict policy raises :class:`~repro.core.exceptions.CodecError`
    once the primary codec is exhausted.
    """
    raw_nbytes = _buffer_nbytes(raw)
    partition_seconds = 0.0
    stage_start = time.perf_counter()
    if analysis.improvable:
        if workspace is not None and isinstance(raw, np.ndarray):
            payload, incompressible = workspace.partition_streams(
                raw, analysis.mask, linearization
            )
        else:
            part = partition(chunk, analysis.mask, linearization)
            payload = part.compressible
            incompressible = part.incompressible
        partition_seconds = time.perf_counter() - stage_start
        tracer.add("partition", partition_seconds, bytes_in=raw_nbytes)
        mode = ChunkMode.PARTITIONED
    else:
        # The solver may be pure Python, so it receives real bytes.
        payload = _buffer_bytes(raw)
        incompressible = b""
        mode = ChunkMode.PASSTHROUGH

    deadline = policy.chunk_deadline_seconds if policy is not None else None
    breaker = (
        breakers.for_codec(codec.name)
        if policy is not None and breakers is not None
        else None
    )
    max_attempts = policy.max_attempts if policy is not None else 1

    attempts = 0
    cause: str | None = None
    last_error: BaseException | None = None
    if breaker is None or breaker.allow():
        while attempts < max_attempts:
            if attempts and policy is not None:
                # Retry n waits the policy's (optionally jittered)
                # exponential backoff; the chunk index tokenises the
                # jitter stream so concurrent chunks decorrelate.
                policy.pause_before_retry(attempts, token=chunk_index)
            attempts += 1
            solve_start = time.perf_counter()
            try:
                compressed = call_with_deadline(
                    codec.compress, payload, deadline
                )
                if policy is not None and policy.verify_roundtrip:
                    restored = call_with_deadline(
                        codec.decompress, compressed, deadline
                    )
                    if restored != payload:
                        raise CodecError(
                            f"{codec.name}: round-trip verification failed "
                            f"({len(restored)} bytes back, "
                            f"{len(payload)} expected)"
                        )
            except ChunkTimeoutError as exc:
                tracer.add("solve", time.perf_counter() - solve_start,
                           bytes_in=len(payload))
                if policy is None:
                    raise
                if breaker is not None:
                    breaker.record_failure()
                cause, last_error = "timeout", exc
                continue
            except Exception as exc:  # noqa: BLE001 - containment boundary
                tracer.add("solve", time.perf_counter() - solve_start,
                           bytes_in=len(payload))
                if policy is None:
                    raise
                if breaker is not None:
                    breaker.record_failure()
                cause, last_error = "error", exc
                continue
            tracer.add(
                "solve", time.perf_counter() - solve_start,
                bytes_in=len(payload), bytes_out=len(compressed),
            )
            if breaker is not None:
                breaker.record_success()
            return EncodedChunk(
                mode=mode,
                mask=analysis.mask,
                compressed=compressed,
                incompressible=incompressible,
                solver_bytes=len(payload),
                partition_seconds=partition_seconds,
                solve_seconds=time.perf_counter() - stage_start
                - partition_seconds,
                encoding=codec.name,
                degraded=False,
                attempts=attempts,
                retries=attempts - 1,
            )
    else:
        cause = "breaker_open"

    # Primary codec exhausted (or short-circuited by its breaker).
    assert policy is not None
    if policy.strict:
        if last_error is not None:
            raise CodecError(
                f"chunk {chunk_index}: {codec.name} failed after "
                f"{attempts} attempt(s): {last_error}"
            ) from last_error
        raise CodecError(
            f"chunk {chunk_index}: {codec.name} circuit breaker is open"
        )
    if not policy.fallback_zlib:
        all_false = np.zeros(chunk.dtype.itemsize, dtype=bool)
        raw_part = partition(chunk, all_false, linearization)
        fb_mode, fb_mask, fb_comp, fb_incomp, fb_solver, fb_name = (
            ChunkMode.PARTITIONED, all_false, b"", raw_part.incompressible,
            0, "raw",
        )
    else:
        solve_start = time.perf_counter()
        fb_mode, fb_mask, fb_comp, fb_incomp, fb_solver, fb_name = (
            _fallback_streams(chunk, raw, linearization, deadline)
        )
        tracer.add(
            "solve", time.perf_counter() - solve_start,
            bytes_in=raw_nbytes, bytes_out=len(fb_comp),
        )
    return EncodedChunk(
        mode=fb_mode,
        mask=fb_mask,
        compressed=fb_comp,
        incompressible=fb_incomp,
        solver_bytes=fb_solver,
        partition_seconds=partition_seconds,
        solve_seconds=time.perf_counter() - stage_start - partition_seconds,
        encoding=fb_name,
        degraded=True,
        attempts=attempts,
        retries=max(attempts - 1, 0),
        cause=cause,
        error=str(last_error) if last_error is not None else None,
    )


@dataclass(frozen=True)
class ChunkReport:
    """Per-chunk accounting produced by :meth:`IsobarCompressor.compress_detailed`."""

    index: int
    n_elements: int
    mode: ChunkMode
    improvable: bool
    htc_bytes_percent: float
    raw_bytes: int
    stored_bytes: int
    analyze_seconds: float
    compress_seconds: float
    #: Uncompressed bytes routed through the solver (all of ``raw_bytes``
    #: for passthrough chunks, only the signal columns when partitioned).
    solver_bytes: int = 0
    #: Noise-column bytes stored verbatim (0 for passthrough chunks).
    noise_bytes: int = 0
    #: Size of this chunk's metadata record (container framing, not
    #: payload) — ``stored_bytes`` minus solver output and noise.
    metadata_bytes: int = 0
    #: Final encoding: the codec name, ``"zlib-fallback"`` or ``"raw"``.
    encoding: str = ""
    #: True when the chunk fell back to a degraded encoding.
    degraded: bool = False
    #: Primary-codec attempts made (0 when the breaker short-circuited).
    attempts: int = 1
    #: Attempts beyond the first.
    retries: int = 0
    #: Degradation cause (``error``/``timeout``/``breaker_open``) or None.
    cause: str | None = None
    #: Last primary-codec error message, when there was one.
    error: str | None = None


def index_footer_from_reports(
    header_nbytes: int,
    reports: tuple[ChunkReport, ...] | list[ChunkReport],
) -> ContainerFooter:
    """Build the chunk-index footer from per-chunk accounting.

    Each :class:`ChunkReport` already records the chunk's framing and
    payload split (``stored_bytes`` / ``metadata_bytes`` /
    ``noise_bytes``), so the absolute payload offsets fall out of a
    running sum — no second pass over the encoded blobs.
    """
    entries = []
    offset = header_nbytes
    for report in reports:
        compressed = (
            report.stored_bytes - report.metadata_bytes - report.noise_bytes
        )
        entries.append(
            ChunkIndexRecord(
                payload_offset=offset + report.metadata_bytes,
                compressed_size=compressed,
                incompressible_size=report.noise_bytes,
                n_elements=report.n_elements,
            )
        )
        offset += report.stored_bytes
    return ContainerFooter(entries=tuple(entries))


@dataclass(frozen=True)
class CompressionResult:
    """Full outcome of one compression run, with measured statistics."""

    payload: bytes
    header: ContainerHeader
    decision: SelectorDecision
    chunks: tuple[ChunkReport, ...]
    analyze_seconds: float
    compress_seconds: float
    select_seconds: float
    #: Fault-containment record: every degraded chunk plus retry totals.
    degradation: DegradationReport = field(default_factory=DegradationReport)
    #: Size of the trailing chunk-index footer (container framing).
    footer_bytes: int = 0

    @property
    def original_bytes(self) -> int:
        """Uncompressed input size in bytes."""
        return self.header.n_elements * self.header.element_width

    @property
    def compressed_bytes(self) -> int:
        """Size of the produced container."""
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio (Eq. 1) including all container overhead."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def container_overhead_bytes(self) -> int:
        """Container framing: the global header, every per-chunk
        metadata record, and the trailing index footer — bytes that
        exist only for the format, not for the data."""
        return (
            len(self.header.encode())
            + sum(chunk.metadata_bytes for chunk in self.chunks)
            + self.footer_bytes
        )

    @property
    def stored_payload_bytes(self) -> int:
        """Solver output plus verbatim noise bytes actually stored —
        ``compressed_bytes`` with the container framing subtracted."""
        return self.compressed_bytes - self.container_overhead_bytes

    @property
    def payload_ratio(self) -> float:
        """Compression ratio against the stored payload alone — the
        overhead-free accounting the paper's Table 5 uses."""
        if self.stored_payload_bytes <= 0:
            return float("inf")
        return self.original_bytes / self.stored_payload_bytes

    @property
    def improvable(self) -> bool:
        """True when at least one chunk took the partitioned path."""
        return any(chunk.improvable for chunk in self.chunks)

    @property
    def solver_bytes(self) -> int:
        """Uncompressed bytes routed through the solver, summed."""
        return sum(chunk.solver_bytes for chunk in self.chunks)

    @property
    def noise_bytes(self) -> int:
        """Incompressible bytes stored verbatim, summed."""
        return sum(chunk.noise_bytes for chunk in self.chunks)

    @property
    def degraded(self) -> bool:
        """True when at least one chunk fell back to a degraded encoding."""
        return not self.degradation.clean


def _degradation_from_reports(
    reports: tuple[ChunkReport, ...] | list[ChunkReport],
) -> DegradationReport:
    """Fold per-chunk accounting into one run-level degradation record."""
    events = tuple(
        DegradationEvent(
            chunk_index=r.index,
            cause=r.cause or "error",
            attempts=r.attempts,
            encoding=r.encoding,
            error=r.error,
        )
        for r in reports
        if r.degraded
    )
    return DegradationReport(
        events=events, retries=sum(r.retries for r in reports)
    )


class IsobarCompressor:
    """End-to-end ISOBAR-compress preconditioner + solver pipeline.

    Parameters
    ----------
    config:
        Workflow configuration; defaults mirror the paper (tau = 1.42,
        375 000-element chunks, zlib/bzip2 candidates, ratio
        preference).
    collect_metrics:
        When true, every run records per-stage timings, chunk outcomes
        and byte routing into :attr:`metrics` and summarises itself as
        :attr:`last_report`.  The default leaves shared null
        instruments on the hot path (no measurable overhead).
    metrics:
        An existing :class:`~repro.observability.MetricsRegistry` to
        record into (shared registries aggregate across compressors);
        implies ``collect_metrics=True``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.pipeline import IsobarCompressor
    >>> data = np.linspace(0.0, 1.0, 10_000)
    >>> compressor = IsobarCompressor()
    >>> blob = compressor.compress(data)
    >>> restored = compressor.decompress(blob)
    >>> bool(np.array_equal(restored, data))
    True
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        *,
        collect_metrics: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        self._config = config or IsobarConfig()
        if metrics is not None:
            self._metrics = metrics
        elif collect_metrics:
            self._metrics = MetricsRegistry()
        else:
            self._metrics = NULL_REGISTRY
        self._instruments = PipelineInstruments(self._metrics)
        # config.selector names the strategy ("eupa" default, "learned",
        # "cached" or an instance); every strategy shares the EUPA
        # candidate space and decision record.
        self._selector = resolve_selector(
            self._config,
            metrics=self._metrics if self._metrics.enabled else None,
        )
        self._last_report: PipelineReport | None = None
        # One breaker board for the compressor's lifetime: breaker
        # state persists across runs, the way an always-on ingest path
        # needs it to.  The gauge callback is a no-op when metrics are
        # disabled (null gauge).
        self._breakers = BreakerBoard(
            self._config.resilience,
            on_state_change=self._record_breaker_state,
        )
        # Reusable partition scratch, one per worker thread (the
        # parallel subclass compresses chunks concurrently).
        self._workspaces = threading.local()

    def _workspace(self) -> ChunkWorkspace:
        """This thread's reusable chunk-encoding workspace."""
        workspace = getattr(self._workspaces, "workspace", None)
        if workspace is None:
            workspace = ChunkWorkspace()
            self._workspaces.workspace = workspace
        return workspace

    def _record_breaker_state(
        self, codec_name: str, state: BreakerState
    ) -> None:
        self._instruments.breaker_state.set(
            state.gauge_value, codec=codec_name
        )

    @property
    def config(self) -> IsobarConfig:
        """The active workflow configuration."""
        return self._config

    @property
    def breakers(self) -> BreakerBoard:
        """The per-codec circuit breakers guarding this compressor."""
        return self._breakers

    @property
    def collect_metrics(self) -> bool:
        """Whether this compressor records observability data."""
        return self._metrics.enabled

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The registry accumulating across runs (``None`` if disabled)."""
        return self._metrics if self._metrics.enabled else None

    @property
    def last_report(self) -> PipelineReport | None:
        """The most recent run's :class:`~repro.observability.PipelineReport`
        (``None`` until an instrumented run completes)."""
        return self._last_report

    def _tracer(self) -> AnyTracer:
        """A fresh per-run tracer, or the shared null tracer."""
        if self._metrics.enabled:
            return Tracer(self._metrics)
        return NULL_TRACER

    # -- compression ------------------------------------------------------

    def compress(self, values: np.ndarray) -> bytes:
        """Compress ``values`` into a self-contained ISOBAR container."""
        return self.compress_detailed(values).payload

    def compress_detailed(self, values: np.ndarray) -> CompressionResult:
        """Compress ``values`` and return payload plus full statistics."""
        wall_start = time.perf_counter()
        tracer = self._tracer()
        arr = np.asarray(values)
        element_width(arr.dtype)  # validates dtype kind
        flat = arr.reshape(-1)

        select_start = time.perf_counter()
        decision, codec, lead_analysis, lead_seconds = self._decide(
            flat, tracer
        )
        select_seconds = time.perf_counter() - select_start - lead_seconds
        tracer.add("select", select_seconds)

        chunk_blobs: list[bytes] = []
        reports: list[ChunkReport] = []
        total_analyze = lead_seconds
        total_compress = 0.0
        for span, chunk in iter_chunks(flat, self._config.chunk_elements):
            # The selector's lead sample is exactly chunk 0, so its
            # analysis is reused instead of re-running the analyzer.
            blob, report = self._compress_chunk(
                span.index, chunk, decision, codec, tracer,
                analysis=lead_analysis if span.index == 0 else None,
            )
            chunk_blobs.append(blob)
            reports.append(report)
            total_analyze += report.analyze_seconds
            total_compress += report.compress_seconds

        merge_start = time.perf_counter()
        header = ContainerHeader(
            dtype=arr.dtype,
            n_elements=flat.size,
            shape=arr.shape,
            codec_name=decision.codec_name,
            linearization=decision.linearization,
            preference=self._config.preference,
            tau=self._config.tau,
            chunk_elements=self._config.chunk_elements,
            n_chunks=len(chunk_blobs),
        )
        header_bytes = header.encode()
        footer_bytes = index_footer_from_reports(
            len(header_bytes), reports
        ).encode()
        payload = header_bytes + b"".join(chunk_blobs) + footer_bytes
        tracer.add(
            "merge", time.perf_counter() - merge_start,
            bytes_out=len(payload),
        )
        result = CompressionResult(
            payload=payload,
            header=header,
            decision=decision,
            chunks=tuple(reports),
            analyze_seconds=total_analyze,
            compress_seconds=total_compress,
            select_seconds=select_seconds,
            degradation=_degradation_from_reports(reports),
            footer_bytes=len(footer_bytes),
        )
        if self._metrics.enabled:
            self._finish_compress_run(
                result, tracer, time.perf_counter() - wall_start
            )
        return result

    def _finish_compress_run(
        self, result: CompressionResult, tracer: AnyTracer,
        wall_seconds: float,
    ) -> None:
        """Record run-level metrics and build the per-run report."""
        improvable = sum(1 for c in result.chunks if c.improvable)
        self._instruments.runs.inc(1, operation="compress")
        self._instruments.input_bytes.inc(
            result.original_bytes, operation="compress"
        )
        self._instruments.output_bytes.inc(
            result.compressed_bytes, operation="compress"
        )
        self._last_report = PipelineReport(
            operation="compress",
            codec_name=result.decision.codec_name,
            linearization=result.decision.linearization.value,
            n_chunks=len(result.chunks),
            improvable_chunks=improvable,
            undetermined_chunks=len(result.chunks) - improvable,
            solver_bytes=result.solver_bytes,
            raw_bytes=result.noise_bytes,
            input_bytes=result.original_bytes,
            output_bytes=result.compressed_bytes,
            stage_seconds=tracer.stage_seconds(),
            wall_seconds=wall_seconds,
        )

    def _decide(
        self, flat: np.ndarray, tracer: AnyTracer = NULL_TRACER
    ) -> tuple[SelectorDecision, Codec, AnalysisResult | None, float]:
        """Run the selector on the leading chunk's analysis.

        Returns the decision, the codec, the lead chunk's analysis
        (reusable verbatim for chunk 0, which *is* the lead sample) and
        the seconds that analysis took — attributed to the ``analyze``
        stage here so the select stage only accounts for the sampling
        race itself.
        """
        if flat.size == 0:
            # Empty stream: nothing to sample; fall back to configured
            # or first-candidate codec with row linearization.
            codec_name = self._config.codec or self._config.candidate_codecs[0]
            linearization = self._config.linearization or Linearization.ROW
            decision = SelectorDecision(
                codec_name=codec_name,
                linearization=linearization,
                preference=self._config.preference,
                improvable=False,
                candidates=(),
                sample_elements=0,
            )
            return decision, get_codec(codec_name), None, 0.0
        lead = flat[: min(flat.size, self._config.chunk_elements)]
        analyze_start = time.perf_counter()
        analysis = analyze(lead, tau=self._config.tau)
        lead_seconds = time.perf_counter() - analyze_start
        tracer.add("analyze", lead_seconds, bytes_in=lead.nbytes)
        try:
            decision = self._selector.select(flat, analysis=analysis)
        except SelectorError:
            # Every candidate evaluation failed.  Under a resilience
            # policy the run must still proceed: fall back to the
            # configured (or first-candidate) codec — chunk-level
            # containment will degrade its chunks if it keeps failing.
            if self._config.resilience is None:
                raise
            codec_name = self._config.codec or self._config.candidate_codecs[0]
            linearization = self._config.linearization or Linearization.ROW
            decision = SelectorDecision(
                codec_name=codec_name,
                linearization=linearization,
                preference=self._config.preference,
                improvable=analysis.improvable,
                candidates=(),
                sample_elements=0,
            )
        return decision, get_codec(decision.codec_name), analysis, lead_seconds

    def _compress_chunk(
        self,
        index: int,
        chunk: np.ndarray,
        decision: SelectorDecision,
        codec: Codec,
        tracer: AnyTracer = NULL_TRACER,
        analysis: AnalysisResult | None = None,
    ) -> tuple[bytes, ChunkReport]:
        # Zero-copy on the hot path: for little-endian contiguous input
        # this views the chunk's own bytes (no per-chunk matrix copy);
        # the CRC reads the view in place.
        view = byte_view(chunk)
        crc = _zlib.crc32(view)

        if analysis is None:
            analyze_start = time.perf_counter()
            analysis = analyze_matrix(view, tau=self._config.tau)
            analyze_seconds = time.perf_counter() - analyze_start
            tracer.add("analyze", analyze_seconds, bytes_in=view.nbytes)
        else:
            # Hoisted: the caller already analyzed this chunk (the
            # selector's lead sample) and attributed the time.
            analyze_seconds = 0.0

        encoded = encode_chunk_payload(
            chunk, view, analysis, decision.linearization, codec,
            policy=self._config.resilience,
            breakers=self._breakers,
            chunk_index=index,
            tracer=tracer,
            workspace=self._workspace(),
        )
        compress_seconds = encoded.partition_seconds + encoded.solve_seconds

        meta = ChunkMetadata(
            n_elements=chunk.size,
            mode=encoded.mode,
            mask=encoded.mask,
            compressed_size=len(encoded.compressed),
            incompressible_size=len(encoded.incompressible),
            raw_crc32=crc,
        )
        # join() materialises the workspace-aliased incompressible view
        # before the workspace is reused for the next chunk.
        meta_bytes = meta.encode()
        blob = b"".join((meta_bytes, encoded.compressed, encoded.incompressible))
        report = ChunkReport(
            index=index,
            n_elements=int(chunk.size),
            mode=encoded.mode,
            improvable=analysis.improvable,
            htc_bytes_percent=analysis.htc_bytes_percent,
            raw_bytes=view.nbytes,
            stored_bytes=len(blob),
            metadata_bytes=len(meta_bytes),
            analyze_seconds=analyze_seconds,
            compress_seconds=compress_seconds,
            solver_bytes=encoded.solver_bytes,
            noise_bytes=len(encoded.incompressible),
            encoding=encoded.encoding,
            degraded=encoded.degraded,
            attempts=encoded.attempts,
            retries=encoded.retries,
            cause=encoded.cause,
            error=encoded.error,
        )
        if self._metrics.enabled:
            self._instruments.record_chunk_outcome(
                improvable=analysis.improvable,
                solver_bytes=encoded.solver_bytes,
                raw_bytes=len(encoded.incompressible),
                stored_bytes=len(blob),
                seconds=analyze_seconds + compress_seconds,
            )
            if encoded.retries:
                self._instruments.chunk_retries.inc(encoded.retries)
            if encoded.degraded:
                self._instruments.chunks_degraded.inc(
                    1, cause=encoded.cause or "error"
                )
        return blob, report

    # -- decompression ----------------------------------------------------

    def decompress(self, data: bytes, *, errors: str = "raise") -> np.ndarray:
        """Restore the exact original array from a container.

        Parameters
        ----------
        data:
            A serialized ISOBAR container.
        errors:
            ``"raise"`` (default) aborts on the first damaged chunk;
            ``"salvage-skip"`` and ``"salvage-zero"`` (legacy spellings
            ``"skip"`` / ``"zero_fill"``) delegate to
            :func:`repro.core.salvage.salvage_decompress` and return
            whatever could be recovered (skipping lost chunks, or
            substituting zero elements for them, respectively).
        """
        errors = normalize_errors(errors)
        if errors != "raise":
            from repro.core.salvage import salvage_decompress

            return salvage_decompress(
                data, policy=salvage_policy_for(errors),
                metrics=self._metrics,
            ).values

        wall_start = time.perf_counter()
        tracer = self._tracer()
        header, offset = ContainerHeader.decode(data)
        codec = get_codec(header.codec_name)
        width = header.element_width

        # Chunks decode straight into one preallocated result; no
        # per-chunk array plus concatenation pass.
        flat = np.empty(header.n_elements, dtype=header.dtype)
        cursor = 0
        decode_start = time.perf_counter()
        for index in range(header.n_chunks):
            record_offset = offset
            meta, offset = ChunkMetadata.decode(data, offset, width)
            end_comp = offset + meta.compressed_size
            end_incomp = end_comp + meta.incompressible_size
            if end_incomp > len(data):
                raise TruncatedContainerError(
                    f"chunk {index} at byte offset {record_offset}: "
                    "container truncated inside chunk payload"
                )
            compressed = data[offset:end_comp]
            incompressible = data[end_comp:end_incomp]
            offset = end_incomp
            end_cursor = cursor + meta.n_elements
            # A chunk overflowing the declared total still decodes (into
            # a scratch array) so the element-count mismatch is reported
            # as the format error below, matching the legacy behaviour.
            target = flat[cursor:end_cursor] if end_cursor <= flat.size else None
            decode_chunk_payload(
                header,
                codec,
                meta,
                compressed,
                incompressible,
                chunk_index=index,
                byte_offset=record_offset,
                out=target,
            )
            cursor = end_cursor
        tracer.add(
            "decode", time.perf_counter() - decode_start, bytes_in=offset
        )
        self._instruments.chunks_decoded.inc(header.n_chunks)

        merge_start = time.perf_counter()
        if cursor != header.n_elements:
            raise ContainerFormatError(
                f"container reassembled {cursor} elements, header "
                f"declares {header.n_elements}"
            )
        tracer.add(
            "merge", time.perf_counter() - merge_start, bytes_out=flat.nbytes
        )
        if self._metrics.enabled:
            self._finish_decompress_run(
                header, len(data), flat.nbytes, tracer,
                time.perf_counter() - wall_start,
            )
        n_shape = 1
        for dim in header.shape:
            n_shape *= dim
        if header.shape and n_shape == header.n_elements:
            return flat.reshape(header.shape)
        return flat

    def _finish_decompress_run(
        self,
        header: ContainerHeader,
        input_bytes: int,
        output_bytes: int,
        tracer: AnyTracer,
        wall_seconds: float,
    ) -> None:
        """Record run-level decode metrics and build the per-run report."""
        self._instruments.runs.inc(1, operation="decompress")
        self._instruments.input_bytes.inc(input_bytes, operation="decompress")
        self._instruments.output_bytes.inc(output_bytes, operation="decompress")
        self._last_report = PipelineReport(
            operation="decompress",
            codec_name=header.codec_name,
            linearization=header.linearization.value,
            n_chunks=header.n_chunks,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            stage_seconds=tracer.stage_seconds(),
            wall_seconds=wall_seconds,
        )


# Deprecated aliases warn once per process, not once per call — the
# one-liners sit in tight loops in older scripts.
_DEPRECATION_WARNED: set[str] = set()
_DEPRECATION_LOCK = threading.Lock()


def _warn_deprecated(name: str, replacement: str) -> None:
    with _DEPRECATION_LOCK:
        if name in _DEPRECATION_WARNED:
            return
        _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name}() is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_deprecation_warnings() -> None:
    """Testing hook: re-arm the once-per-process deprecation warnings."""
    with _DEPRECATION_LOCK:
        _DEPRECATION_WARNED.clear()


def isobar_compress(
    values: np.ndarray,
    preference: Preference | str = Preference.RATIO,
    *,
    codec: str | None = None,
    linearization: Linearization | str | None = None,
    config: IsobarConfig | None = None,
) -> bytes:
    """Deprecated alias of :func:`repro.compress`.

    One-call ISOBAR compression with the paper's defaults.  Retained
    for backwards compatibility; emits a :class:`DeprecationWarning`
    (once per process) and forwards to the facade.
    """
    _warn_deprecated("isobar_compress", "repro.compress")
    from repro.api import compress

    return compress(
        values,
        preference=preference,
        codec=codec,
        linearization=linearization,
        config=config,
    )


def isobar_decompress(data: bytes, *, errors: str = "raise") -> np.ndarray:
    """Deprecated alias of :func:`repro.decompress`.

    ``errors`` selects the damage policy: ``"raise"`` (strict,
    default), ``"salvage-skip"`` or ``"salvage-zero"`` (lenient salvage
    decode — see :func:`repro.core.salvage.salvage_decompress`); the
    legacy ``"skip"`` / ``"zero_fill"`` spellings keep working.
    """
    _warn_deprecated("isobar_decompress", "repro.decompress")
    from repro.api import decompress

    return decompress(data, errors=errors)
