"""The ISOBAR-compress workflow (Algorithm 1) over chunked inputs.

:class:`IsobarCompressor` wires the components together exactly as
Figure 2 draws them:

1. the EUPA-selector picks the solver and linearization from a timed
   sample (once per stream — Section II-F shows the choice is stable
   across a whole simulation);
2. each chunk runs through the ISOBAR-analyzer;
3. improvable chunks are partitioned — compressible byte-columns go
   through the solver, incompressible ones are stored raw;
4. undetermined chunks pass to the solver whole;
5. the merger writes one self-describing container: global header,
   then per chunk its metadata, solver output and raw noise bytes
   (Figure 7).

Decompression replays the container without re-analysis; every chunk
carries a CRC32 of its raw bytes, so corruption surfaces as
:class:`~repro.core.exceptions.ChecksumError` instead of silent damage.
Strict decoding is the default; ``decompress(data, errors="skip")`` or
``errors="zero_fill"`` instead delegates to the lenient salvage decoder
(:mod:`repro.core.salvage`), which resynchronizes over damaged regions
and returns everything recoverable.

Both directions can be observed: ``IsobarCompressor(collect_metrics=
True)`` records per-stage wall-clock, chunk outcomes and byte routing
into a :class:`~repro.observability.MetricsRegistry` and summarises
each run as a :class:`~repro.observability.PipelineReport` (see
``docs/observability.md``); the default leaves null instruments on the
hot path.
"""

from __future__ import annotations

import time
import zlib as _zlib
from dataclasses import dataclass

import numpy as np

from repro.analysis.bytefreq import element_width, matrix_to_elements
from repro.codecs.base import Codec, get_codec
from repro.core.analyzer import analyze
from repro.core.chunking import iter_chunks
from repro.core.exceptions import (
    ChecksumError,
    CodecError,
    ContainerFormatError,
    IsobarError,
    TruncatedContainerError,
)
from repro.core.metadata import ChunkMetadata, ChunkMode, ContainerHeader
from repro.core.partitioner import partition, reassemble_matrix
from repro.core.preferences import IsobarConfig, Linearization, Preference
from repro.core.selector import EupaSelector, SelectorDecision
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.observability.report import PipelineReport
from repro.observability.trace import NULL_TRACER, Tracer

__all__ = [
    "ChunkReport",
    "CompressionResult",
    "IsobarCompressor",
    "decode_chunk_payload",
    "isobar_compress",
    "isobar_decompress",
]


def decode_chunk_payload(
    header: ContainerHeader,
    codec: Codec,
    meta: ChunkMetadata,
    compressed: bytes,
    incompressible: bytes,
    *,
    chunk_index: int | None = None,
    byte_offset: int | None = None,
) -> np.ndarray:
    """Decode one chunk's payload streams back into an element array.

    This is the single authoritative chunk decoder shared by the serial
    pipeline, the parallel decoder, the streaming reader, the validator
    and the salvage scanner.  Every failure — solver error, stream-length
    mismatch, CRC mismatch — is re-raised as an :class:`IsobarError`
    whose message carries the chunk index and absolute byte offset when
    the caller provides them, so corruption reports always point at the
    damaged region instead of a bare ``zlib`` error code.
    """
    where = ""
    if chunk_index is not None:
        where = f"chunk {chunk_index}"
        if byte_offset is not None:
            where += f" at byte offset {byte_offset}"
        where += ": "
    try:
        if meta.mode is ChunkMode.PARTITIONED:
            comp_stream = codec.decompress(compressed)
            matrix = reassemble_matrix(
                comp_stream,
                incompressible,
                meta.mask,
                header.linearization,
                meta.n_elements,
            )
            chunk = matrix_to_elements(matrix, header.dtype)
            raw = matrix.tobytes()
        else:
            raw = codec.decompress(compressed)
            expected = meta.n_elements * header.element_width
            if len(raw) != expected:
                raise ContainerFormatError(
                    f"chunk payload decodes to {len(raw)} bytes, "
                    f"expected {expected}"
                )
            chunk = np.frombuffer(
                raw, dtype=header.dtype.newbyteorder("<")
            ).astype(header.dtype, copy=False)
    except CodecError as exc:
        raise CodecError(f"{where}{exc}") from exc
    except ChecksumError:
        raise
    except IsobarError as exc:
        # Stream-length / reassembly inconsistencies become format
        # errors: the payload structure does not match its metadata.
        raise ContainerFormatError(f"{where}{exc}") from exc
    if _zlib.crc32(raw) != meta.raw_crc32:
        raise ChecksumError(
            f"{where}chunk CRC mismatch (stored {meta.raw_crc32:#010x}, "
            f"computed {_zlib.crc32(raw):#010x})"
        )
    return chunk


def _little_endian_bytes(chunk: np.ndarray) -> bytes:
    """Raw chunk bytes in platform-independent little-endian order."""
    le = chunk.astype(chunk.dtype.newbyteorder("<"), copy=False)
    return np.ascontiguousarray(le).tobytes()


@dataclass(frozen=True)
class ChunkReport:
    """Per-chunk accounting produced by :meth:`IsobarCompressor.compress_detailed`."""

    index: int
    n_elements: int
    mode: ChunkMode
    improvable: bool
    htc_bytes_percent: float
    raw_bytes: int
    stored_bytes: int
    analyze_seconds: float
    compress_seconds: float
    #: Uncompressed bytes routed through the solver (all of ``raw_bytes``
    #: for passthrough chunks, only the signal columns when partitioned).
    solver_bytes: int = 0
    #: Noise-column bytes stored verbatim (0 for passthrough chunks).
    noise_bytes: int = 0


@dataclass(frozen=True)
class CompressionResult:
    """Full outcome of one compression run, with measured statistics."""

    payload: bytes
    header: ContainerHeader
    decision: SelectorDecision
    chunks: tuple[ChunkReport, ...]
    analyze_seconds: float
    compress_seconds: float
    select_seconds: float

    @property
    def original_bytes(self) -> int:
        """Uncompressed input size in bytes."""
        return self.header.n_elements * self.header.element_width

    @property
    def compressed_bytes(self) -> int:
        """Size of the produced container."""
        return len(self.payload)

    @property
    def ratio(self) -> float:
        """Compression ratio (Eq. 1) including all container overhead."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.original_bytes / self.compressed_bytes

    @property
    def improvable(self) -> bool:
        """True when at least one chunk took the partitioned path."""
        return any(chunk.improvable for chunk in self.chunks)

    @property
    def solver_bytes(self) -> int:
        """Uncompressed bytes routed through the solver, summed."""
        return sum(chunk.solver_bytes for chunk in self.chunks)

    @property
    def noise_bytes(self) -> int:
        """Incompressible bytes stored verbatim, summed."""
        return sum(chunk.noise_bytes for chunk in self.chunks)


class IsobarCompressor:
    """End-to-end ISOBAR-compress preconditioner + solver pipeline.

    Parameters
    ----------
    config:
        Workflow configuration; defaults mirror the paper (tau = 1.42,
        375 000-element chunks, zlib/bzip2 candidates, ratio
        preference).
    collect_metrics:
        When true, every run records per-stage timings, chunk outcomes
        and byte routing into :attr:`metrics` and summarises itself as
        :attr:`last_report`.  The default leaves shared null
        instruments on the hot path (no measurable overhead).
    metrics:
        An existing :class:`~repro.observability.MetricsRegistry` to
        record into (shared registries aggregate across compressors);
        implies ``collect_metrics=True``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.pipeline import IsobarCompressor
    >>> data = np.linspace(0.0, 1.0, 10_000)
    >>> compressor = IsobarCompressor()
    >>> blob = compressor.compress(data)
    >>> restored = compressor.decompress(blob)
    >>> bool(np.array_equal(restored, data))
    True
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        *,
        collect_metrics: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        self._config = config or IsobarConfig()
        if metrics is not None:
            self._metrics = metrics
        elif collect_metrics:
            self._metrics = MetricsRegistry()
        else:
            self._metrics = NULL_REGISTRY
        self._instruments = PipelineInstruments(self._metrics)
        self._selector = EupaSelector(self._config, metrics=self._metrics)
        self._last_report: PipelineReport | None = None

    @property
    def config(self) -> IsobarConfig:
        """The active workflow configuration."""
        return self._config

    @property
    def collect_metrics(self) -> bool:
        """Whether this compressor records observability data."""
        return self._metrics.enabled

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The registry accumulating across runs (``None`` if disabled)."""
        return self._metrics if self._metrics.enabled else None

    @property
    def last_report(self) -> PipelineReport | None:
        """The most recent run's :class:`~repro.observability.PipelineReport`
        (``None`` until an instrumented run completes)."""
        return self._last_report

    def _tracer(self):
        """A fresh per-run tracer, or the shared null tracer."""
        if self._metrics.enabled:
            return Tracer(self._metrics)
        return NULL_TRACER

    # -- compression ------------------------------------------------------

    def compress(self, values: np.ndarray) -> bytes:
        """Compress ``values`` into a self-contained ISOBAR container."""
        return self.compress_detailed(values).payload

    def compress_detailed(self, values: np.ndarray) -> CompressionResult:
        """Compress ``values`` and return payload plus full statistics."""
        wall_start = time.perf_counter()
        tracer = self._tracer()
        arr = np.asarray(values)
        element_width(arr.dtype)  # validates dtype kind
        flat = arr.reshape(-1)

        select_start = time.perf_counter()
        decision, codec = self._decide(flat)
        select_seconds = time.perf_counter() - select_start
        tracer.add("select", select_seconds)

        chunk_blobs: list[bytes] = []
        reports: list[ChunkReport] = []
        total_analyze = 0.0
        total_compress = 0.0
        for span, chunk in iter_chunks(flat, self._config.chunk_elements):
            blob, report = self._compress_chunk(
                span.index, chunk, decision, codec, tracer
            )
            chunk_blobs.append(blob)
            reports.append(report)
            total_analyze += report.analyze_seconds
            total_compress += report.compress_seconds

        merge_start = time.perf_counter()
        header = ContainerHeader(
            dtype=arr.dtype,
            n_elements=flat.size,
            shape=arr.shape,
            codec_name=decision.codec_name,
            linearization=decision.linearization,
            preference=self._config.preference,
            tau=self._config.tau,
            chunk_elements=self._config.chunk_elements,
            n_chunks=len(chunk_blobs),
        )
        payload = header.encode() + b"".join(chunk_blobs)
        tracer.add(
            "merge", time.perf_counter() - merge_start,
            bytes_out=len(payload),
        )
        result = CompressionResult(
            payload=payload,
            header=header,
            decision=decision,
            chunks=tuple(reports),
            analyze_seconds=total_analyze,
            compress_seconds=total_compress,
            select_seconds=select_seconds,
        )
        if self._metrics.enabled:
            self._finish_compress_run(
                result, tracer, time.perf_counter() - wall_start
            )
        return result

    def _finish_compress_run(
        self, result: CompressionResult, tracer, wall_seconds: float
    ) -> None:
        """Record run-level metrics and build the per-run report."""
        improvable = sum(1 for c in result.chunks if c.improvable)
        self._instruments.runs.inc(1, operation="compress")
        self._instruments.input_bytes.inc(
            result.original_bytes, operation="compress"
        )
        self._instruments.output_bytes.inc(
            result.compressed_bytes, operation="compress"
        )
        self._last_report = PipelineReport(
            operation="compress",
            codec_name=result.decision.codec_name,
            linearization=result.decision.linearization.value,
            n_chunks=len(result.chunks),
            improvable_chunks=improvable,
            undetermined_chunks=len(result.chunks) - improvable,
            solver_bytes=result.solver_bytes,
            raw_bytes=result.noise_bytes,
            input_bytes=result.original_bytes,
            output_bytes=result.compressed_bytes,
            stage_seconds=tracer.stage_seconds(),
            wall_seconds=wall_seconds,
        )

    def _decide(self, flat: np.ndarray) -> tuple[SelectorDecision, Codec]:
        """Run the selector on the leading chunk's analysis."""
        if flat.size == 0:
            # Empty stream: nothing to sample; fall back to configured
            # or first-candidate codec with row linearization.
            codec_name = self._config.codec or self._config.candidate_codecs[0]
            linearization = self._config.linearization or Linearization.ROW
            decision = SelectorDecision(
                codec_name=codec_name,
                linearization=linearization,
                preference=self._config.preference,
                improvable=False,
                candidates=(),
                sample_elements=0,
            )
            return decision, get_codec(codec_name)
        lead = flat[: min(flat.size, self._config.chunk_elements)]
        analysis = analyze(lead, tau=self._config.tau)
        decision = self._selector.select(flat, analysis=analysis)
        return decision, get_codec(decision.codec_name)

    def _compress_chunk(
        self,
        index: int,
        chunk: np.ndarray,
        decision: SelectorDecision,
        codec: Codec,
        tracer=NULL_TRACER,
    ) -> tuple[bytes, ChunkReport]:
        raw = _little_endian_bytes(chunk)
        crc = _zlib.crc32(raw)

        analyze_start = time.perf_counter()
        analysis = analyze(chunk, tau=self._config.tau)
        analyze_seconds = time.perf_counter() - analyze_start
        tracer.add("analyze", analyze_seconds, bytes_in=len(raw))

        partition_seconds = 0.0
        solve_start = time.perf_counter()
        if analysis.improvable:
            part = partition(chunk, analysis.mask, decision.linearization)
            partition_seconds = time.perf_counter() - solve_start
            solve_start = time.perf_counter()
            compressed = codec.compress(part.compressible)
            solve_seconds = time.perf_counter() - solve_start
            solver_in = len(part.compressible)
            incompressible = part.incompressible
            mode = ChunkMode.PARTITIONED
            tracer.add("partition", partition_seconds, bytes_in=len(raw))
        else:
            compressed = codec.compress(raw)
            solve_seconds = time.perf_counter() - solve_start
            solver_in = len(raw)
            incompressible = b""
            mode = ChunkMode.PASSTHROUGH
        tracer.add(
            "solve", solve_seconds,
            bytes_in=solver_in, bytes_out=len(compressed),
        )
        compress_seconds = partition_seconds + solve_seconds

        meta = ChunkMetadata(
            n_elements=chunk.size,
            mode=mode,
            mask=analysis.mask,
            compressed_size=len(compressed),
            incompressible_size=len(incompressible),
            raw_crc32=crc,
        )
        blob = meta.encode() + compressed + incompressible
        report = ChunkReport(
            index=index,
            n_elements=int(chunk.size),
            mode=mode,
            improvable=analysis.improvable,
            htc_bytes_percent=analysis.htc_bytes_percent,
            raw_bytes=len(raw),
            stored_bytes=len(blob),
            analyze_seconds=analyze_seconds,
            compress_seconds=compress_seconds,
            solver_bytes=solver_in,
            noise_bytes=len(incompressible),
        )
        if self._metrics.enabled:
            self._instruments.record_chunk_outcome(
                improvable=analysis.improvable,
                solver_bytes=solver_in,
                raw_bytes=len(incompressible),
                stored_bytes=len(blob),
                seconds=analyze_seconds + compress_seconds,
            )
        return blob, report

    # -- decompression ----------------------------------------------------

    def decompress(self, data: bytes, *, errors: str = "raise") -> np.ndarray:
        """Restore the exact original array from a container.

        Parameters
        ----------
        data:
            A serialized ISOBAR container.
        errors:
            ``"raise"`` (default) aborts on the first damaged chunk;
            ``"skip"`` and ``"zero_fill"`` delegate to
            :func:`repro.core.salvage.salvage_decompress` and return
            whatever could be recovered (skipping lost chunks, or
            substituting zero elements for them, respectively).
        """
        if errors != "raise":
            from repro.core.salvage import salvage_decompress

            return salvage_decompress(
                data, policy=errors, metrics=self._metrics
            ).values

        wall_start = time.perf_counter()
        tracer = self._tracer()
        header, offset = ContainerHeader.decode(data)
        codec = get_codec(header.codec_name)
        width = header.element_width

        pieces: list[np.ndarray] = []
        decode_start = time.perf_counter()
        for index in range(header.n_chunks):
            record_offset = offset
            meta, offset = ChunkMetadata.decode(data, offset, width)
            end_comp = offset + meta.compressed_size
            end_incomp = end_comp + meta.incompressible_size
            if end_incomp > len(data):
                raise TruncatedContainerError(
                    f"chunk {index} at byte offset {record_offset}: "
                    "container truncated inside chunk payload"
                )
            compressed = data[offset:end_comp]
            incompressible = data[end_comp:end_incomp]
            offset = end_incomp
            pieces.append(
                decode_chunk_payload(
                    header,
                    codec,
                    meta,
                    compressed,
                    incompressible,
                    chunk_index=index,
                    byte_offset=record_offset,
                )
            )
        tracer.add(
            "decode", time.perf_counter() - decode_start, bytes_in=offset
        )
        self._instruments.chunks_decoded.inc(header.n_chunks)

        merge_start = time.perf_counter()
        if pieces:
            # concatenate() normalises byte order to native; restore the
            # header's exact dtype (e.g. big-endian inputs round-trip).
            flat = np.concatenate(pieces).astype(header.dtype, copy=False)
        else:
            flat = np.empty(0, dtype=header.dtype)
        if flat.size != header.n_elements:
            raise ContainerFormatError(
                f"container reassembled {flat.size} elements, header "
                f"declares {header.n_elements}"
            )
        tracer.add(
            "merge", time.perf_counter() - merge_start, bytes_out=flat.nbytes
        )
        if self._metrics.enabled:
            self._finish_decompress_run(
                header, len(data), flat.nbytes, tracer,
                time.perf_counter() - wall_start,
            )
        n_shape = 1
        for dim in header.shape:
            n_shape *= dim
        if header.shape and n_shape == header.n_elements:
            return flat.reshape(header.shape)
        return flat

    def _finish_decompress_run(
        self,
        header: ContainerHeader,
        input_bytes: int,
        output_bytes: int,
        tracer,
        wall_seconds: float,
    ) -> None:
        """Record run-level decode metrics and build the per-run report."""
        self._instruments.runs.inc(1, operation="decompress")
        self._instruments.input_bytes.inc(input_bytes, operation="decompress")
        self._instruments.output_bytes.inc(output_bytes, operation="decompress")
        self._last_report = PipelineReport(
            operation="decompress",
            codec_name=header.codec_name,
            linearization=header.linearization.value,
            n_chunks=header.n_chunks,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            stage_seconds=tracer.stage_seconds(),
            wall_seconds=wall_seconds,
        )


def isobar_compress(
    values: np.ndarray,
    preference: Preference | str = Preference.RATIO,
    *,
    codec: str | None = None,
    linearization: Linearization | str | None = None,
    config: IsobarConfig | None = None,
) -> bytes:
    """One-call ISOBAR compression with the paper's defaults.

    Parameters
    ----------
    values:
        Fixed-width numeric array of any shape.
    preference:
        ``"ratio"`` or ``"speed"`` (EUPA-selector target).
    codec / linearization:
        Optional explicit overrides (Section II-C allows fixing both).
    config:
        Full configuration object; when given, the other keyword
        arguments are applied on top of it.
    """
    base = config or IsobarConfig()
    overrides: dict[str, object] = {"preference": Preference.parse(preference)}
    if codec is not None:
        overrides["codec"] = codec
    if linearization is not None:
        overrides["linearization"] = Linearization.parse(linearization)
    return IsobarCompressor(base.replace(**overrides)).compress(values)


def isobar_decompress(data: bytes, *, errors: str = "raise") -> np.ndarray:
    """Restore an array compressed by :func:`isobar_compress`.

    ``errors`` selects the damage policy: ``"raise"`` (strict,
    default), ``"skip"`` or ``"zero_fill"`` (lenient salvage decode —
    see :func:`repro.core.salvage.salvage_decompress`).
    """
    return IsobarCompressor().decompress(data, errors=errors)
