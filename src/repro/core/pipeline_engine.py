"""Pipelined block-worker execution engine for chunk parallelism.

The ISOBAR workflow compresses chunks independently (Section II-D), so
chunk work maps onto a classic compression pipeline: a bounded feed
queue of sequence-numbered jobs, ``n_workers`` worker threads that run
the (GIL-releasing) per-chunk function, and ordered reassembly through
sequence-numbered result slots — the design python-isal's
``igzip_threaded`` proved for DEFLATE streams, generalised over any
block function.

Three properties the engine guarantees:

* **Bounded memory.**  At most ``max_inflight`` blocks are fed but not
  yet consumed (queued + being worked + parked in result slots), so an
  arbitrarily long job stream never buffers more than a fixed number
  of chunks no matter how the workers and the consumer interleave.
* **Ordered reassembly.**  Results are yielded strictly in submission
  order regardless of worker completion order; a fast block parked in
  its slot waits for its slower predecessors.
* **Prompt cancellation.**  :meth:`PipelinedBlockRunner.cancel` (and
  abandoning the result iterator) stops the feeder and discards queued
  jobs; blocks already being worked finish, nothing queued starts —
  exactly ``ThreadPoolExecutor.shutdown(cancel_futures=True)``
  semantics, which the resilience layer's fail-fast contract relies
  on.

Worker exceptions never kill the engine: each failed block surfaces as
a :class:`BlockResult` carrying the original exception, in order, so
the consumer decides per block whether to retry, degrade or abort.

With a bound :class:`~repro.observability.instruments.PipelineInstruments`
the engine exports per-worker wait-time counters and feed-queue /
in-flight gauges (see ``docs/observability.md``); without one the hot
path records nothing.
"""

from __future__ import annotations

import queue as _queue
import threading
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Generic,
    Iterable,
    Iterator,
    Protocol,
    TypeVar,
)

from repro.core.exceptions import ConfigurationError

__all__ = [
    "BlockResult",
    "PipelinedBlockRunner",
    "RunnerStats",
    "bounded_relay",
    "default_max_inflight",
]

JobT = TypeVar("JobT")
ResultT = TypeVar("ResultT")

#: Poison pill telling a worker to exit; compared by identity.
_SENTINEL: Any = object()
#: Slot marker for a job discarded after cancel() (never yielded).
_CANCELLED: Any = object()


def default_max_inflight(n_workers: int) -> int:
    """The default backpressure bound for ``n_workers`` workers.

    Two blocks per worker keeps every worker busy while the consumer
    drains the previous result, without buffering a long tail of
    completed blocks; a floor of 4 keeps tiny pools pipelined.
    """
    return max(2 * n_workers, 4)


class _EngineInstruments(Protocol):
    """The slice of ``PipelineInstruments`` the engine records into."""

    parallel_queue_depth: Any
    parallel_inflight_blocks: Any
    parallel_worker_wait_seconds: Any


@dataclass(frozen=True)
class BlockResult(Generic[ResultT]):
    """One block's outcome, yielded in submission order.

    Exactly one of ``value`` / ``error`` is meaningful: ``error`` is
    ``None`` for a successful block, else the exception the block
    function raised (the value is then unset).
    """

    seq: int
    value: ResultT | None = None
    error: BaseException | None = None


@dataclass
class RunnerStats:
    """Engine-side accounting, readable after (or during) a run."""

    #: Blocks fed to workers so far.
    fed_blocks: int = 0
    #: Blocks the consumer has taken back out, in order.
    consumed_blocks: int = 0
    #: High-water mark of blocks in flight (fed - consumed).
    peak_inflight: int = 0
    #: Seconds workers spent blocked waiting for the feed queue.
    worker_wait_seconds: dict[int, float] = field(default_factory=dict)


class _OrderedSlots:
    """Sequence-numbered result slots with in-order retrieval.

    Workers deposit results under their block's sequence number in any
    order; the consumer blocks until the *next* sequence number is
    present.  The slot dict never grows past the engine's in-flight
    bound, because the feeder cannot run ahead of the consumer by more
    than ``max_inflight`` blocks.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._slots: dict[int, Any] = {}
        self._next = 0

    def put(self, seq: int, item: Any) -> None:
        with self._cond:
            self._slots[seq] = item
            if seq == self._next:
                self._cond.notify_all()

    def get_next(self) -> Any:
        with self._cond:
            while self._next not in self._slots:
                self._cond.wait()
            item = self._slots.pop(self._next)
            self._next += 1
            return item


class PipelinedBlockRunner(Generic[JobT, ResultT]):
    """Queue-fed worker pipeline with ordered, backpressured results.

    Parameters
    ----------
    n_workers:
        Worker threads running the block function.
    max_inflight:
        Backpressure bound: maximum blocks fed but not yet consumed.
        Defaults to :func:`default_max_inflight`.
    name:
        Thread-name prefix, for debuggability.
    instruments:
        Optional :class:`~repro.observability.instruments.PipelineInstruments`;
        when given, the engine records the feed-queue depth gauge, the
        in-flight gauge and per-worker wait-time counters.

    Usage::

        runner = PipelinedBlockRunner(n_workers=4, max_inflight=8)
        for result in runner.run(jobs, fn):
            if result.error is not None:
                runner.cancel()          # queued jobs never start
                raise result.error
            consume(result.value)

    ``run`` may be called once per runner instance.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        max_inflight: int | None = None,
        name: str = "isobar-pipe",
        instruments: _EngineInstruments | None = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be positive, got {n_workers}"
            )
        if max_inflight is None:
            max_inflight = default_max_inflight(n_workers)
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        self._n_workers = n_workers
        self._max_inflight = max_inflight
        self._name = name
        self._instruments = instruments
        self._stop = threading.Event()
        self._started = False
        self.stats = RunnerStats(
            worker_wait_seconds={i: 0.0 for i in range(n_workers)}
        )

    @property
    def n_workers(self) -> int:
        """Configured worker-thread count."""
        return self._n_workers

    @property
    def max_inflight(self) -> int:
        """Configured backpressure bound (blocks fed but unconsumed)."""
        return self._max_inflight

    def cancel(self) -> None:
        """Stop feeding and discard queued jobs.

        Blocks already being worked finish (their results are simply
        never consumed); queued blocks are dropped without running.
        Idempotent and thread-safe.
        """
        self._stop.set()

    def run(
        self,
        jobs: Iterable[JobT],
        fn: Callable[[int, JobT], ResultT],
    ) -> Iterator[BlockResult[ResultT]]:
        """Feed ``jobs`` through the workers; yield ordered results.

        ``fn`` is called as ``fn(seq, job)`` on a worker thread.  The
        returned iterator owns the worker threads: exhausting it,
        closing it, or leaving it to be garbage collected joins them.
        An exception raised by the ``jobs`` iterable itself surfaces
        (re-raised at the consumer) after every previously fed block's
        result.
        """
        if self._started:
            raise ConfigurationError("runner.run() may only be called once")
        self._started = True
        return self._run(jobs, fn)

    # -- internals --------------------------------------------------------

    def _record_depth(self, feed: "_queue.Queue[Any]") -> None:
        if self._instruments is not None:
            self._instruments.parallel_queue_depth.set(
                feed.qsize(), queue="feed"
            )

    def _record_inflight(self, inflight: int) -> None:
        if inflight > self.stats.peak_inflight:
            self.stats.peak_inflight = inflight
        if self._instruments is not None:
            self._instruments.parallel_inflight_blocks.set(inflight)

    def _run(
        self,
        jobs: Iterable[JobT],
        fn: Callable[[int, JobT], ResultT],
    ) -> Iterator[BlockResult[ResultT]]:
        feed: "_queue.Queue[Any]" = _queue.Queue(maxsize=self._max_inflight)
        slots = _OrderedSlots()
        sem = threading.Semaphore(self._max_inflight)
        stop = self._stop
        stats = self.stats
        stats_lock = threading.Lock()

        def _feed() -> None:
            seq = 0
            end_item: tuple[str, Any] = ("end", None)
            try:
                for job in jobs:
                    # The semaphore is the backpressure valve: it only
                    # frees up when the consumer takes a result out, so
                    # fed-but-unconsumed blocks never exceed the bound.
                    while not sem.acquire(timeout=0.05):
                        if stop.is_set():
                            break
                    if stop.is_set():
                        break
                    feed.put((seq, job))
                    with stats_lock:
                        stats.fed_blocks += 1
                        self._record_inflight(
                            stats.fed_blocks - stats.consumed_blocks
                        )
                    self._record_depth(feed)
                    seq += 1
            except BaseException as exc:  # noqa: BLE001 - relayed in order
                end_item = ("producer_error", exc)
            slots.put(seq, end_item)
            for _ in range(self._n_workers):
                feed.put(_SENTINEL)

        def _work(worker_index: int) -> None:
            while True:
                wait_start = time.perf_counter()
                item = feed.get()
                waited = time.perf_counter() - wait_start
                with stats_lock:
                    stats.worker_wait_seconds[worker_index] += waited
                if self._instruments is not None:
                    self._instruments.parallel_worker_wait_seconds.inc(
                        waited, worker=str(worker_index)
                    )
                self._record_depth(feed)
                if item is _SENTINEL:
                    return
                seq, job = item
                if stop.is_set():
                    # cancel(): queued work must not start, but the
                    # consumer may still be draining — park a marker so
                    # no sequence number is ever awaited forever.
                    slots.put(seq, ("cancelled", _CANCELLED))
                    continue
                try:
                    value = fn(seq, job)
                except BaseException as exc:  # noqa: BLE001 - containment
                    slots.put(seq, ("result", BlockResult(seq, error=exc)))
                else:
                    slots.put(seq, ("result", BlockResult(seq, value=value)))

        threads = [
            threading.Thread(
                target=_feed, name=f"{self._name}-feeder", daemon=True
            )
        ]
        threads.extend(
            threading.Thread(
                target=_work, args=(i,),
                name=f"{self._name}-worker-{i}", daemon=True,
            )
            for i in range(self._n_workers)
        )
        for thread in threads:
            thread.start()
        try:
            while True:
                kind, item = slots.get_next()
                if kind == "end":
                    return
                if kind == "producer_error":
                    raise item
                if kind == "cancelled":
                    return
                with stats_lock:
                    stats.consumed_blocks += 1
                    self._record_inflight(
                        stats.fed_blocks - stats.consumed_blocks
                    )
                sem.release()
                yield item
        finally:
            stop.set()
            # Unblock a feeder stuck on a full feed queue, then make
            # sure every worker sees a sentinel even if the feeder
            # exited before queueing them all.
            try:
                while True:
                    feed.get_nowait()
            except _queue.Empty:
                pass
            for _ in range(self._n_workers):
                try:
                    feed.put_nowait(_SENTINEL)
                except _queue.Full:
                    break
            for thread in threads:
                thread.join(timeout=5.0)
            if self._instruments is not None:
                self._instruments.parallel_queue_depth.set(0, queue="feed")
                self._instruments.parallel_inflight_blocks.set(0)


def bounded_relay(
    items: Iterable[Any], depth: int, *, name: str = "isobar-relay"
) -> Iterator[Any]:
    """Produce ``items`` on a helper thread through a bounded queue.

    The queue depth is the backpressure bound: at most ``depth`` items
    are in flight between the producer and the consumer, so a slow
    consumer stalls production instead of buffering the stream in
    memory.  A producer exception is re-raised at the consuming end;
    abandoning the generator stops the producer promptly.

    This is the readahead primitive behind ``stream_compress`` /
    ``stream_decompress`` — the single-worker degenerate case of the
    block pipeline, kept allocation-free.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be positive, got {depth}")
    q: "_queue.Queue[tuple[str, Any]]" = _queue.Queue(maxsize=depth)
    stop = threading.Event()
    _END = object()

    def _produce() -> None:
        try:
            for item in items:
                while not stop.is_set():
                    try:
                        q.put(("item", item), timeout=0.1)
                        break
                    except _queue.Full:
                        continue
                if stop.is_set():
                    return
            tail = ("end", _END)
        except BaseException as exc:  # noqa: BLE001 - relayed to consumer
            tail = ("err", exc)
        while not stop.is_set():
            try:
                q.put(tail, timeout=0.1)
                return
            except _queue.Full:
                continue

    producer = threading.Thread(target=_produce, name=name, daemon=True)
    producer.start()
    try:
        while True:
            kind, value = q.get()
            if kind == "item":
                yield value
            elif kind == "err":
                raise value
            else:
                return
    finally:
        stop.set()
