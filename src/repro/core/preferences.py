"""User-facing enumerations and configuration for the ISOBAR workflow.

The paper exposes two knobs to the end user:

* a *preference* between compression ratio and throughput (Section II-C,
  the EUPA-selector input ``E``), and
* optional explicit overrides of the solver and the linearization
  strategy applied to the compressible byte-columns.

This module defines those enumerations plus :class:`IsobarConfig`, the
single configuration object threaded through the analyzer, partitioner,
selector and pipeline.  Defaults mirror the paper: ``tau = 1.42``
(Section II-A) and a chunk size of 375 000 elements (Figure 8).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.exceptions import ConfigurationError
from repro.core.resilience import ResiliencePolicy

__all__ = [
    "Preference",
    "Linearization",
    "IsobarConfig",
    "DEFAULT_TAU",
    "DEFAULT_CHUNK_ELEMENTS",
    "ERROR_POLICIES",
    "MIN_ANALYZER_ELEMENTS",
    "normalize_errors",
    "salvage_policy_for",
]

#: Frequency-distribution tolerance fixed by the paper's experiments;
#: the compression-ratio improvement is stable for tau in [1.4, 1.5].
DEFAULT_TAU = 1.42

#: Chunk size (in elements) where compression ratios settle (Figure 8):
#: about 375 000 doubles, i.e. roughly 3 MB.
DEFAULT_CHUNK_ELEMENTS = 375_000

#: Below this element count the byte-column statistics are too thin for
#: the analyzer to make a stable call; the workflow still runs but the
#: analyzer flags the result as low-confidence.
MIN_ANALYZER_ELEMENTS = 1_024

#: Canonical ``errors=`` policies accepted by every decoder (serial,
#: parallel, streaming and random-access): strict decode, or lenient
#: salvage that skips damaged chunks / substitutes zero elements.
ERROR_POLICIES = ("raise", "salvage-skip", "salvage-zero")

# Accepted spellings -> canonical policy.  The bare salvage policy
# names remain valid for backwards compatibility with the original
# per-decoder keywords.
_ERROR_ALIASES = {
    "raise": "raise",
    "salvage-skip": "salvage-skip",
    "salvage-zero": "salvage-zero",
    "skip": "salvage-skip",
    "zero_fill": "salvage-zero",
}

# Canonical policy -> the salvage decoder's internal policy name.
_SALVAGE_POLICY = {
    "raise": "raise",
    "salvage-skip": "skip",
    "salvage-zero": "zero_fill",
}


def normalize_errors(value: str) -> str:
    """Canonicalize an ``errors=`` policy, validating it.

    Every decoder entry point funnels its ``errors`` keyword through
    here, so unknown policies raise the same
    :class:`~repro.core.exceptions.ConfigurationError` everywhere and
    legacy spellings (``"skip"``, ``"zero_fill"``) keep working.
    """
    try:
        return _ERROR_ALIASES[value]
    except (KeyError, TypeError):
        choices = ", ".join(repr(p) for p in ERROR_POLICIES)
        raise ConfigurationError(
            f"unknown errors policy {value!r}; expected one of: {choices}"
        ) from None


def salvage_policy_for(errors: str) -> str:
    """Map a canonical ``errors=`` policy to the salvage policy name."""
    return _SALVAGE_POLICY[normalize_errors(errors)]


class Preference(enum.Enum):
    """End-user optimisation target for the EUPA-selector.

    ``RATIO`` selects the candidate with the best compression ratio;
    ``SPEED`` selects the fastest candidate whose ratio stays above the
    configured acceptability threshold.
    """

    RATIO = "ratio"
    SPEED = "speed"

    @classmethod
    def parse(cls, value: "Preference | str") -> "Preference":
        """Coerce a string such as ``"speed"`` into a :class:`Preference`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            choices = ", ".join(p.value for p in cls)
            raise ConfigurationError(
                f"unknown preference {value!r}; expected one of: {choices}"
            ) from None


class Linearization(enum.Enum):
    """Byte-level linearization applied to the compressible columns.

    ``ROW`` keeps the per-element byte groups adjacent (the bytes of one
    element's compressible columns are emitted together, element by
    element).  ``COLUMN`` emits whole byte-columns one after another —
    the classic "shuffle" layout that groups same-significance bytes.
    """

    ROW = "row"
    COLUMN = "column"

    @classmethod
    def parse(cls, value: "Linearization | str") -> "Linearization":
        """Coerce a string such as ``"row"`` into a :class:`Linearization`."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            choices = ", ".join(m.value for m in cls)
            raise ConfigurationError(
                f"unknown linearization {value!r}; expected one of: {choices}"
            ) from None


@dataclass(frozen=True)
class IsobarConfig:
    """Complete configuration of one ISOBAR-compress run.

    Parameters
    ----------
    tau:
        Analyzer tolerance multiplier.  A byte-column is *incompressible*
        when every one of its 256 value frequencies is below
        ``tau * N / 256``.  Must lie in ``(1.0, 256.0)``; 1 would mark
        every column incompressible only for perfectly uniform data,
        while 256 marks every column compressible.
    chunk_elements:
        Number of elements per chunk fed to the analyzer and solver.
    preference:
        EUPA-selector optimisation target.
    codec:
        Explicit solver override (codec registry name) or ``None`` to let
        the selector decide between the candidate codecs.
    linearization:
        Explicit linearization override or ``None`` for selector choice.
    candidate_codecs:
        Codec names the selector may choose between when no explicit
        override is given.  The paper uses zlib and bzlib2.
    sample_elements:
        Number of elements in the training sample the selector times.
    min_acceptable_ratio_fraction:
        Under the ``SPEED`` preference, a candidate is acceptable when
        its sampled ratio is at least this fraction of the best sampled
        ratio.  1.0 degenerates to the ``RATIO`` behaviour.
    seed:
        Seed for the selector's random sample draw, making runs
        reproducible.
    selector:
        Selection strategy: a registered name — ``"eupa"`` (default,
        the paper's timing probe), ``"learned"`` (predict-first online
        regressor that probes only when uncertain) or ``"cached"``
        (the learned strategy behind a shared content-keyed decision
        cache) — or any object implementing the
        :class:`~repro.core.selector.SelectorStrategy` protocol.
        Every strategy honours the ``preference`` / ``codec`` /
        ``linearization`` overrides identically and only influences
        the decision, never the container format.
    selector_seed:
        Optional dedicated seed for the selector's sample-run draw;
        ``None`` falls back to ``seed``.  Pin it to replay decisions
        and benchmarks independently of the pipeline seed.
    resilience:
        Per-chunk fault-containment policy
        (:class:`~repro.core.resilience.ResiliencePolicy`).  The
        default policy degrades failing chunks through the
        codec → ``zlib`` → raw fallback chain so compression never
        fails on encodable input; ``None`` restores the legacy
        fail-fast behaviour (the first solver error aborts the run).
    """

    tau: float = DEFAULT_TAU
    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS
    preference: Preference = Preference.RATIO
    codec: str | None = None
    linearization: Linearization | None = None
    candidate_codecs: tuple[str, ...] = ("zlib", "bzip2")
    sample_elements: int = 65_536
    min_acceptable_ratio_fraction: float = 0.85
    seed: int = 0x150BA2
    selector: "str | object" = "eupa"
    selector_seed: int | None = None
    resilience: ResiliencePolicy | None = field(default_factory=ResiliencePolicy)

    def __post_init__(self) -> None:
        if not 1.0 < self.tau < 256.0:
            raise ConfigurationError(
                f"tau must be in (1.0, 256.0), got {self.tau!r}"
            )
        if self.chunk_elements < 1:
            raise ConfigurationError(
                f"chunk_elements must be positive, got {self.chunk_elements!r}"
            )
        if self.sample_elements < 1:
            raise ConfigurationError(
                f"sample_elements must be positive, got {self.sample_elements!r}"
            )
        if not 0.0 < self.min_acceptable_ratio_fraction <= 1.0:
            raise ConfigurationError(
                "min_acceptable_ratio_fraction must be in (0, 1], got "
                f"{self.min_acceptable_ratio_fraction!r}"
            )
        if not self.candidate_codecs and self.codec is None:
            raise ConfigurationError(
                "candidate_codecs may not be empty unless an explicit codec "
                "override is set"
            )
        if self.resilience is not None and not isinstance(
            self.resilience, ResiliencePolicy
        ):
            raise ConfigurationError(
                "resilience must be a ResiliencePolicy or None, got "
                f"{self.resilience!r}"
            )
        if isinstance(self.selector, str):
            object.__setattr__(self, "selector", self.selector.lower())
        elif not callable(getattr(self.selector, "select", None)):
            raise ConfigurationError(
                "selector must be a registered strategy name or an object "
                f"with a select() method, got {self.selector!r}"
            )
        if self.selector_seed is not None and not isinstance(
            self.selector_seed, int
        ):
            raise ConfigurationError(
                f"selector_seed must be an int or None, got "
                f"{self.selector_seed!r}"
            )
        # Normalise string inputs so callers may pass plain strings.
        object.__setattr__(self, "preference", Preference.parse(self.preference))
        if self.linearization is not None:
            object.__setattr__(
                self, "linearization", Linearization.parse(self.linearization)
            )

    def replace(self, **changes: object) -> "IsobarConfig":
        """Return a copy of this config with ``changes`` applied."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)
