"""Random access into ISOBAR containers (database-style reads).

Two readers serve point and range queries without decompressing whole
streams:

* :class:`ContainerReader` — in-memory: indexes a container byte string
  with one metadata pass, then decodes chunks on demand;
* :class:`ContainerFile` — file-backed: opens via the trailing
  chunk-index footer in **O(footer)** work (header + footer reads
  only, no chain scan, no whole-stream load) and seeks straight to
  chunk records.  When the footer is missing, truncated, CRC-damaged
  or inconsistent with the header, it falls back transparently to the
  structural scan (emitting
  ``isobar_container_footer_fallback_total{reason=}``), so pre-footer
  containers and damaged archives stay readable.

Both expose the same query surface —

* ``read_chunk(i)`` — decode exactly one chunk;
* ``read_range(start, stop)`` — decode only the chunks overlapping an
  element range and slice out the requested elements;
* ``element(i)`` — point lookup

— and the same ``errors=`` damage policy and ``cache_chunks=`` LRU
bound.  For ICDE's query workloads this is the payoff of chunked
framing: a range read touches ``O(range / chunk_elements)`` chunks
instead of the whole stream.
"""

from __future__ import annotations

import bisect
import os
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import BinaryIO

import numpy as np

from repro.codecs.base import Codec, get_codec
from repro.core.exceptions import (
    ConfigurationError,
    ContainerFormatError,
    InvalidInputError,
    IsobarError,
    TruncatedContainerError,
)
from repro.core.metadata import (
    ChunkMetadata,
    ContainerFooter,
    ContainerHeader,
    chunk_record_nbytes,
    locate_footer,
)
from repro.core.pipeline import decode_chunk_payload
from repro.core.preferences import normalize_errors
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["ChunkIndexEntry", "ContainerFile", "ContainerReader"]

#: Bytes read from the start of a file to parse the global header
#: (generous: headers are well under 1 KiB).
_HEADER_PROBE = 4096
#: Bytes read from EOF to find the footer.  Covers footers of up to
#: ~127 chunks in one read; longer footers declare their length in the
#: trailer and trigger exactly one larger re-read.
_TAIL_PROBE = 4096


@dataclass(frozen=True)
class ChunkIndexEntry:
    """Location of one chunk inside the container byte stream.

    ``metadata`` is populated eagerly by the scanning readers; a
    footer-opened :class:`ContainerFile` leaves it ``None`` until the
    chunk is actually read (the footer alone locates the payload).
    """

    index: int
    element_start: int
    element_stop: int
    payload_offset: int
    metadata: ChunkMetadata | None = None
    compressed_size: int = 0
    incompressible_size: int = 0

    @property
    def n_elements(self) -> int:
        """Elements covered by this chunk."""
        return self.element_stop - self.element_start

    @property
    def payload_end(self) -> int:
        """Absolute offset one past this chunk's last payload byte."""
        return self.payload_offset + self.compressed_size + self.incompressible_size


def _scan_index(
    data: bytes, header: ContainerHeader, offset: int
) -> list[ChunkIndexEntry]:
    """Build the chunk index by walking the metadata chain (O(n_chunks)).

    The pre-footer open path, still used for footer-less containers and
    as the fallback when a footer cannot be trusted.
    """
    index: list[ChunkIndexEntry] = []
    element_cursor = 0
    width = header.element_width
    for i in range(header.n_chunks):
        record_offset = offset
        meta, payload_offset = ChunkMetadata.decode(data, offset, width)
        end = payload_offset + meta.compressed_size + meta.incompressible_size
        if end > len(data):
            raise TruncatedContainerError(
                f"chunk {i} at byte offset {record_offset}: container "
                f"truncated in index scan (payload ends at byte {end}, "
                f"stream holds {len(data)})"
            )
        index.append(
            ChunkIndexEntry(
                index=i,
                element_start=element_cursor,
                element_stop=element_cursor + meta.n_elements,
                payload_offset=payload_offset,
                metadata=meta,
                compressed_size=meta.compressed_size,
                incompressible_size=meta.incompressible_size,
            )
        )
        element_cursor += meta.n_elements
        offset = end
    if element_cursor != header.n_elements:
        raise ContainerFormatError(
            f"index covers {element_cursor} elements, header declares "
            f"{header.n_elements}"
        )
    return index


def _footer_index(
    footer: ContainerFooter, header: ContainerHeader, header_end: int,
    chain_end: int,
) -> list[ChunkIndexEntry] | None:
    """Build the chunk index from a validated footer — O(n_entries)
    arithmetic, no payload or record reads.

    Returns ``None`` when the footer disagrees with the header or does
    not tile the chunk region exactly (a stale footer after an append,
    or an index for some other version of the file) — the caller then
    falls back to the structural scan.
    """
    if footer.n_chunks != header.n_chunks:
        return None
    index: list[ChunkIndexEntry] = []
    element_cursor = 0
    cursor = header_end
    record_nbytes = chunk_record_nbytes(header.element_width)
    for i, entry in enumerate(footer.entries):
        if entry.payload_offset - record_nbytes != cursor:
            return None
        index.append(
            ChunkIndexEntry(
                index=i,
                element_start=element_cursor,
                element_stop=element_cursor + entry.n_elements,
                payload_offset=entry.payload_offset,
                compressed_size=entry.compressed_size,
                incompressible_size=entry.incompressible_size,
            )
        )
        element_cursor += entry.n_elements
        cursor = entry.payload_end
    if cursor != chain_end or element_cursor != header.n_elements:
        return None
    return index


class _ChunkCache:
    """LRU memoisation of decoded chunks.

    ``capacity=None`` keeps every decoded chunk (the historical
    behaviour, right for small containers); an integer bounds the
    cache so long-lived range-serving readers cannot grow without
    limit; ``0`` disables caching entirely.
    """

    def __init__(self, capacity: int | None):
        if capacity is not None and capacity < 0:
            raise ConfigurationError(
                f"cache_chunks must be None or >= 0, got {capacity}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[int, np.ndarray] = OrderedDict()

    def get(self, index: int) -> np.ndarray | None:
        chunk = self._entries.get(index)
        if chunk is not None and self._capacity is not None:
            self._entries.move_to_end(index)
        return chunk

    def put(self, index: int, chunk: np.ndarray) -> None:
        if self._capacity == 0:
            return
        self._entries[index] = chunk
        if self._capacity is not None:
            self._entries.move_to_end(index)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class _RangeReaderBase:
    """Query surface shared by the in-memory and file-backed readers.

    Subclasses provide ``_load_chunk(entry)`` (fetch + decode one
    chunk, raising :class:`IsobarError` on damage); this base supplies
    the element-span index, the LRU memoisation, the ``errors=``
    policy, and the range/point read logic on top.
    """

    _header: ContainerHeader
    _codec: Codec
    _errors: str
    _index: list[ChunkIndexEntry]
    _starts: list[int]
    _cache: _ChunkCache

    def _init_base(
        self,
        header: ContainerHeader,
        index: list[ChunkIndexEntry],
        errors: str,
        cache_chunks: int | None,
    ) -> None:
        self._header = header
        self._codec = get_codec(header.codec_name)
        self._errors = normalize_errors(errors)
        self._index = index
        self._starts = [entry.element_start for entry in index]
        self._cache = _ChunkCache(cache_chunks)

    # -- introspection ----------------------------------------------------

    @property
    def header(self) -> ContainerHeader:
        """The container's global header."""
        return self._header

    @property
    def n_elements(self) -> int:
        """Total elements stored."""
        return self._header.n_elements

    @property
    def n_chunks(self) -> int:
        """Number of chunks in the container."""
        return self._header.n_chunks

    @property
    def cached_chunks(self) -> int:
        """Decoded chunks currently memoised."""
        return len(self._cache)

    def chunk_index(self) -> tuple[ChunkIndexEntry, ...]:
        """The full chunk index (spans and payload offsets)."""
        return tuple(self._index)

    def chunk_for_element(self, position: int) -> ChunkIndexEntry:
        """Index entry of the chunk containing element ``position``."""
        if not 0 <= position < self.n_elements:
            raise InvalidInputError(
                f"element {position} out of range [0, {self.n_elements})"
            )
        i = bisect.bisect_right(self._starts, position) - 1
        return self._index[i]

    # -- decoding ---------------------------------------------------------

    def _load_chunk(self, entry: ChunkIndexEntry) -> np.ndarray:
        raise NotImplementedError

    def read_chunk(self, index: int) -> np.ndarray:
        """Decode exactly one chunk (memoised per ``cache_chunks``)."""
        if not 0 <= index < self.n_chunks:
            raise InvalidInputError(
                f"chunk {index} out of range [0, {self.n_chunks})"
            )
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        entry = self._index[index]
        try:
            chunk = self._load_chunk(entry)
        except IsobarError:
            if self._errors == "raise":
                raise
            if self._errors == "salvage-zero":
                chunk = np.zeros(entry.n_elements, dtype=self._header.dtype)
            else:  # salvage-skip: the chunk's elements are simply gone
                chunk = np.empty(0, dtype=self._header.dtype)
        self._cache.put(index, chunk)
        return chunk

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Decode elements ``[start, stop)``, touching only needed chunks."""
        if not 0 <= start <= stop <= self.n_elements:
            raise InvalidInputError(
                f"range [{start}, {stop}) out of bounds for "
                f"{self.n_elements} elements"
            )
        if start == stop:
            return np.empty(0, dtype=self._header.dtype)
        first = self.chunk_for_element(start).index
        last = self.chunk_for_element(stop - 1).index
        pieces = []
        for i in range(first, last + 1):
            entry = self._index[i]
            chunk = self.read_chunk(i)
            lo = max(start, entry.element_start) - entry.element_start
            hi = min(stop, entry.element_stop) - entry.element_start
            pieces.append(chunk[lo:hi])
        # concatenate() normalises byte order to native; restore the
        # header's exact dtype.
        return np.concatenate(pieces).astype(self._header.dtype, copy=False)

    def element(self, position: int) -> np.generic:
        """Point lookup of a single element.

        Under ``errors="salvage-skip"`` a position inside a damaged
        chunk has no value to return; that read raises
        :class:`~repro.core.exceptions.ContainerFormatError` (use
        ``"salvage-zero"`` to keep point lookups total).
        """
        entry = self.chunk_for_element(position)
        chunk = self.read_chunk(entry.index)
        offset = position - entry.element_start
        if offset >= chunk.size:
            raise ContainerFormatError(
                f"chunk {entry.index}: element {position} was lost to a "
                "damaged chunk (errors='salvage-skip')"
            )
        return chunk[offset]

    def read_all(self) -> np.ndarray:
        """Decode the whole container (equivalent to the pipeline path)."""
        flat = self.read_range(0, self.n_elements)
        shape = self._header.shape
        n_shape = 1
        for dim in shape:
            n_shape *= dim
        if shape and n_shape == self.n_elements:
            return flat.reshape(shape)
        return flat


class ContainerReader(_RangeReaderBase):
    """Index an in-memory ISOBAR container once, then decode on demand.

    ``errors`` selects the shared damage policy: ``"raise"`` (default)
    propagates the located exception of the first damaged chunk read;
    ``"salvage-skip"`` yields an empty chunk in its place (range reads
    simply drop the lost elements); ``"salvage-zero"`` substitutes zero
    elements of the declared chunk length, keeping element positions
    stable.

    ``cache_chunks`` bounds the decoded-chunk memoisation: ``None``
    (default) keeps every decoded chunk, an integer keeps an LRU of at
    most that many, ``0`` disables caching.
    """

    def __init__(
        self,
        data: bytes,
        *,
        errors: str = "raise",
        cache_chunks: int | None = None,
    ):
        self._data = data
        header, offset = ContainerHeader.decode(data)
        self._init_base(
            header, _scan_index(data, header, offset), errors, cache_chunks
        )

    def _load_chunk(self, entry: ChunkIndexEntry) -> np.ndarray:
        meta = entry.metadata
        assert meta is not None  # scanning readers index eagerly
        start = entry.payload_offset
        compressed = self._data[start:start + meta.compressed_size]
        incompressible = self._data[
            start + meta.compressed_size:
            start + meta.compressed_size + meta.incompressible_size
        ]
        # Delegate to the shared chunk decoder so every mode the
        # pipeline can write (including resilience fallbacks) reads
        # back identically here.
        return decode_chunk_payload(
            self._header, self._codec, meta, compressed, incompressible,
            chunk_index=entry.index, byte_offset=start,
        )


class ContainerFile(_RangeReaderBase):
    """File-backed random access with O(1) open via the index footer.

    Opening reads only the header prefix and the trailing footer —
    cost proportional to the footer, independent of payload size — and
    each ``read_chunk`` then seeks directly to its record.  When the
    footer cannot be used (missing on pre-footer containers, truncated,
    CRC-failed, or inconsistent with the header) the reader falls back
    transparently to loading the stream and walking the chunk chain,
    and counts the event under
    ``isobar_container_footer_fallback_total{reason=}``.

    ``source`` is a filesystem path or a seekable binary file object
    (a path-opened handle is owned and closed by :meth:`close` / the
    context manager; a caller-provided handle stays the caller's).
    ``errors`` and ``cache_chunks`` behave as on
    :class:`ContainerReader`.  Instances are not thread-safe: they
    share one seek cursor.
    """

    def __init__(
        self,
        source: str | os.PathLike | BinaryIO,
        *,
        errors: str = "raise",
        cache_chunks: int | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        registry = NULL_REGISTRY if metrics is None else metrics
        self._instruments = PipelineInstruments(registry)
        if isinstance(source, (str, os.PathLike)):
            self._file: BinaryIO = open(source, "rb")
            self._owned = True
        else:
            self._file = source
            self._owned = False
        self._closed = False
        self._data: bytes | None = None  # populated only on fallback
        self._fallback_reason: str | None = None
        try:
            self._open_index(errors, cache_chunks)
        except BaseException:
            if self._owned:
                self._file.close()
            raise

    def _open_index(self, errors: str, cache_chunks: int | None) -> None:
        prefix = self._pread(0, _HEADER_PROBE)
        header, header_end = ContainerHeader.decode(prefix)
        self._file.seek(0, os.SEEK_END)
        file_size = self._file.tell()

        reason: str | None = None
        index: list[ChunkIndexEntry] | None = None
        probe_len = min(file_size, _TAIL_PROBE)
        tail = self._pread(file_size - probe_len, probe_len)
        location = locate_footer(tail)
        if location.status == "truncated" and probe_len < file_size:
            # The trailer declares a footer longer than the probe — not
            # necessarily damage.  Re-read exactly footer_len bytes and
            # classify again; a genuinely impossible length stays
            # "truncated".
            (footer_len,) = struct.unpack_from("<I", tail, len(tail) - 8)
            if footer_len <= file_size:
                tail = self._pread(file_size - footer_len, footer_len)
                location = locate_footer(tail)
        if location.ok:
            assert location.footer is not None
            footer_start = file_size - (len(tail) - location.start)
            index = _footer_index(
                location.footer, header, header_end, footer_start
            )
            reason = None if index is not None else "inconsistent"
        else:
            reason = location.status

        if index is None:
            # Fallback: the historical structural scan over the whole
            # stream.  Strictly worse than the footer path (O(n_chunks)
            # and a full read) but keeps every pre-footer and damaged
            # container readable.
            assert reason is not None
            self._fallback_reason = reason
            self._instruments.footer_fallback.inc(1, reason=reason)
            self._data = self._pread(0, file_size)
            index = _scan_index(self._data, header, header_end)
        self._init_base(header, index, errors, cache_chunks)

    def _pread(self, offset: int, n_bytes: int) -> bytes:
        self._file.seek(offset)
        return self._file.read(n_bytes)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release the underlying file handle (owned handles only)."""
        if self._closed:
            return
        self._closed = True
        if self._owned:
            self._file.close()

    def __enter__(self) -> "ContainerFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection ----------------------------------------------------

    @property
    def opened_via(self) -> str:
        """``"footer"`` (O(1) open) or ``"scan"`` (fallback walk)."""
        return "scan" if self._fallback_reason is not None else "footer"

    @property
    def fallback_reason(self) -> str | None:
        """Why the footer was unusable (``None`` on the footer path)."""
        return self._fallback_reason

    # -- decoding ---------------------------------------------------------

    def _load_chunk(self, entry: ChunkIndexEntry) -> np.ndarray:
        if self._data is not None:
            meta = entry.metadata
            assert meta is not None
            start = entry.payload_offset
            compressed = self._data[start:start + meta.compressed_size]
            incompressible = self._data[
                start + meta.compressed_size:entry.payload_end
            ]
            return decode_chunk_payload(
                self._header, self._codec, meta, compressed, incompressible,
                chunk_index=entry.index, byte_offset=start,
            )
        # Footer path: one seek + one read covers record and payloads.
        record_nbytes = chunk_record_nbytes(self._header.element_width)
        record_offset = entry.payload_offset - record_nbytes
        blob = self._pread(
            record_offset,
            record_nbytes + entry.compressed_size + entry.incompressible_size,
        )
        meta, payload_pos = ChunkMetadata.decode(
            blob, 0, self._header.element_width
        )
        if (
            meta.compressed_size != entry.compressed_size
            or meta.incompressible_size != entry.incompressible_size
            or meta.n_elements != entry.n_elements
        ):
            raise ContainerFormatError(
                f"chunk {entry.index} at byte offset {record_offset}: "
                "chunk record disagrees with the index footer "
                "(container modified after indexing?)"
            )
        compressed = blob[payload_pos:payload_pos + entry.compressed_size]
        incompressible = blob[
            payload_pos + entry.compressed_size:
            payload_pos + entry.compressed_size + entry.incompressible_size
        ]
        return decode_chunk_payload(
            self._header, self._codec, meta, compressed, incompressible,
            chunk_index=entry.index, byte_offset=record_offset,
        )
