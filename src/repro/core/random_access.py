"""Random access into ISOBAR containers (database-style reads).

The container stores one metadata record per chunk, so a single index
pass recovers every chunk's element span and payload offsets without
decompressing anything.  :class:`ContainerReader` exploits that to
serve

* ``read_chunk(i)`` — decode exactly one chunk;
* ``read_range(start, stop)`` — decode only the chunks overlapping an
  element range and slice out the requested elements;
* ``element(i)`` — point lookup.

For ICDE's query workloads this is the payoff of chunked framing: a
range read touches ``O(range / chunk_elements)`` chunks instead of the
whole stream.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.codecs.base import get_codec
from repro.core.exceptions import (
    ContainerFormatError,
    InvalidInputError,
    IsobarError,
)
from repro.core.metadata import ChunkMetadata, ContainerHeader
from repro.core.pipeline import decode_chunk_payload
from repro.core.preferences import normalize_errors

__all__ = ["ChunkIndexEntry", "ContainerReader"]


@dataclass(frozen=True)
class ChunkIndexEntry:
    """Location of one chunk inside the container byte stream."""

    index: int
    element_start: int
    element_stop: int
    payload_offset: int
    metadata: ChunkMetadata

    @property
    def n_elements(self) -> int:
        """Elements covered by this chunk."""
        return self.element_stop - self.element_start


class ContainerReader:
    """Index an ISOBAR container once, then decode chunks on demand.

    Decoded chunks are memoised (the container is immutable), so
    repeated range reads over hot regions cost one decode each.

    ``errors`` selects the shared damage policy: ``"raise"`` (default)
    propagates the located exception of the first damaged chunk read;
    ``"salvage-skip"`` yields an empty chunk in its place (range reads
    simply drop the lost elements); ``"salvage-zero"`` substitutes zero
    elements of the declared chunk length, keeping element positions
    stable.
    """

    def __init__(self, data: bytes, *, errors: str = "raise"):
        self._errors = normalize_errors(errors)
        self._data = data
        self._header, offset = ContainerHeader.decode(data)
        self._codec = get_codec(self._header.codec_name)
        self._index: list[ChunkIndexEntry] = []
        self._cache: dict[int, np.ndarray] = {}

        element_cursor = 0
        width = self._header.element_width
        for i in range(self._header.n_chunks):
            meta, payload_offset = ChunkMetadata.decode(data, offset, width)
            end = payload_offset + meta.compressed_size + meta.incompressible_size
            if end > len(data):
                raise ContainerFormatError("container truncated in index scan")
            self._index.append(
                ChunkIndexEntry(
                    index=i,
                    element_start=element_cursor,
                    element_stop=element_cursor + meta.n_elements,
                    payload_offset=payload_offset,
                    metadata=meta,
                )
            )
            element_cursor += meta.n_elements
            offset = end
        if element_cursor != self._header.n_elements:
            raise ContainerFormatError(
                f"index covers {element_cursor} elements, header declares "
                f"{self._header.n_elements}"
            )
        self._starts = [entry.element_start for entry in self._index]

    # -- introspection ----------------------------------------------------

    @property
    def header(self) -> ContainerHeader:
        """The container's global header."""
        return self._header

    @property
    def n_elements(self) -> int:
        """Total elements stored."""
        return self._header.n_elements

    @property
    def n_chunks(self) -> int:
        """Number of chunks in the container."""
        return self._header.n_chunks

    def chunk_index(self) -> tuple[ChunkIndexEntry, ...]:
        """The full chunk index (spans and payload offsets)."""
        return tuple(self._index)

    def chunk_for_element(self, position: int) -> ChunkIndexEntry:
        """Index entry of the chunk containing element ``position``."""
        if not 0 <= position < self.n_elements:
            raise InvalidInputError(
                f"element {position} out of range [0, {self.n_elements})"
            )
        i = bisect.bisect_right(self._starts, position) - 1
        return self._index[i]

    # -- decoding -----------------------------------------------------------

    def read_chunk(self, index: int) -> np.ndarray:
        """Decode exactly one chunk (memoised)."""
        if not 0 <= index < self.n_chunks:
            raise InvalidInputError(
                f"chunk {index} out of range [0, {self.n_chunks})"
            )
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        entry = self._index[index]
        meta = entry.metadata
        start = entry.payload_offset
        compressed = self._data[start:start + meta.compressed_size]
        incompressible = self._data[
            start + meta.compressed_size:
            start + meta.compressed_size + meta.incompressible_size
        ]
        # Delegate to the shared chunk decoder so every mode the
        # pipeline can write (including resilience fallbacks) reads
        # back identically here.
        try:
            chunk = decode_chunk_payload(
                self._header, self._codec, meta, compressed, incompressible,
                chunk_index=index, byte_offset=start,
            )
        except IsobarError:
            if self._errors == "raise":
                raise
            if self._errors == "salvage-zero":
                chunk = np.zeros(meta.n_elements, dtype=self._header.dtype)
            else:  # salvage-skip: the chunk's elements are simply gone
                chunk = np.empty(0, dtype=self._header.dtype)
        self._cache[index] = chunk
        return chunk

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Decode elements ``[start, stop)``, touching only needed chunks."""
        if not 0 <= start <= stop <= self.n_elements:
            raise InvalidInputError(
                f"range [{start}, {stop}) out of bounds for "
                f"{self.n_elements} elements"
            )
        if start == stop:
            return np.empty(0, dtype=self._header.dtype)
        first = self.chunk_for_element(start).index
        last = self.chunk_for_element(stop - 1).index
        pieces = []
        for i in range(first, last + 1):
            entry = self._index[i]
            chunk = self.read_chunk(i)
            lo = max(start, entry.element_start) - entry.element_start
            hi = min(stop, entry.element_stop) - entry.element_start
            pieces.append(chunk[lo:hi])
        # concatenate() normalises byte order to native; restore the
        # header's exact dtype.
        return np.concatenate(pieces).astype(self._header.dtype, copy=False)

    def element(self, position: int) -> np.generic:
        """Point lookup of a single element.

        Under ``errors="salvage-skip"`` a position inside a damaged
        chunk has no value to return; that read raises
        :class:`~repro.core.exceptions.ContainerFormatError` (use
        ``"salvage-zero"`` to keep point lookups total).
        """
        entry = self.chunk_for_element(position)
        chunk = self.read_chunk(entry.index)
        offset = position - entry.element_start
        if offset >= chunk.size:
            raise ContainerFormatError(
                f"chunk {entry.index}: element {position} was lost to a "
                "damaged chunk (errors='salvage-skip')"
            )
        return chunk[offset]

    def read_all(self) -> np.ndarray:
        """Decode the whole container (equivalent to the pipeline path)."""
        flat = self.read_range(0, self.n_elements)
        shape = self._header.shape
        n_shape = 1
        for dim in shape:
            n_shape *= dim
        if shape and n_shape == self.n_elements:
            return flat.reshape(shape)
        return flat
