"""Multi-variable record compression (the ``xgc_iphase`` structure).

Scientific outputs often interleave several physical variables per
record — XGC's ``iphase`` carries 8 phase variables per ion (Table I).
Compressing the interleaved stream mixes the variables' byte
statistics; splitting by variable first lets the analyzer judge each
variable's byte-columns separately and the selector pick per-variable
codecs, usually improving both ratio and the precision of the
improvable/undetermined call.

:class:`RecordCompressor` handles both layouts:

* a 2-D array ``(n_records, n_variables)`` (row-interleaved records);
* a dict of named 1-D arrays (already-split variables).

Each variable becomes its own ISOBAR container inside a tiny envelope,
so decompression restores every variable bit-exactly and the original
interleaving when requested.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.exceptions import ContainerFormatError, InvalidInputError
from repro.core.pipeline import IsobarCompressor
from repro.core.preferences import IsobarConfig

__all__ = ["RecordCompressor"]

_MAGIC = b"IREC"
_MAX_NAME = 255


class RecordCompressor:
    """Per-variable ISOBAR compression of multi-variable records."""

    def __init__(self, config: IsobarConfig | None = None):
        self._compressor = IsobarCompressor(config)

    # -- compression ------------------------------------------------------

    def compress_columns(self, variables: dict[str, np.ndarray]) -> bytes:
        """Compress named variables into one envelope.

        All variables must share the same element count (records are
        aligned across variables).
        """
        if not variables:
            raise InvalidInputError("need at least one variable")
        lengths = {name: np.asarray(v).reshape(-1).size
                   for name, v in variables.items()}
        if len(set(lengths.values())) != 1:
            raise InvalidInputError(
                f"variables must be record-aligned; got lengths {lengths}"
            )
        parts = [_MAGIC, struct.pack("<I", len(variables))]
        for name, values in variables.items():
            encoded_name = name.encode("utf-8")
            if not 1 <= len(encoded_name) <= _MAX_NAME:
                raise InvalidInputError(f"bad variable name {name!r}")
            payload = self._compressor.compress(np.asarray(values).reshape(-1))
            parts.append(struct.pack("<B", len(encoded_name)))
            parts.append(encoded_name)
            parts.append(struct.pack("<Q", len(payload)))
            parts.append(payload)
        return b"".join(parts)

    def compress_interleaved(self, records: np.ndarray) -> bytes:
        """Compress a ``(n_records, n_variables)`` interleaved array.

        Variables are de-interleaved (one contiguous column each) and
        compressed independently under generated names ``v0..vK``.
        """
        arr = np.asarray(records)
        if arr.ndim != 2:
            raise InvalidInputError(
                f"interleaved records must be 2-D, got shape {arr.shape}"
            )
        variables = {
            f"v{k}": np.ascontiguousarray(arr[:, k]) for k in range(arr.shape[1])
        }
        return self.compress_columns(variables)

    # -- decompression ----------------------------------------------------

    def decompress_columns(self, data: bytes) -> dict[str, np.ndarray]:
        """Restore the named variables of an envelope."""
        if len(data) < 8 or data[:4] != _MAGIC:
            raise ContainerFormatError("not a record envelope (bad magic)")
        (n_variables,) = struct.unpack_from("<I", data, 4)
        offset = 8
        variables: dict[str, np.ndarray] = {}
        for _ in range(n_variables):
            if offset >= len(data):
                raise ContainerFormatError("truncated record envelope")
            name_len = data[offset]
            offset += 1
            name = data[offset:offset + name_len].decode("utf-8")
            offset += name_len
            if len(data) < offset + 8:
                raise ContainerFormatError("truncated record envelope")
            (payload_len,) = struct.unpack_from("<Q", data, offset)
            offset += 8
            payload = data[offset:offset + payload_len]
            if len(payload) != payload_len:
                raise ContainerFormatError("truncated variable payload")
            offset += payload_len
            variables[name] = self._compressor.decompress(payload)
        return variables

    def decompress_interleaved(self, data: bytes) -> np.ndarray:
        """Restore a ``compress_interleaved`` envelope to its 2-D array."""
        variables = self.decompress_columns(data)
        names = sorted(variables, key=lambda n: int(n[1:]))
        columns = [variables[name] for name in names]
        return np.stack(columns, axis=1)

    # -- diagnostics --------------------------------------------------------

    def per_variable_ratios(
        self, variables: dict[str, np.ndarray]
    ) -> dict[str, float]:
        """Achieved compression ratio per variable (for reports)."""
        ratios = {}
        for name, values in variables.items():
            arr = np.asarray(values).reshape(-1)
            payload = self._compressor.compress(arr)
            ratios[name] = arr.nbytes / len(payload)
        return ratios
