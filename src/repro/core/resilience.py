"""Fault containment for the compress path.

PR 1 made the *decode* path corruption-tolerant; this module does the
same for *compression*.  The paper's own workflow supplies the escape
hatch: a chunk whose analyzer mask is all-incompressible is stored raw
(Section II-B "undetermined"), so any chunk whose solver misbehaves can
be *degraded* — first to a stdlib-``zlib`` fallback encoding, then to
raw passthrough — without changing the container format.  The
guarantee becomes: compression never fails on encodable input; the
worst case is ratio 1.0 plus a report.

Three cooperating pieces live here:

* :class:`ResiliencePolicy` — the knobs: per-chunk retries with
  exponential backoff, an optional per-chunk deadline, the fallback
  chain (codec → stdlib ``zlib`` → raw), and strict mode (degradation
  becomes a hard failure).
* :class:`CodecCircuitBreaker` / :class:`BreakerBoard` — a per-codec
  breaker that opens after K *consecutive* failures or timeouts and
  routes the rest of the run straight to the fallback; after a number
  of skipped chunks it lets one half-open probe through, closing again
  on success.  Progress is chunk-count based (not wall-clock) so runs
  are deterministic.
* :class:`DegradationEvent` / :class:`DegradationReport` — the record
  of every degradation (chunk index, cause, attempts, final encoding)
  attached to :class:`~repro.core.pipeline.CompressionResult` and
  dumped by the CLI's ``--resilience-json``.

The chunk encoder itself (:func:`repro.core.pipeline.encode_chunk_payload`)
lives next to its decode counterpart in the pipeline module; this module
stays dependency-light so :class:`~repro.core.preferences.IsobarConfig`
can embed a policy without import cycles.
"""

from __future__ import annotations

import enum
import random
import threading
import time as _time
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Callable

from repro.core.exceptions import ChunkTimeoutError, ConfigurationError

__all__ = [
    "BreakerBoard",
    "BreakerSnapshot",
    "BreakerState",
    "CodecCircuitBreaker",
    "DegradationEvent",
    "DegradationReport",
    "ResiliencePolicy",
    "call_with_deadline",
    "full_jitter_backoff",
]

#: Knuth's multiplicative-hash constant, used to spread small seeds and
#: tokens across the 32-bit key space before deriving a jitter stream.
_JITTER_MIX = 2654435761


def full_jitter_backoff(
    base_seconds: float,
    retry_number: int,
    *,
    cap_seconds: float | None = None,
    rng: random.Random | None = None,
) -> float:
    """Exponential backoff with *full jitter* (AWS architecture-blog
    style): retry *n* waits a uniform draw from
    ``[0, min(cap, base * 2**(n-1))]``.

    With ``rng=None`` the jitter is skipped and the deterministic
    exponential envelope is returned — useful when the caller wants the
    upper bound rather than a sample.
    """
    if base_seconds <= 0 or retry_number < 1:
        return 0.0
    envelope = base_seconds * (2.0 ** (retry_number - 1))
    if cap_seconds is not None:
        envelope = min(envelope, cap_seconds)
    if rng is None:
        return envelope
    return rng.uniform(0.0, envelope)


class BreakerState(enum.Enum):
    """Circuit breaker states, with their exported gauge values."""

    CLOSED = "closed"
    HALF_OPEN = "half_open"
    OPEN = "open"

    @property
    def gauge_value(self) -> int:
        """Numeric encoding for ``isobar_breaker_state`` (0/1/2)."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Per-chunk fault-containment knobs for the compress path.

    Parameters
    ----------
    max_attempts:
        Primary-codec attempts per chunk (>= 1).  The first attempt
        counts, so 2 means "one retry".
    retry_backoff_seconds:
        Base of the exponential backoff envelope: retry *n* waits up to
        ``retry_backoff_seconds * 2**(n-1)`` (capped by
        ``retry_backoff_max_seconds``); 0 (the default) retries
        immediately.
    retry_backoff_max_seconds:
        Ceiling of the backoff envelope, so a long retry chain cannot
        sleep unboundedly.
    retry_jitter:
        Apply *full jitter*: each retry sleeps a uniform draw from
        ``[0, envelope]`` instead of the envelope itself.  Jitter
        decorrelates retries across concurrent workers and service
        requests (the thundering-herd fix); draws are seeded per
        ``(retry_jitter_seed, token, retry)`` so runs stay
        reproducible.
    retry_jitter_seed:
        Seed of the jitter stream (see :meth:`backoff_delay`).
    sleep:
        The sleep callable backoff waits on — injectable so tests can
        record delays instead of actually waiting.  Excluded from
        equality and ``repr``.
    chunk_deadline_seconds:
        Wall-clock budget for a single solver call; ``None`` disables
        the deadline.  Enforced by :func:`call_with_deadline`, which
        runs the call on a helper thread — only set it when hung
        encoders are a real risk.
    fallback_zlib:
        When the primary codec is exhausted, try a stdlib-``zlib``
        encoding of the raw chunk bytes (container mode
        ``FALLBACK_ZLIB``) before giving up compression entirely.  The
        stdlib module is called directly — a misbehaving codec
        *registered* under the name ``"zlib"`` cannot poison the
        fallback.
    verify_roundtrip:
        Decompress every primary-codec output and compare against the
        input before accepting it.  Catches codecs that corrupt data
        *silently* (at roughly 2x solver cost); corruption is treated
        as a failure and degrades like any other.
    breaker_threshold:
        Consecutive primary-codec failures (K) that open that codec's
        circuit breaker.
    breaker_probe_after:
        While open, the breaker short-circuits this many chunks to the
        fallback, then lets a single half-open probe through.
    strict:
        Degradation becomes a hard failure: retries still happen, but
        when the primary codec is exhausted a
        :class:`~repro.core.exceptions.CodecError` propagates instead
        of a fallback encoding.
    """

    max_attempts: int = 2
    retry_backoff_seconds: float = 0.0
    retry_backoff_max_seconds: float = 2.0
    retry_jitter: bool = False
    retry_jitter_seed: int = 0
    chunk_deadline_seconds: float | None = None
    fallback_zlib: bool = True
    verify_roundtrip: bool = False
    breaker_threshold: int = 3
    breaker_probe_after: int = 8
    strict: bool = False
    sleep: Callable[[float], None] = field(
        default=_time.sleep, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.retry_backoff_seconds < 0:
            raise ConfigurationError(
                "retry_backoff_seconds must be >= 0, got "
                f"{self.retry_backoff_seconds!r}"
            )
        if self.retry_backoff_max_seconds <= 0:
            raise ConfigurationError(
                "retry_backoff_max_seconds must be positive, got "
                f"{self.retry_backoff_max_seconds!r}"
            )
        if (
            self.chunk_deadline_seconds is not None
            and self.chunk_deadline_seconds <= 0
        ):
            raise ConfigurationError(
                "chunk_deadline_seconds must be positive or None, got "
                f"{self.chunk_deadline_seconds!r}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold!r}"
            )
        if self.breaker_probe_after < 1:
            raise ConfigurationError(
                "breaker_probe_after must be >= 1, got "
                f"{self.breaker_probe_after!r}"
            )

    def replace(self, **changes: object) -> "ResiliencePolicy":
        """Return a copy of this policy with ``changes`` applied."""
        return _dc_replace(self, **changes)

    def backoff_delay(self, retry_number: int, *, token: int = 0) -> float:
        """Seconds to wait before retry ``retry_number`` (1-based).

        Without :attr:`retry_jitter` this is the deterministic
        exponential envelope ``base * 2**(n-1)`` capped at
        :attr:`retry_backoff_max_seconds` — the pre-jitter behaviour.
        With jitter the delay is a uniform draw from ``[0, envelope]``
        whose generator is seeded by ``(retry_jitter_seed, token,
        retry_number)``; callers pass a stable ``token`` (the chunk
        index, a request id) so concurrent retriers decorrelate while
        any single retrier stays reproducible.
        """
        if self.retry_backoff_seconds <= 0 or retry_number < 1:
            return 0.0
        rng = None
        if self.retry_jitter:
            key = (
                (self.retry_jitter_seed * _JITTER_MIX)
                ^ (token * 0x9E3779B1)
                ^ retry_number
            ) & 0xFFFFFFFF
            rng = random.Random(key)
        return full_jitter_backoff(
            self.retry_backoff_seconds,
            retry_number,
            cap_seconds=self.retry_backoff_max_seconds,
            rng=rng,
        )

    def pause_before_retry(self, retry_number: int, *, token: int = 0) -> float:
        """Sleep the computed :meth:`backoff_delay` (via the injectable
        :attr:`sleep`) and return the delay that was applied."""
        delay = self.backoff_delay(retry_number, token=token)
        if delay > 0:
            self.sleep(delay)
        return delay


@dataclass(frozen=True)
class DegradationEvent:
    """One chunk that could not be stored with the primary codec."""

    chunk_index: int
    #: ``"error"`` (solver raised), ``"timeout"`` (deadline exceeded) or
    #: ``"breaker_open"`` (the codec's breaker short-circuited the call).
    cause: str
    #: Primary-codec attempts actually made (0 when the breaker was open).
    attempts: int
    #: Final encoding: ``"zlib-fallback"`` or ``"raw"``.
    encoding: str
    #: Message of the last primary-codec error, when there was one.
    error: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "chunk_index": self.chunk_index,
            "cause": self.cause,
            "attempts": self.attempts,
            "encoding": self.encoding,
            "error": self.error,
        }


@dataclass(frozen=True)
class DegradationReport:
    """Every degradation of one compression run, plus retry accounting.

    Attached to :class:`~repro.core.pipeline.CompressionResult` as
    ``result.degradation``; an empty report means every chunk was
    stored with the primary codec on the first attempt (or after a
    successful retry — see :attr:`retries`).
    """

    events: tuple[DegradationEvent, ...] = ()
    #: Primary-codec attempts beyond the first, summed over all chunks
    #: (including retries that eventually succeeded).
    retries: int = 0

    @property
    def clean(self) -> bool:
        """True when no chunk was degraded."""
        return not self.events

    @property
    def degraded_chunks(self) -> int:
        """Number of chunks stored with a fallback encoding."""
        return len(self.events)

    def causes(self) -> dict[str, int]:
        """Degradation counts per cause."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.cause] = counts.get(event.cause, 0) + 1
        return counts

    def summary_lines(self) -> list[str]:
        """Human-readable degradation summary (CLI stderr)."""
        if self.clean:
            return ["no degraded chunks"]
        by_cause = ", ".join(
            f"{cause}: {n}" for cause, n in sorted(self.causes().items())
        )
        lines = [
            f"{self.degraded_chunks} chunk(s) degraded ({by_cause}); "
            f"{self.retries} retry attempt(s)"
        ]
        for event in self.events:
            detail = f"chunk {event.chunk_index}: {event.cause} after " \
                     f"{event.attempts} attempt(s) -> stored as {event.encoding}"
            if event.error:
                detail += f" ({event.error})"
            lines.append(detail)
        return lines

    def to_dict(self) -> dict:
        """JSON-ready representation (``--resilience-json``)."""
        return {
            "degraded_chunks": self.degraded_chunks,
            "retries": self.retries,
            "causes": self.causes(),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DegradationReport":
        """Inverse of :meth:`to_dict`."""
        events = tuple(
            DegradationEvent(
                chunk_index=int(e["chunk_index"]),
                cause=str(e["cause"]),
                attempts=int(e["attempts"]),
                encoding=str(e["encoding"]),
                error=e.get("error"),
            )
            for e in payload.get("events", ())
        )
        return cls(events=events, retries=int(payload.get("retries", 0)))


@dataclass(frozen=True)
class BreakerSnapshot:
    """Point-in-time, lock-consistent view of one codec's breaker.

    Returned by :meth:`CodecCircuitBreaker.snapshot` /
    :meth:`BreakerBoard.snapshot` so health endpoints and tests can
    inspect breaker internals without reaching into private fields.
    """

    codec_name: str
    state: BreakerState
    consecutive_failures: int
    skips_since_open: int
    probe_inflight: bool

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``/healthz`` payload)."""
        return {
            "codec": self.codec_name,
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "skips_since_open": self.skips_since_open,
            "probe_inflight": self.probe_inflight,
        }


class CodecCircuitBreaker:
    """Thread-safe per-codec circuit breaker (chunk-count based).

    State machine:

    * ``CLOSED`` — calls flow; ``threshold`` *consecutive* failures
      (successes reset the streak) transition to ``OPEN``.
    * ``OPEN`` — :meth:`allow` returns False, routing chunks straight
      to the fallback.  After ``probe_after`` skipped calls the breaker
      moves to ``HALF_OPEN`` and lets exactly one probe through.
    * ``HALF_OPEN`` — the probe's outcome decides: success closes the
      breaker, failure re-opens it (and restarts the skip count).

    All transitions are counted in chunks, never wall-clock, so a run
    with a deterministic fault pattern degrades deterministically —
    this is what the chaos harness asserts on.
    """

    def __init__(
        self,
        codec_name: str,
        *,
        threshold: int = 3,
        probe_after: int = 8,
        on_state_change: Callable[[str, BreakerState], None] | None = None,
    ):
        self.codec_name = codec_name
        self._threshold = threshold
        self._probe_after = probe_after
        self._on_state_change = on_state_change
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._skips_since_open = 0
        self._probe_inflight = False

    @property
    def state(self) -> BreakerState:
        """Current breaker state."""
        return self._state

    def snapshot(self) -> BreakerSnapshot:
        """A lock-consistent :class:`BreakerSnapshot` of this breaker."""
        with self._lock:
            return BreakerSnapshot(
                codec_name=self.codec_name,
                state=self._state,
                consecutive_failures=self._consecutive_failures,
                skips_since_open=self._skips_since_open,
                probe_inflight=self._probe_inflight,
            )

    def reset(self) -> None:
        """Force the breaker back to ``CLOSED`` and clear its counters.

        An operator override (exposed via :meth:`BreakerBoard.reset`):
        the state-change callback fires so gauges track the reset.
        """
        with self._lock:
            self._consecutive_failures = 0
            self._skips_since_open = 0
            self._probe_inflight = False
            self._transition(BreakerState.CLOSED)

    def _transition(self, state: BreakerState) -> None:
        # Called with the lock held.
        if state is self._state:
            return
        self._state = state
        if self._on_state_change is not None:
            self._on_state_change(self.codec_name, state)

    def allow(self) -> bool:
        """Whether the next primary-codec call may proceed."""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                self._skips_since_open += 1
                if self._skips_since_open > self._probe_after:
                    self._transition(BreakerState.HALF_OPEN)
                    self._probe_inflight = True
                    return True
                return False
            # HALF_OPEN: only the single probe call is in flight.
            if not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """A primary-codec call succeeded; close the breaker."""
        with self._lock:
            self._consecutive_failures = 0
            self._skips_since_open = 0
            self._probe_inflight = False
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """A primary-codec call failed or timed out."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                # Failed probe: straight back to OPEN.
                self._probe_inflight = False
                self._skips_since_open = 0
                self._transition(BreakerState.OPEN)
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self._threshold
            ):
                self._skips_since_open = 0
                self._transition(BreakerState.OPEN)


class BreakerBoard:
    """Lazily-created :class:`CodecCircuitBreaker` per codec name.

    One board is shared across a compressor's whole lifetime (and
    across its worker threads), so breaker state persists between runs
    the way an always-on ingest path needs it to.
    """

    def __init__(
        self,
        policy: "ResiliencePolicy | None" = None,
        *,
        on_state_change: Callable[[str, BreakerState], None] | None = None,
    ):
        self._policy = policy or ResiliencePolicy()
        self._on_state_change = on_state_change
        self._lock = threading.Lock()
        self._breakers: dict[str, CodecCircuitBreaker] = {}

    def for_codec(self, name: str) -> CodecCircuitBreaker:
        """The breaker guarding ``name`` (created on first use)."""
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CodecCircuitBreaker(
                    name,
                    threshold=self._policy.breaker_threshold,
                    probe_after=self._policy.breaker_probe_after,
                    on_state_change=self._on_state_change,
                )
                self._breakers[name] = breaker
            return breaker

    def states(self) -> dict[str, BreakerState]:
        """Snapshot of every breaker's current state."""
        with self._lock:
            return {name: b.state for name, b in self._breakers.items()}

    def snapshot(self) -> dict[str, BreakerSnapshot]:
        """Full :class:`BreakerSnapshot` per codec, for health endpoints
        and tests — no private-field access required."""
        with self._lock:
            breakers = list(self._breakers.values())
        return {b.codec_name: b.snapshot() for b in breakers}

    def reset(self) -> None:
        """Force every breaker on the board back to ``CLOSED``.

        The breakers themselves are kept (state-change callbacks and
        identity survive) — only their failure accounting is cleared.
        """
        with self._lock:
            breakers = list(self._breakers.values())
        for breaker in breakers:
            breaker.reset()


def call_with_deadline(
    fn: Callable[[bytes], bytes],
    data: bytes,
    deadline_seconds: float | None,
) -> bytes:
    """Run ``fn(data)`` with an optional wall-clock deadline.

    With ``deadline_seconds=None`` this is a plain call (zero
    overhead).  Otherwise the call runs on a daemon helper thread;
    if it does not finish in time a
    :class:`~repro.core.exceptions.ChunkTimeoutError` is raised and
    the thread is *abandoned* — Python threads cannot be killed, so a
    truly hung encoder keeps its thread until process exit.  That is
    the accepted cost of containment: the pipeline moves on to the
    fallback instead of hanging with it.
    """
    if deadline_seconds is None:
        return fn(data)
    box: list[tuple[str, object]] = []
    done = threading.Event()

    def _run() -> None:
        try:
            box.append(("ok", fn(data)))
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            box.append(("err", exc))
        finally:
            done.set()

    worker = threading.Thread(
        target=_run, name="isobar-chunk-deadline", daemon=True
    )
    worker.start()
    if not done.wait(deadline_seconds):
        raise ChunkTimeoutError(
            f"solver call exceeded the {deadline_seconds}s chunk deadline"
        )
    kind, value = box[0]
    if kind == "err":
        raise value  # type: ignore[misc]
    return value  # type: ignore[return-value]
