"""Corruption-tolerant salvage decoding of ISOBAR containers.

Every chunk in an ISOBAR container is independently decodable: it
carries its own metadata record (behind a ``CHNK`` magic), its own
payload extents and a CRC32 of its raw bytes.  The strict decoders
deliberately abort on the first damaged byte — but for archival
recovery that throws away every *healthy* chunk behind the damage.

This module is the lenient counterpart:

* :func:`scan_chunks` walks the chunk chain structurally and, when a
  record is unreadable, **resynchronizes** by scanning forward for the
  next plausible ``CHNK`` magic (validating candidates against their
  own CRC so a stray ``CHNK`` inside compressed payload is rejected);
* :func:`salvage_decompress` decodes everything recoverable under a
  per-chunk error policy — ``"raise"`` (strict), ``"skip"`` (drop lost
  chunks) or ``"zero_fill"`` (substitute zero elements so surviving
  data keeps its absolute position);
* :class:`SalvageReport` records, per damaged region, the chunk index,
  the absolute byte range and the root cause, so operators know exactly
  what was lost and why.

The same scanner drives :func:`repro.core.validate.validate_container`
(which reports *all* findings instead of stopping at the first) and the
crash recovery path of :func:`repro.core.stream.stream_decompress`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.codecs.base import Codec, get_codec
from repro.core.exceptions import (
    ConfigurationError,
    ContainerFormatError,
    IsobarError,
    TruncatedContainerError,
)
from repro.core.metadata import (
    _CHUNK_MAGIC,
    ChunkMetadata,
    ContainerHeader,
    locate_footer,
)
from repro.core.pipeline import decode_chunk_payload
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.observability.trace import NULL_TRACER, Tracer

__all__ = [
    "SALVAGE_POLICIES",
    "ScanEvent",
    "ChunkOutcome",
    "SalvageReport",
    "SalvageResult",
    "scan_chunks",
    "salvage_decompress",
]

#: Recognised per-chunk error policies for lenient decoding.
SALVAGE_POLICIES = ("raise", "skip", "zero_fill")

#: How many ``CHNK`` magic candidates a resync inspects before settling
#: for the first structurally-plausible one (bounds worst-case cost on
#: payloads that happen to contain many magic byte strings).
_RESYNC_CANDIDATE_LIMIT = 64


def _check_policy(policy: str) -> str:
    # The canonical decoder spellings ("salvage-skip"/"salvage-zero",
    # see repro.core.preferences.ERROR_POLICIES) are accepted here too,
    # so salvage_decompress shares the unified errors= vocabulary.
    policy = {"salvage-skip": "skip", "salvage-zero": "zero_fill"}.get(
        policy, policy
    )
    if policy not in SALVAGE_POLICIES:
        raise ConfigurationError(
            f"unknown salvage policy {policy!r}; "
            f"expected one of {', '.join(SALVAGE_POLICIES)}"
        )
    return policy


@dataclass(frozen=True)
class ScanEvent:
    """One structural region discovered by :func:`scan_chunks`.

    ``kind`` is ``"chunk"`` for a parseable chunk record (payload not
    yet decoded — it may still be corrupt) or ``"gap"`` for a byte
    range where the chunk chain was unreadable and had to be skipped.
    """

    kind: str  # "chunk" | "gap"
    start: int  # absolute byte offset of the record / damaged region
    end: int  # absolute byte offset one past the region
    meta: ChunkMetadata | None = None
    payload_offset: int | None = None
    cause: str | None = None
    resynced: bool = False  # found by magic scan after damage


def _probe_candidate(
    data: bytes,
    pos: int,
    header: ContainerHeader,
    codec: Codec | None,
) -> tuple[bool, bool]:
    """Judge a resync candidate: ``(structurally_ok, crc_validated)``."""
    try:
        meta, payload_offset = ChunkMetadata.decode(
            data, pos, header.element_width
        )
    except IsobarError:
        return False, False
    payload_end = payload_offset + meta.compressed_size + meta.incompressible_size
    if payload_end > len(data):
        return False, False
    # A fabricated record (stray "CHNK" bytes inside a payload) can
    # still park absurd-but-in-bounds field values; sanity-bound the
    # element count against the header's own geometry.
    limit = max(header.chunk_elements, header.n_elements, 1)
    if not 0 < meta.n_elements <= limit:
        return False, False
    if codec is None:
        return True, False
    try:
        decode_chunk_payload(
            header,
            codec,
            meta,
            data[payload_offset:payload_offset + meta.compressed_size],
            data[payload_offset + meta.compressed_size:payload_end],
        )
    except IsobarError:
        return True, False
    return True, True


def _resync(
    data: bytes,
    start: int,
    header: ContainerHeader,
    codec: Codec | None,
) -> int | None:
    """Find the next plausible chunk record at or after ``start``.

    Prefers the first candidate whose payload decodes and CRC-verifies
    (certainly a real chunk); falls back to the first structurally
    plausible candidate (a real chunk whose payload is itself damaged).
    Returns ``None`` when no candidate survives — the rest of the
    stream is lost.
    """
    fallback: int | None = None
    inspected = 0
    pos = data.find(_CHUNK_MAGIC, start)
    while pos != -1 and inspected < _RESYNC_CANDIDATE_LIMIT:
        structurally_ok, validated = _probe_candidate(data, pos, header, codec)
        if validated:
            return pos
        if structurally_ok and fallback is None:
            fallback = pos
        inspected += 1
        pos = data.find(_CHUNK_MAGIC, pos + 1)
    return fallback


def scan_chunks(
    data: bytes,
    header: ContainerHeader,
    offset: int,
    codec: Codec | None = None,
    *,
    to_eof: bool = False,
) -> Iterator[ScanEvent]:
    """Structurally walk the chunk chain, resynchronizing over damage.

    Yields one :class:`ScanEvent` per chunk record or damaged gap, in
    byte order.  Payloads are *not* decoded (except internally, to
    vet resync candidates); callers decide what to do with each region.

    ``to_eof=True`` ignores the header's declared chunk count and scans
    until the end of ``data`` — the recovery mode for streams whose
    final header patch never happened (crashed writer).

    A validated chunk-index footer at EOF delimits the scan: the walk
    (and any final damage gap) stops at the footer boundary instead of
    misreading the index as a destroyed chunk region.
    """
    n_expected = None if to_eof else header.n_chunks
    chain_end = len(data)
    location = locate_footer(data)
    if location.ok:
        chain_end = location.start
    found = 0
    resynced = False
    while offset < chain_end and (n_expected is None or found < n_expected):
        try:
            meta, payload_offset = ChunkMetadata.decode(
                data, offset, header.element_width
            )
            payload_end = (
                payload_offset + meta.compressed_size + meta.incompressible_size
            )
            if payload_end > chain_end:
                raise TruncatedContainerError(
                    "container truncated inside chunk payload"
                )
        except IsobarError as exc:
            candidate = _resync(data, offset + 1, header, codec)
            if candidate is None or candidate >= chain_end:
                yield ScanEvent(
                    kind="gap",
                    start=offset,
                    end=chain_end,
                    cause=str(exc),
                    resynced=resynced,
                )
                return
            yield ScanEvent(
                kind="gap",
                start=offset,
                end=candidate,
                cause=str(exc),
                resynced=resynced,
            )
            offset = candidate
            resynced = True
            continue
        yield ScanEvent(
            kind="chunk",
            start=offset,
            end=payload_end,
            meta=meta,
            payload_offset=payload_offset,
            resynced=resynced,
        )
        resynced = False
        found += 1
        offset = payload_end


@dataclass(frozen=True)
class ChunkOutcome:
    """Fate of one chunk (or one damaged multi-chunk region)."""

    index: int  # ordinal of the (first) chunk covered by this region
    status: str  # "recovered" | "corrupt" | "lost"
    start: int  # absolute byte offset
    end: int  # absolute byte offset one past the region
    n_elements: int  # elements covered (estimated for lost gaps)
    n_chunks: int = 1  # chunks covered (estimated for lost gaps)
    estimated: bool = False  # counts inferred rather than read
    cause: str | None = None

    @property
    def byte_range(self) -> tuple[int, int]:
        """Absolute ``[start, end)`` byte range of this region."""
        return (self.start, self.end)


@dataclass
class SalvageReport:
    """Everything :func:`salvage_decompress` learned about a container."""

    policy: str
    header: ContainerHeader | None = None
    outcomes: list[ChunkOutcome] = field(default_factory=list)
    total_bytes: int = 0
    unclosed: bool = False  # recovered via a to-EOF scan (crashed writer)

    @property
    def recovered(self) -> list[ChunkOutcome]:
        """Regions decoded bit-exactly (CRC verified)."""
        return [o for o in self.outcomes if o.status == "recovered"]

    @property
    def damaged(self) -> list[ChunkOutcome]:
        """Regions that could not be recovered (corrupt or lost)."""
        return [o for o in self.outcomes if o.status != "recovered"]

    @property
    def recovered_chunks(self) -> int:
        """Number of chunks recovered bit-exactly."""
        return sum(o.n_chunks for o in self.recovered)

    @property
    def lost_chunks(self) -> int:
        """Number of chunks (possibly estimated) that were not recovered."""
        return sum(o.n_chunks for o in self.damaged)

    @property
    def recovered_elements(self) -> int:
        """Elements restored bit-exactly."""
        return sum(o.n_elements for o in self.recovered)

    @property
    def lost_elements(self) -> int:
        """Elements lost to damage (estimated for structural gaps)."""
        return sum(o.n_elements for o in self.damaged)

    @property
    def complete(self) -> bool:
        """True when every chunk was recovered and nothing was damaged."""
        return not self.damaged

    def summary_lines(self) -> list[str]:
        """Human-readable report body (mirrors the validator's style)."""
        lines = []
        if self.header is not None:
            lines.append(
                f"header: {self.header.dtype}, "
                f"{self.header.n_elements} elements, "
                f"{self.header.n_chunks} chunks, "
                f"codec {self.header.codec_name}"
            )
        if self.unclosed:
            lines.append(
                "stream was never closed (crashed writer); chunks "
                "recovered by forward scan"
            )
        lines.append(
            f"policy {self.policy}: recovered {self.recovered_chunks} chunks "
            f"({self.recovered_elements} elements), lost {self.lost_chunks} "
            f"chunks ({self.lost_elements} elements)"
        )
        for outcome in self.damaged:
            approx = "~" if outcome.estimated else ""
            lines.append(
                f"[{outcome.status}] chunk {approx}{outcome.index}: bytes "
                f"[{outcome.start}, {outcome.end}), {approx}"
                f"{outcome.n_elements} elements: {outcome.cause}"
            )
        lines.append("RESULT: " + ("COMPLETE" if self.complete else "PARTIAL"))
        return lines


@dataclass(frozen=True)
class SalvageResult:
    """Recovered elements plus the full damage accounting."""

    values: np.ndarray
    report: SalvageReport


def _estimate_gaps(
    events: list[ScanEvent],
    header: ContainerHeader,
) -> dict[int, tuple[int, int]]:
    """Estimate ``(n_elements, n_chunks)`` for each gap event.

    The chunk chain stores no chunk ordinals, so a destroyed region's
    contents must be inferred from the header geometry: whatever part
    of the declared element count is not covered by parseable records
    is distributed across the gaps (evenly, remainder to the first).
    """
    known = sum(e.meta.n_elements for e in events if e.kind == "chunk")
    gap_positions = [i for i, e in enumerate(events) if e.kind == "gap"]
    estimates: dict[int, tuple[int, int]] = {}
    if not gap_positions:
        return estimates
    deficit = max(int(header.n_elements) - int(known), 0)
    base, remainder = divmod(deficit, len(gap_positions))
    for rank, position in enumerate(gap_positions):
        n_elements = base + (remainder if rank == 0 else 0)
        if header.chunk_elements > 0 and n_elements > 0:
            n_chunks = max(
                1, round(n_elements / header.chunk_elements)
            )
        else:
            n_chunks = 1
        estimates[position] = (n_elements, n_chunks)
    return estimates


def salvage_decompress(
    data: bytes,
    policy: str = "skip",
    *,
    to_eof: bool = False,
    metrics: MetricsRegistry | None = None,
) -> SalvageResult:
    """Decode everything recoverable from a (possibly damaged) container.

    Parameters
    ----------
    data:
        A serialized ISOBAR container, possibly corrupted or truncated.
        The global header must still be readable — a container whose
        header is destroyed is not salvageable (nothing records the
        dtype or solver) and raises like the strict decoder.
    policy:
        ``"raise"`` — abort on the first damaged chunk (strict
        semantics, but with a report when nothing is damaged);
        ``"skip"`` — drop damaged chunks, return the surviving elements
        concatenated in order;
        ``"zero_fill"`` — return the full declared element count with
        zeros substituted for every damaged region, so surviving data
        keeps its absolute position.
    to_eof:
        Ignore the header's declared chunk count and scan to the end of
        ``data`` — recovers streams whose final header patch never
        happened (see ``stream_decompress(..., tolerate_unclosed=True)``).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; when
        given, chunk fates accumulate under
        ``isobar_salvage_chunks_total{status=}`` /
        ``isobar_salvage_elements_total{status=}`` and the scan /
        decode / merge stages are timed (``docs/observability.md``).

    Returns
    -------
    SalvageResult
        ``values`` (the recovered array) and ``report`` (a
        :class:`SalvageReport` identifying every damaged chunk's index,
        byte range and root cause).
    """
    policy = _check_policy(policy)
    registry = NULL_REGISTRY if metrics is None else metrics
    tracer = Tracer(registry) if registry.enabled else NULL_TRACER
    header, offset = ContainerHeader.decode(data)
    codec = get_codec(header.codec_name)

    scan_start = _time.perf_counter()
    events = list(scan_chunks(data, header, offset, codec, to_eof=to_eof))
    tracer.add(
        "scan", _time.perf_counter() - scan_start, bytes_in=len(data)
    )
    gap_estimates = _estimate_gaps(events, header)

    report = SalvageReport(
        policy=policy,
        header=header,
        total_bytes=len(data),
        unclosed=to_eof,
    )
    pieces: list[tuple[ChunkOutcome, np.ndarray | None]] = []
    ordinal = 0
    decode_start = _time.perf_counter()
    for position, event in enumerate(events):
        if event.kind == "gap":
            if policy == "raise":
                raise ContainerFormatError(
                    f"chunk {ordinal} at byte offset {event.start}: "
                    f"unreadable chunk record: {event.cause}"
                )
            n_elements, n_chunks = gap_estimates[position]
            outcome = ChunkOutcome(
                index=ordinal,
                status="lost",
                start=event.start,
                end=event.end,
                n_elements=n_elements,
                n_chunks=n_chunks,
                estimated=True,
                cause=event.cause,
            )
            pieces.append((outcome, None))
            ordinal += n_chunks
            continue
        meta = event.meta
        compressed = data[event.payload_offset:event.payload_offset
                          + meta.compressed_size]
        incompressible = data[event.payload_offset
                              + meta.compressed_size:event.end]
        try:
            chunk = decode_chunk_payload(
                header,
                codec,
                meta,
                compressed,
                incompressible,
                chunk_index=ordinal,
                byte_offset=event.start,
            )
            outcome = ChunkOutcome(
                index=ordinal,
                status="recovered",
                start=event.start,
                end=event.end,
                n_elements=int(meta.n_elements),
            )
        except IsobarError as exc:
            if policy == "raise":
                raise
            chunk = None
            outcome = ChunkOutcome(
                index=ordinal,
                status="corrupt",
                start=event.start,
                end=event.end,
                n_elements=int(meta.n_elements),
                cause=str(exc),
            )
        pieces.append((outcome, chunk))
        ordinal += 1
    tracer.add("decode", _time.perf_counter() - decode_start)
    report.outcomes = [outcome for outcome, _ in pieces]

    merge_start = _time.perf_counter()
    values = _assemble(pieces, header, policy, to_eof=to_eof)
    tracer.add(
        "merge", _time.perf_counter() - merge_start, bytes_out=values.nbytes
    )
    if registry.enabled:
        instruments = PipelineInstruments(registry)
        for outcome in report.outcomes:
            instruments.salvage_chunks.inc(
                outcome.n_chunks, status=outcome.status
            )
            element_status = (
                "recovered" if outcome.status == "recovered" else "lost"
            )
            if outcome.n_elements:
                instruments.salvage_elements.inc(
                    outcome.n_elements, status=element_status
                )
        instruments.runs.inc(1, operation="salvage")
        instruments.input_bytes.inc(len(data), operation="salvage")
        instruments.output_bytes.inc(values.nbytes, operation="salvage")
    return SalvageResult(values=values, report=report)


def _assemble(
    pieces: list[tuple[ChunkOutcome, np.ndarray | None]],
    header: ContainerHeader,
    policy: str,
    *,
    to_eof: bool,
) -> np.ndarray:
    """Combine recovered chunks into the output array per policy."""
    recovered = [chunk for _, chunk in pieces if chunk is not None]
    damage_free = all(chunk is not None for _, chunk in pieces)

    if policy != "zero_fill":
        if recovered:
            flat = np.concatenate(recovered).astype(header.dtype, copy=False)
        else:
            flat = np.empty(0, dtype=header.dtype)
        # Only a fully intact, fully declared container can be restored
        # to its original shape; a skip-decoded partial array stays flat.
        if (
            damage_free
            and not to_eof
            and flat.size == header.n_elements
            and header.shape
            and int(np.prod(header.shape, dtype=np.int64)) == header.n_elements
        ):
            return flat.reshape(header.shape)
        return flat

    # zero_fill: allocate the full declared extent (or, for unclosed
    # streams with a zeroed placeholder header, the scanned extent) and
    # place every recovered chunk at its absolute element offset.
    total = sum(outcome.n_elements for outcome, _ in pieces)
    size = max(int(header.n_elements), int(total))
    out = np.zeros(size, dtype=header.dtype)
    cursor = 0
    for outcome, chunk in pieces:
        if chunk is not None and cursor < size:
            stop = min(cursor + chunk.size, size)
            out[cursor:stop] = np.asarray(chunk, dtype=header.dtype)[
                : stop - cursor
            ]
        cursor += outcome.n_elements
    if (
        header.shape
        and int(np.prod(header.shape, dtype=np.int64)) == size
    ):
        return out.reshape(header.shape)
    return out
