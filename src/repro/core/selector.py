"""EUPA-selector: End User's Preference Adaptive Selector (Section II-C).

The selector decides which solver (codec) and which byte-level
linearization the workflow should use, by actually *trying* every
candidate combination on a training sample of the input and timing it:

1. draw a sample of elements from the input,
2. for each (codec, linearization) pair, run the sample through the
   same partition-and-compress path the real chunk will take,
3. pick the winner for the user's preference — best ratio (``RATIO``)
   or highest throughput whose ratio is still acceptable (``SPEED``).

Explicit user overrides of the codec and/or linearization restrict the
candidate set rather than bypassing the evaluation, so the decision
record always carries measured numbers.

Sampling note: the paper samples "random elements"; we sample a few
random *contiguous runs* totalling the same element count, because
scattering individual elements would destroy the byte-stream locality
LZ77-family solvers depend on and systematically underestimate every
candidate's ratio.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.codecs.base import get_codec
from repro.core.analyzer import AnalysisResult, analyze
from repro.core.exceptions import SelectorError
from repro.core.partitioner import partition
from repro.core.preferences import IsobarConfig, Linearization, Preference
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "CandidateEvaluation",
    "CandidateFailure",
    "SelectorDecision",
    "EupaSelector",
]

_SAMPLE_RUNS = 8


@dataclass(frozen=True)
class CandidateEvaluation:
    """Measured performance of one (codec, linearization) candidate."""

    codec_name: str
    linearization: Linearization
    sample_bytes: int
    compressed_bytes: int
    compress_seconds: float

    @property
    def ratio(self) -> float:
        """End-to-end sample compression ratio (payload + raw noise)."""
        return self.sample_bytes / self.compressed_bytes

    @property
    def throughput(self) -> float:
        """Sample compression throughput in bytes/second."""
        if self.compress_seconds <= 0.0:
            return float("inf")
        return self.sample_bytes / self.compress_seconds


@dataclass(frozen=True)
class CandidateFailure:
    """A candidate whose trial evaluation raised and was skipped."""

    codec_name: str
    linearization: Linearization
    error: str


@dataclass(frozen=True)
class SelectorDecision:
    """The selector's verdict plus the full evaluation record."""

    codec_name: str
    linearization: Linearization
    preference: Preference
    improvable: bool
    candidates: tuple[CandidateEvaluation, ...]
    sample_elements: int
    #: Candidates that raised during trial evaluation (skipped, not fatal).
    failed_candidates: tuple[CandidateFailure, ...] = ()

    @property
    def chosen(self) -> CandidateEvaluation:
        """The evaluation row backing the decision."""
        for cand in self.candidates:
            if (
                cand.codec_name == self.codec_name
                and cand.linearization == self.linearization
            ):
                return cand
        raise SelectorError(
            f"decision ({self.codec_name}, {self.linearization.value}) has no "
            "matching candidate evaluation"
        )

    def summary(self) -> str:
        """One-line description for logs and the CLI."""
        try:
            chosen = self.chosen
        except SelectorError:
            # Fallback decisions (empty input, or every candidate
            # evaluation failed under a resilience policy) carry no
            # measured numbers.
            return (
                f"{self.codec_name} + {self.linearization.value}"
                f"-linearization ({self.preference.value} preference; "
                "unevaluated fallback)"
            )
        return (
            f"{self.codec_name} + {self.linearization.value}-linearization "
            f"({self.preference.value} preference; sample ratio "
            f"{chosen.ratio:.3f})"
        )


class EupaSelector:
    """Deterministic sample-based codec and linearization selection.

    Parameters
    ----------
    config:
        Candidate space, sample size and preference.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; when
        given, every candidate evaluation and every decision is
        recorded under the ``isobar_selector_*`` series (see
        ``docs/observability.md``).
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self._config = config or IsobarConfig()
        self._metrics = NULL_REGISTRY if metrics is None else metrics
        self._instruments = PipelineInstruments(self._metrics)

    @property
    def config(self) -> IsobarConfig:
        """The configuration driving candidate generation and choice."""
        return self._config

    # -- sampling -------------------------------------------------------

    def draw_sample(self, values: np.ndarray) -> np.ndarray:
        """Draw the training sample: random contiguous runs of elements."""
        flat = np.asarray(values).reshape(-1)
        target = min(self._config.sample_elements, flat.size)
        if target <= 0:
            raise SelectorError("cannot sample from an empty input")
        if target == flat.size:
            return flat
        rng = np.random.default_rng(self._config.seed)
        run = max(target // _SAMPLE_RUNS, 1)
        pieces = []
        remaining = target
        while remaining > 0:
            length = min(run, remaining)
            start = int(rng.integers(0, flat.size - length + 1))
            pieces.append(flat[start:start + length])
            remaining -= length
        return np.concatenate(pieces)

    # -- evaluation -------------------------------------------------------

    def _candidate_space(self) -> list[tuple[str, Linearization]]:
        codecs = (
            (self._config.codec,)
            if self._config.codec is not None
            else self._config.candidate_codecs
        )
        linearizations = (
            (self._config.linearization,)
            if self._config.linearization is not None
            else (Linearization.ROW, Linearization.COLUMN)
        )
        space = [(c, l) for c in codecs for l in linearizations]
        if not space:
            raise SelectorError("candidate space is empty; check configuration")
        return space

    def _evaluate(
        self,
        sample: np.ndarray,
        analysis: AnalysisResult,
        codec_name: str,
        linearization: Linearization,
    ) -> CandidateEvaluation:
        codec = get_codec(codec_name)
        sample_bytes = sample.nbytes
        start = time.perf_counter()
        if analysis.improvable:
            part = partition(sample, analysis.mask, linearization)
            compressed = codec.compress(part.compressible)
            total = len(compressed) + len(part.incompressible)
        else:
            compressed = codec.compress(np.ascontiguousarray(sample).tobytes())
            total = len(compressed)
        elapsed = time.perf_counter() - start
        return CandidateEvaluation(
            codec_name=codec_name,
            linearization=linearization,
            sample_bytes=sample_bytes,
            compressed_bytes=max(total, 1),
            compress_seconds=elapsed,
        )

    # -- decision ---------------------------------------------------------

    def select(
        self,
        values: np.ndarray,
        analysis: AnalysisResult | None = None,
    ) -> SelectorDecision:
        """Evaluate all candidates on a sample and pick the winner.

        ``analysis`` is the analyzer verdict for the *full* input (or a
        representative chunk); when omitted it is computed from the
        sample itself.  The decision applies to the whole stream —
        Section II-F shows a single choice stays optimal across an
        entire simulation run.
        """
        sample = self.draw_sample(values)
        if analysis is None:
            analysis = analyze(sample, tau=self._config.tau)

        evaluated: list[CandidateEvaluation] = []
        failed: list[CandidateFailure] = []
        for codec_name, lin in self._candidate_space():
            try:
                evaluated.append(
                    self._evaluate(sample, analysis, codec_name, lin)
                )
            except Exception as exc:  # noqa: BLE001 - candidate containment
                # A misbehaving candidate must not abort selection: it
                # is skipped, recorded on the decision, and counted.
                failed.append(
                    CandidateFailure(
                        codec_name=codec_name,
                        linearization=lin,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                if self._metrics.enabled:
                    self._instruments.selector_failures.inc(
                        1, codec=codec_name, linearization=lin.value
                    )
        candidates = tuple(evaluated)
        if not candidates:
            details = "; ".join(
                f"({f.codec_name}, {f.linearization.value}): {f.error}"
                for f in failed
            )
            raise SelectorError(
                f"every candidate evaluation failed: {details}"
            )
        best = self._pick(candidates)
        decision = SelectorDecision(
            codec_name=best.codec_name,
            linearization=best.linearization,
            preference=self._config.preference,
            improvable=analysis.improvable,
            candidates=candidates,
            sample_elements=int(sample.size),
            failed_candidates=tuple(failed),
        )
        if self._metrics.enabled:
            self._instruments.record_selector(decision)
        return decision

    def _pick(
        self, candidates: tuple[CandidateEvaluation, ...]
    ) -> CandidateEvaluation:
        best_ratio = max(cand.ratio for cand in candidates)
        if self._config.preference is Preference.RATIO:
            return max(candidates, key=lambda cand: cand.ratio)
        floor = best_ratio * self._config.min_acceptable_ratio_fraction
        acceptable = [cand for cand in candidates if cand.ratio >= floor]
        if not acceptable:
            acceptable = list(candidates)
        return max(acceptable, key=lambda cand: cand.throughput)
