"""EUPA-selector: End User's Preference Adaptive Selector (Section II-C).

The selector decides which solver (codec) and which byte-level
linearization the workflow should use, by actually *trying* every
candidate combination on a training sample of the input and timing it:

1. draw a sample of elements from the input,
2. for each (codec, linearization) pair, run the sample through the
   same partition-and-compress path the real chunk will take,
3. pick the winner for the user's preference — best ratio (``RATIO``)
   or highest throughput whose ratio is still acceptable (``SPEED``).

Explicit user overrides of the codec and/or linearization restrict the
candidate set rather than bypassing the evaluation, so the decision
record always carries measured numbers.

Sampling note: the paper samples "random elements"; we sample a few
random *contiguous runs* totalling the same element count, because
scattering individual elements would destroy the byte-stream locality
LZ77-family solvers depend on and systematically underestimate every
candidate's ratio.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.codecs.base import get_codec
from repro.core.analyzer import AnalysisResult, analyze
from repro.core.exceptions import ConfigurationError, SelectorError
from repro.core.partitioner import partition
from repro.core.preferences import IsobarConfig, Linearization, Preference
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "CandidateEvaluation",
    "CandidateFailure",
    "CandidatePrediction",
    "SelectorDecision",
    "SelectorStrategy",
    "EupaSelector",
    "register_selector_strategy",
    "selector_strategy_names",
    "resolve_selector",
]

_SAMPLE_RUNS = 8


@dataclass(frozen=True)
class CandidateEvaluation:
    """Measured performance of one (codec, linearization) candidate."""

    codec_name: str
    linearization: Linearization
    sample_bytes: int
    compressed_bytes: int
    compress_seconds: float

    @property
    def ratio(self) -> float:
        """End-to-end sample compression ratio (payload + raw noise)."""
        return self.sample_bytes / self.compressed_bytes

    @property
    def throughput(self) -> float:
        """Sample compression throughput in bytes/second."""
        if self.compress_seconds <= 0.0:
            return float("inf")
        return self.sample_bytes / self.compress_seconds


@dataclass(frozen=True)
class CandidateFailure:
    """A candidate whose trial evaluation raised and was skipped."""

    codec_name: str
    linearization: Linearization
    error: str


@dataclass(frozen=True)
class CandidatePrediction:
    """A regressor's estimate for one (codec, linearization) candidate.

    Emitted by the learned selector
    (:mod:`repro.core.selector_learned`) when it decides without
    timing; ``confident`` marks whether the estimate cleared the
    strategy's uncertainty rule.
    """

    codec_name: str
    linearization: Linearization
    predicted_ratio: float
    predicted_throughput: float
    confident: bool


@dataclass(frozen=True)
class SelectorDecision:
    """The selector's verdict plus the full evaluation record."""

    codec_name: str
    linearization: Linearization
    preference: Preference
    improvable: bool
    candidates: tuple[CandidateEvaluation, ...]
    sample_elements: int
    #: Candidates that raised during trial evaluation (skipped, not fatal).
    failed_candidates: tuple[CandidateFailure, ...] = ()
    #: How the decision was produced: ``"probe"`` (timed candidate
    #: evaluations), ``"predicted"`` (regressor, no timing) or
    #: ``"cached"`` (replayed from a :class:`SelectorDecisionCache`).
    origin: str = "probe"
    #: Regressor estimates backing a predicted decision (empty for
    #: probed decisions).
    predictions: tuple[CandidatePrediction, ...] = ()

    @property
    def chosen(self) -> CandidateEvaluation:
        """The evaluation row backing the decision."""
        for cand in self.candidates:
            if (
                cand.codec_name == self.codec_name
                and cand.linearization == self.linearization
            ):
                return cand
        raise SelectorError(
            f"decision ({self.codec_name}, {self.linearization.value}) has no "
            "matching candidate evaluation"
        )

    @property
    def chosen_prediction(self) -> CandidatePrediction | None:
        """The prediction row backing a predicted/cached decision."""
        for pred in self.predictions:
            if (
                pred.codec_name == self.codec_name
                and pred.linearization == self.linearization
            ):
                return pred
        return None

    def summary(self) -> str:
        """One-line description for logs and the CLI."""
        head = (
            f"{self.codec_name} + {self.linearization.value}-linearization "
            f"({self.preference.value} preference; "
        )
        try:
            chosen = self.chosen
        except SelectorError:
            pred = self.chosen_prediction
            if pred is not None:
                return (
                    head + f"{self.origin}, est. ratio "
                    f"{pred.predicted_ratio:.3f})"
                )
            # Fallback decisions (empty input, or every candidate
            # evaluation failed under a resilience policy) carry no
            # measured numbers.
            return head + "unevaluated fallback)"
        return head + f"sample ratio {chosen.ratio:.3f})"

    def to_dict(self) -> dict:
        """A JSON-ready document (the ``isobar plan`` / ``/v1/plan`` body)."""
        return {
            "codec": self.codec_name,
            "linearization": self.linearization.value,
            "preference": self.preference.value,
            "improvable": self.improvable,
            "origin": self.origin,
            "sample_elements": self.sample_elements,
            "candidates": [
                {
                    "codec": cand.codec_name,
                    "linearization": cand.linearization.value,
                    "sample_bytes": cand.sample_bytes,
                    "compressed_bytes": cand.compressed_bytes,
                    "compress_seconds": cand.compress_seconds,
                    "ratio": cand.ratio,
                    "throughput": cand.throughput,
                }
                for cand in self.candidates
            ],
            "predictions": [
                {
                    "codec": pred.codec_name,
                    "linearization": pred.linearization.value,
                    "predicted_ratio": pred.predicted_ratio,
                    "predicted_throughput": pred.predicted_throughput,
                    "confident": pred.confident,
                }
                for pred in self.predictions
            ],
            "failed_candidates": [
                {
                    "codec": fail.codec_name,
                    "linearization": fail.linearization.value,
                    "error": fail.error,
                }
                for fail in self.failed_candidates
            ],
        }


class EupaSelector:
    """Deterministic sample-based codec and linearization selection.

    Parameters
    ----------
    config:
        Candidate space, sample size and preference.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; when
        given, every candidate evaluation and every decision is
        recorded under the ``isobar_selector_*`` series (see
        ``docs/observability.md``).
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self._config = config or IsobarConfig()
        self._metrics = NULL_REGISTRY if metrics is None else metrics
        self._instruments = PipelineInstruments(self._metrics)

    @property
    def config(self) -> IsobarConfig:
        """The configuration driving candidate generation and choice."""
        return self._config

    # -- sampling -------------------------------------------------------

    def draw_sample(self, values: np.ndarray) -> np.ndarray:
        """Draw the training sample: random contiguous runs of elements."""
        flat = np.asarray(values).reshape(-1)
        target = min(self._config.sample_elements, flat.size)
        if target <= 0:
            raise SelectorError("cannot sample from an empty input")
        if target == flat.size:
            return flat
        # selector_seed pins the sample-run draw independently of the
        # shared pipeline seed, so decisions and benchmarks replay.
        seed = (
            self._config.selector_seed
            if self._config.selector_seed is not None
            else self._config.seed
        )
        rng = np.random.default_rng(seed)
        run = max(target // _SAMPLE_RUNS, 1)
        pieces = []
        remaining = target
        while remaining > 0:
            length = min(run, remaining)
            start = int(rng.integers(0, flat.size - length + 1))
            pieces.append(flat[start:start + length])
            remaining -= length
        return np.concatenate(pieces)

    # -- evaluation -------------------------------------------------------

    def _candidate_space(self) -> list[tuple[str, Linearization]]:
        codecs = (
            (self._config.codec,)
            if self._config.codec is not None
            else self._config.candidate_codecs
        )
        linearizations = (
            (self._config.linearization,)
            if self._config.linearization is not None
            else (Linearization.ROW, Linearization.COLUMN)
        )
        space = [(c, l) for c in codecs for l in linearizations]
        if not space:
            raise SelectorError("candidate space is empty; check configuration")
        return space

    def _evaluate(
        self,
        sample: np.ndarray,
        analysis: AnalysisResult,
        codec_name: str,
        linearization: Linearization,
    ) -> CandidateEvaluation:
        codec = get_codec(codec_name)
        sample_bytes = sample.nbytes
        start = time.perf_counter()
        if analysis.improvable:
            part = partition(sample, analysis.mask, linearization)
            compressed = codec.compress(part.compressible)
            total = len(compressed) + len(part.incompressible)
        else:
            compressed = codec.compress(np.ascontiguousarray(sample).tobytes())
            total = len(compressed)
        elapsed = time.perf_counter() - start
        return CandidateEvaluation(
            codec_name=codec_name,
            linearization=linearization,
            sample_bytes=sample_bytes,
            compressed_bytes=max(total, 1),
            compress_seconds=elapsed,
        )

    # -- decision ---------------------------------------------------------

    def select(
        self,
        values: np.ndarray,
        analysis: AnalysisResult | None = None,
    ) -> SelectorDecision:
        """Evaluate all candidates on a sample and pick the winner.

        ``analysis`` is the analyzer verdict for the *full* input (or a
        representative chunk); when omitted it is computed from the
        sample itself.  The decision applies to the whole stream —
        Section II-F shows a single choice stays optimal across an
        entire simulation run.
        """
        decide_start = time.perf_counter()
        sample = self.draw_sample(values)
        if analysis is None:
            analysis = analyze(sample, tau=self._config.tau)

        evaluated: list[CandidateEvaluation] = []
        failed: list[CandidateFailure] = []
        for codec_name, lin in self._candidate_space():
            try:
                evaluated.append(
                    self._evaluate(sample, analysis, codec_name, lin)
                )
            except Exception as exc:  # noqa: BLE001 - candidate containment
                # A misbehaving candidate must not abort selection: it
                # is skipped, recorded on the decision, and counted.
                failed.append(
                    CandidateFailure(
                        codec_name=codec_name,
                        linearization=lin,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                if self._metrics.enabled:
                    self._instruments.selector_failures.inc(
                        1, codec=codec_name, linearization=lin.value
                    )
        candidates = tuple(evaluated)
        if not candidates:
            details = "; ".join(
                f"({f.codec_name}, {f.linearization.value}): {f.error}"
                for f in failed
            )
            raise SelectorError(
                f"every candidate evaluation failed: {details}"
            )
        best = self._pick(candidates)
        decision = SelectorDecision(
            codec_name=best.codec_name,
            linearization=best.linearization,
            preference=self._config.preference,
            improvable=analysis.improvable,
            candidates=candidates,
            sample_elements=int(sample.size),
            failed_candidates=tuple(failed),
        )
        if self._metrics.enabled:
            self._instruments.record_selector(decision)
            self._instruments.selector_decision_seconds.observe(
                time.perf_counter() - decide_start, strategy="eupa"
            )
        return decision

    def _pick(
        self, candidates: tuple[CandidateEvaluation, ...]
    ) -> CandidateEvaluation:
        best_ratio = max(cand.ratio for cand in candidates)
        if self._config.preference is Preference.RATIO:
            return max(candidates, key=lambda cand: cand.ratio)
        floor = best_ratio * self._config.min_acceptable_ratio_fraction
        acceptable = [cand for cand in candidates if cand.ratio >= floor]
        if not acceptable:
            acceptable = list(candidates)
        return max(acceptable, key=lambda cand: cand.throughput)


# -- pluggable strategy registry ------------------------------------------


@runtime_checkable
class SelectorStrategy(Protocol):
    """The contract every selection strategy implements.

    A strategy receives the full input (or a representative chunk) and
    returns a :class:`SelectorDecision`.  Strategies only influence
    the decision — containers they steer are byte-decodable by the
    unchanged decoder.  Failures must surface as
    :class:`~repro.core.exceptions.SelectorError` so every caller's
    fallback path (resilience, service status mapping) keeps working;
    lint rule ISO008 enforces this for registered strategies.
    """

    def select(
        self,
        values: np.ndarray,
        analysis: AnalysisResult | None = None,
    ) -> SelectorDecision:
        """Decide the (codec, linearization) for ``values``."""
        ...


#: A factory builds one strategy instance bound to a config and a
#: metrics registry (``metrics`` may be ``None`` for disabled mode).
StrategyFactory = Callable[
    [IsobarConfig, "MetricsRegistry | None"], SelectorStrategy
]

_STRATEGIES: dict[str, StrategyFactory] = {}
_STRATEGY_LOCK = threading.Lock()

#: Names resolved by importing :mod:`repro.core.selector_learned` on
#: first use — keeps the default ("eupa") path free of the learned
#: machinery.
_LAZY_STRATEGY_MODULE = "repro.core.selector_learned"
_LAZY_STRATEGY_NAMES = ("learned", "cached")


def register_selector_strategy(
    name: str, factory: StrategyFactory, *, replace: bool = False
) -> None:
    """Register a strategy factory under ``name`` (case-insensitive).

    Raises :class:`~repro.core.exceptions.ConfigurationError` when the
    name is already taken and ``replace`` is false, so an accidental
    double registration cannot silently shadow a strategy.
    """
    key = name.lower()
    with _STRATEGY_LOCK:
        if not replace and key in _STRATEGIES:
            raise ConfigurationError(
                f"selector strategy {name!r} is already registered; "
                "pass replace=True to override"
            )
        _STRATEGIES[key] = factory


def selector_strategy_names() -> tuple[str, ...]:
    """All registered strategy names (built-ins included), sorted."""
    with _STRATEGY_LOCK:
        names = set(_STRATEGIES)
    return tuple(sorted(names | set(_LAZY_STRATEGY_NAMES)))


def resolve_selector(
    config: IsobarConfig,
    *,
    metrics: MetricsRegistry | None = None,
) -> SelectorStrategy:
    """Build the strategy ``config.selector`` asks for.

    Accepts a registered name (``"eupa"``, ``"learned"``, ``"cached"``
    or anything added via :func:`register_selector_strategy`) or a
    ready strategy instance, which is returned as-is.
    """
    selector = config.selector
    if not isinstance(selector, str):
        if callable(getattr(selector, "select", None)):
            return selector
        raise ConfigurationError(
            "selector instance must implement the SelectorStrategy "
            f"protocol (a select() method), got {selector!r}"
        )
    name = selector.lower()
    with _STRATEGY_LOCK:
        factory = _STRATEGIES.get(name)
    if factory is None and name in _LAZY_STRATEGY_NAMES:
        import importlib

        importlib.import_module(_LAZY_STRATEGY_MODULE)
        with _STRATEGY_LOCK:
            factory = _STRATEGIES.get(name)
    if factory is None:
        choices = ", ".join(repr(n) for n in selector_strategy_names())
        raise ConfigurationError(
            f"unknown selector strategy {selector!r}; expected one of: "
            f"{choices} (or a SelectorStrategy instance)"
        )
    return factory(config, metrics)


register_selector_strategy(
    "eupa", lambda config, metrics: EupaSelector(config, metrics=metrics)
)
