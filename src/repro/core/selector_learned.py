"""Predict-first selection: online regression over content features.

The EUPA-selector (:mod:`repro.core.selector`) times every (codec,
linearization) candidate on a sample — the paper's approach, and the
accuracy oracle.  This module adds two strategies that avoid the
timing probe when they can:

``"learned"`` — :class:`LearnedSelector`
    Extracts cheap content features
    (:func:`repro.analysis.features.extract_features`) from the same
    seeded sample EUPA would draw, and asks an online ridge regressor
    (:class:`OnlineRatioModel`) for each candidate's (ratio,
    throughput).  When every candidate's prediction is *confident* —
    enough observations, low leverage (the sample looks like training
    data), low recent residual — it decides without timing.  Otherwise
    it falls back to one full EUPA probe and feeds every measured
    candidate back into the model as a training example, so accuracy
    improves across chunks, streams and service requests.

``"cached"`` — :class:`CachedSelector`
    The learned strategy behind a :class:`SelectorDecisionCache` — an
    LRU + TTL map keyed by quantized content features plus the config
    fingerprint.  Repeated or near-identical payloads (same variable,
    adjacent timesteps) skip both prediction and probing.  The default
    cache and model are process-wide singletons shared by
    :class:`~repro.core.pipeline.IsobarCompressor`,
    :func:`~repro.core.stream.stream_compress` and the service.

Every decision is produced through the same candidate space as EUPA —
``codec=`` / ``linearization=`` / ``preference=`` overrides restrict
candidates identically for every strategy — and only the *decision*
differs: containers are byte-decodable by the unchanged decoder.
Unexpected failures in the predict path degrade to the probe rather
than raising, and probe failures surface as
:class:`~repro.core.exceptions.SelectorError` (lint rule ISO008).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import replace as _dc_replace

import numpy as np

from repro.analysis.features import ContentFeatures, extract_features
from repro.core.analyzer import AnalysisResult, analyze
from repro.core.exceptions import ConfigurationError
from repro.core.preferences import IsobarConfig, Preference
from repro.core.selector import (
    CandidatePrediction,
    EupaSelector,
    SelectorDecision,
    register_selector_strategy,
)
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry

__all__ = [
    "OnlineRatioModel",
    "LearnedSelector",
    "CachedSelector",
    "SelectorDecisionCache",
    "shared_decision_cache",
    "shared_model",
]

#: Throughput observations are capped here before entering log space —
#: a sub-resolution timer reading must not poison the model with inf.
_MAX_THROUGHPUT = 1e12


class _TargetState:
    """Ridge-regression accumulator for one (codec, linearization)."""

    __slots__ = ("gram", "moment_ratio", "moment_speed", "n", "residual_ema")

    def __init__(self, dim: int, ridge: float):
        self.gram = np.eye(dim) * ridge
        self.moment_ratio = np.zeros(dim)
        self.moment_speed = np.zeros(dim)
        self.n = 0
        self.residual_ema = 0.0


class OnlineRatioModel:
    """Online ridge regression from content features to (ratio, speed).

    One independent target per (codec, linearization) pair, each
    predicting ``log(ratio)`` and ``log(throughput)`` from the feature
    vector.  Updates are rank-1 Gram accumulations — O(d^2) per
    observation, O(d^3) per prediction with d = 12 — and thread-safe,
    so one model can learn from every compressor in the process.

    Confidence combines three signals, all cheap:

    * ``n`` — at least ``min_observations`` training examples;
    * *leverage* ``x^T A^-1 x`` — how far the query sits from the
      training mass (1 for a brand-new direction, ~1/n for a repeat);
    * the exponential moving average of past one-step-ahead residuals
      in log-ratio space — drift pushes it up and probes resume.
    """

    def __init__(
        self,
        *,
        ridge: float = 1e-3,
        min_observations: int = 2,
        max_leverage: float = 0.51,
        max_residual: float = 0.05,
    ):
        self._ridge = ridge
        self._min_observations = min_observations
        self._max_leverage = max_leverage
        self._max_residual = max_residual
        self._targets: dict[tuple, _TargetState] = {}
        self._lock = threading.Lock()

    def _target(self, key: tuple, dim: int) -> _TargetState:
        state = self._targets.get(key)
        if state is None:
            state = _TargetState(dim, self._ridge)
            self._targets[key] = state
        return state

    def observe(
        self,
        features: np.ndarray,
        codec_name: str,
        linearization,
        ratio: float,
        throughput: float,
    ) -> None:
        """Feed one measured candidate evaluation into the model."""
        x = np.asarray(features, dtype=np.float64)
        y_ratio = float(np.log(max(ratio, 1e-9)))
        y_speed = float(
            np.log(min(max(throughput, 1e-9), _MAX_THROUGHPUT))
        )
        key = (codec_name, linearization)
        with self._lock:
            state = self._target(key, x.size)
            if state.n > 0:
                # One-step-ahead residual before the update: how wrong
                # the model would have been on this example.
                predicted = float(
                    x @ np.linalg.solve(state.gram, state.moment_ratio)
                )
                error = abs(predicted - y_ratio)
                state.residual_ema = 0.7 * state.residual_ema + 0.3 * error
            state.gram += np.outer(x, x)
            state.moment_ratio += x * y_ratio
            state.moment_speed += x * y_speed
            state.n += 1

    def predict(
        self, features: np.ndarray, codec_name: str, linearization
    ) -> tuple[float, float, bool]:
        """Predicted ``(ratio, throughput, confident)`` for a candidate."""
        x = np.asarray(features, dtype=np.float64)
        with self._lock:
            state = self._targets.get((codec_name, linearization))
            if state is None or state.n == 0:
                return float("nan"), float("nan"), False
            solved = np.linalg.solve(
                state.gram,
                np.column_stack(
                    (state.moment_ratio, state.moment_speed, x)
                ),
            )
            n = state.n
            residual = state.residual_ema
        ratio = float(np.exp(x @ solved[:, 0]))
        throughput = float(np.exp(x @ solved[:, 1]))
        leverage = float(x @ solved[:, 2])
        confident = (
            n >= self._min_observations
            and leverage <= self._max_leverage
            and residual <= self._max_residual
        )
        return ratio, throughput, confident

    def observation_count(self, codec_name: str, linearization) -> int:
        """Training examples seen for one candidate (0 if none)."""
        with self._lock:
            state = self._targets.get((codec_name, linearization))
            return state.n if state is not None else 0


class SelectorDecisionCache:
    """LRU + TTL map from content fingerprints to selector decisions.

    Keys combine the quantized :meth:`ContentFeatures.cache_key` with
    the config fingerprint (candidate space, preference, tau, sample
    size), so a config change can never replay a stale decision — the
    old entries simply stop matching.  Thread-safe; the clock is
    injectable for TTL tests.
    """

    def __init__(
        self,
        *,
        max_entries: int = 256,
        ttl_seconds: float = 300.0,
        clock=time.monotonic,
    ):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be positive, got {max_entries!r}"
            )
        self._max_entries = max_entries
        self._ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[SelectorDecision, float]]
        self._entries = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._expirations = 0
        self._evictions = 0

    def get(self, key: tuple) -> SelectorDecision | None:
        """The cached decision for ``key``, or ``None`` (miss/expired)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            decision, stamp = entry
            if now - stamp > self._ttl_seconds:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return decision

    def put(self, key: tuple, decision: SelectorDecision) -> None:
        """Store ``decision`` under ``key``, evicting the LRU overflow."""
        with self._lock:
            self._entries[key] = (decision, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Lookup accounting for ``/v1/stats`` and tests."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "ttl_seconds": self._ttl_seconds,
                "hits": self._hits,
                "misses": self._misses,
                "expirations": self._expirations,
                "evictions": self._evictions,
            }


def _config_fingerprint(config: IsobarConfig) -> tuple:
    """The config facets that change what a selector would decide."""
    return (
        config.tau,
        config.preference.value,
        config.codec,
        config.linearization.value if config.linearization else None,
        tuple(config.candidate_codecs),
        config.sample_elements,
        config.min_acceptable_ratio_fraction,
    )


#: Process-wide defaults: one model and one cache shared by every
#: compressor, streaming writer and service request that selects the
#: "learned" / "cached" strategies by name.
_SHARED_MODEL = OnlineRatioModel()
_SHARED_CACHE = SelectorDecisionCache()


def shared_model() -> OnlineRatioModel:
    """The process-wide online model behind the named strategies."""
    return _SHARED_MODEL


def shared_decision_cache() -> SelectorDecisionCache:
    """The process-wide decision cache behind ``selector="cached"``."""
    return _SHARED_CACHE


class LearnedSelector:
    """Predict-first strategy: regress, decide if confident, else probe.

    Drop-in for :class:`~repro.core.selector.EupaSelector` — the same
    ``select(values, analysis=None)`` surface, the same candidate
    space, the same :class:`SelectorDecision` — but the timing probe
    only runs when the model is uncertain, and its measurements become
    training examples.
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        model: OnlineRatioModel | None = None,
    ):
        self._config = config or IsobarConfig()
        self._metrics = NULL_REGISTRY if metrics is None else metrics
        self._instruments = PipelineInstruments(self._metrics)
        self._model = model if model is not None else shared_model()
        self._probe = EupaSelector(self._config, metrics=metrics)
        #: Why the most recent predict path degraded to a probe
        #: (``None`` while the predict path is healthy).
        self.last_degrade: str | None = None

    @property
    def config(self) -> IsobarConfig:
        """The configuration driving candidate generation and choice."""
        return self._config

    @property
    def model(self) -> OnlineRatioModel:
        """The online model this strategy reads and trains."""
        return self._model

    def draw_sample(self, values: np.ndarray) -> np.ndarray:
        """The seeded sample draw (identical to the EUPA selector's)."""
        return self._probe.draw_sample(values)

    def select(
        self,
        values: np.ndarray,
        analysis: AnalysisResult | None = None,
    ) -> SelectorDecision:
        """Decide from predictions when confident, else probe and learn."""
        started = time.perf_counter()
        sample = self._probe.draw_sample(values)
        if analysis is None:
            analysis = analyze(sample, tau=self._config.tau)
        features = None
        predictions: tuple[CandidatePrediction, ...] = ()
        try:
            features = extract_features(sample)
            predictions = self._predict_candidates(features)
        except Exception as exc:  # noqa: BLE001 - predict-path containment
            # A broken feature extraction or model must never make the
            # selector worse than EUPA: degrade to the probe.  Probe
            # failures themselves surface as SelectorError below.
            features = None
            predictions = ()
            self.last_degrade = f"{type(exc).__name__}: {exc}"
        if predictions and all(p.confident for p in predictions):
            decision = self._decide_from_predictions(
                predictions, analysis, sample
            )
            if self._metrics.enabled:
                self._instruments.record_selector(decision)
                self._instruments.selector_predictions.inc(
                    1, outcome="predicted"
                )
                self._instruments.selector_decision_seconds.observe(
                    time.perf_counter() - started, strategy="learned"
                )
            return decision
        return self._probe_and_learn(
            values, analysis, features, predictions, started
        )

    # -- prediction path --------------------------------------------------

    def _predict_candidates(
        self, features: ContentFeatures
    ) -> tuple[CandidatePrediction, ...]:
        x = np.asarray(features.vector(), dtype=np.float64)
        predictions = []
        for codec_name, lin in self._probe._candidate_space():
            ratio, throughput, confident = self._model.predict(
                x, codec_name, lin
            )
            predictions.append(
                CandidatePrediction(
                    codec_name=codec_name,
                    linearization=lin,
                    predicted_ratio=ratio,
                    predicted_throughput=throughput,
                    confident=confident,
                )
            )
        return tuple(predictions)

    def _pick_prediction(
        self, predictions: tuple[CandidatePrediction, ...]
    ) -> CandidatePrediction:
        # Mirror of EupaSelector._pick over predicted numbers, so the
        # preference semantics are identical on both paths.
        best_ratio = max(p.predicted_ratio for p in predictions)
        if self._config.preference is Preference.RATIO:
            return max(predictions, key=lambda p: p.predicted_ratio)
        floor = best_ratio * self._config.min_acceptable_ratio_fraction
        acceptable = [
            p for p in predictions if p.predicted_ratio >= floor
        ] or list(predictions)
        return max(acceptable, key=lambda p: p.predicted_throughput)

    def _decide_from_predictions(
        self,
        predictions: tuple[CandidatePrediction, ...],
        analysis: AnalysisResult,
        sample: np.ndarray,
    ) -> SelectorDecision:
        best = self._pick_prediction(predictions)
        return SelectorDecision(
            codec_name=best.codec_name,
            linearization=best.linearization,
            preference=self._config.preference,
            improvable=analysis.improvable,
            candidates=(),
            sample_elements=int(sample.size),
            origin="predicted",
            predictions=predictions,
        )

    # -- probe fallback ---------------------------------------------------

    def _probe_and_learn(
        self,
        values: np.ndarray,
        analysis: AnalysisResult,
        features: ContentFeatures | None,
        predictions: tuple[CandidatePrediction, ...],
        started: float,
    ) -> SelectorDecision:
        decision = self._probe.select(values, analysis=analysis)
        if features is not None:
            x = np.asarray(features.vector(), dtype=np.float64)
            for cand in decision.candidates:
                self._model.observe(
                    x, cand.codec_name, cand.linearization,
                    cand.ratio, cand.throughput,
                )
        if self._metrics.enabled:
            self._instruments.selector_predictions.inc(1, outcome="probed")
            self._instruments.selector_decision_seconds.observe(
                time.perf_counter() - started, strategy="learned"
            )
            self._record_regret(predictions, decision)
        return _dc_replace(decision, predictions=predictions)

    def _record_regret(
        self,
        predictions: tuple[CandidatePrediction, ...],
        decision: SelectorDecision,
    ) -> None:
        """Measured regret of the would-be prediction, when comparable."""
        usable = [
            p for p in predictions if np.isfinite(p.predicted_ratio)
        ]
        if len(usable) != len(predictions) or not predictions:
            return
        pick = self._pick_prediction(predictions)
        measured = {
            (c.codec_name, c.linearization): c.ratio
            for c in decision.candidates
        }
        picked = measured.get((pick.codec_name, pick.linearization))
        if picked is None or not measured:
            return
        best = max(measured.values())
        if best <= 0:
            return
        self._instruments.selector_regret.observe(
            max(0.0, (best - picked) / best)
        )


class CachedSelector:
    """The learned strategy behind a shared LRU + TTL decision cache.

    A lookup costs one sample draw plus one feature extraction — still
    an order of magnitude below a timing probe — and a hit replays the
    stored decision with ``origin="cached"``.  Misses delegate to the
    wrapped :class:`LearnedSelector` (reusing the already-extracted
    features) and store its decision.
    """

    def __init__(
        self,
        config: IsobarConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
        cache: SelectorDecisionCache | None = None,
        inner: LearnedSelector | None = None,
    ):
        self._config = config or IsobarConfig()
        self._metrics = NULL_REGISTRY if metrics is None else metrics
        self._instruments = PipelineInstruments(self._metrics)
        self._cache = cache if cache is not None else shared_decision_cache()
        self._inner = (
            inner
            if inner is not None
            else LearnedSelector(self._config, metrics=metrics)
        )
        #: Why the most recent lookup skipped the cache (``None`` while
        #: inputs remain keyable).
        self.last_degrade: str | None = None

    @property
    def config(self) -> IsobarConfig:
        """The configuration driving candidate generation and choice."""
        return self._config

    @property
    def cache(self) -> SelectorDecisionCache:
        """The decision cache this strategy consults."""
        return self._cache

    def select(
        self,
        values: np.ndarray,
        analysis: AnalysisResult | None = None,
    ) -> SelectorDecision:
        """Replay a cached decision, or decide via the learned path."""
        started = time.perf_counter()
        key = None
        try:
            sample = self._inner.draw_sample(values)
            features = extract_features(sample)
            key = (
                _config_fingerprint(self._config),
                features.cache_key(),
            )
        except Exception as exc:  # noqa: BLE001 - cache-path containment
            # An unkeyable input skips the cache, never the decision.
            key = None
            self.last_degrade = f"{type(exc).__name__}: {exc}"
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                decision = _dc_replace(cached, origin="cached")
                if self._metrics.enabled:
                    self._instruments.selector_cache_hits.inc()
                    self._instruments.selector_predictions.inc(
                        1, outcome="cached"
                    )
                    self._instruments.selector_decision_seconds.observe(
                        time.perf_counter() - started, strategy="cached"
                    )
                return decision
            if self._metrics.enabled:
                self._instruments.selector_cache_misses.inc()
        decision = self._inner.select(values, analysis=analysis)
        if key is not None:
            self._cache.put(key, decision)
        return decision


register_selector_strategy(
    "learned",
    lambda config, metrics: LearnedSelector(config, metrics=metrics),
    replace=True,
)
register_selector_strategy(
    "cached",
    lambda config, metrics: CachedSelector(config, metrics=metrics),
    replace=True,
)
