"""Streaming file-to-file compression (constant-memory in-situ path).

Extreme-scale arrays do not fit in memory (Section II-D); the streaming
writer consumes an element iterator — e.g.
:func:`repro.datasets.loaders.stream_raw_chunks` — and emits a standard
ISOBAR container incrementally, holding only one chunk at a time.  The
reader streams chunks back out the same way.

Because the container's global header records the chunk count, which is
unknown until the stream ends, the writer reserves the header and
patches it on ``close()`` — the emitted file is byte-compatible with
the in-memory pipeline's output for the same configuration and
decision.
"""

from __future__ import annotations

import os
import time
import zlib as _zlib
from typing import BinaryIO, Iterable, Iterator

import numpy as np

from repro.analysis.bytefreq import element_width, matrix_to_elements
from repro.codecs.base import get_codec
from repro.core.analyzer import analyze
from repro.core.exceptions import ChecksumError, ContainerFormatError, InvalidInputError
from repro.core.metadata import ChunkMetadata, ChunkMode, ContainerHeader
from repro.core.partitioner import partition, reassemble_matrix
from repro.core.pipeline import _little_endian_bytes
from repro.core.preferences import IsobarConfig, Linearization
from repro.core.selector import EupaSelector

__all__ = ["StreamingWriter", "stream_compress", "stream_decompress"]


class StreamingWriter:
    """Incrementally write an ISOBAR container to a binary file object.

    Usage::

        with open(path, "wb") as sink:
            writer = StreamingWriter(sink, dtype=np.float64)
            for chunk in chunks:
                writer.write_chunk(chunk)
            writer.close()

    The first chunk drives the EUPA-selector decision (codec and
    linearization for the whole stream).  ``close()`` seeks back and
    patches the header with the final element/chunk counts, so the sink
    must be seekable.
    """

    def __init__(
        self,
        sink: BinaryIO,
        dtype: np.dtype,
        config: IsobarConfig | None = None,
    ):
        self._sink = sink
        self._dtype = np.dtype(dtype)
        element_width(self._dtype)  # validate
        self._config = config or IsobarConfig()
        self._selector = EupaSelector(self._config)
        self._codec = None
        self._linearization: Linearization | None = None
        self._n_elements = 0
        self._n_chunks = 0
        self._header_offset = sink.tell()
        self._closed = False
        self._header_size: int | None = None
        # The header is deferred until the first chunk: the selector's
        # codec choice determines the header length, so writing a
        # placeholder earlier would risk a size mismatch on close.

    def _build_header(self) -> ContainerHeader:
        return ContainerHeader(
            dtype=self._dtype,
            n_elements=self._n_elements,
            shape=(self._n_elements,),
            codec_name=(
                self._codec.name
                if self._codec is not None
                else (self._config.codec or self._config.candidate_codecs[0])
            ),
            linearization=self._linearization or Linearization.ROW,
            preference=self._config.preference,
            tau=self._config.tau,
            chunk_elements=self._config.chunk_elements,
            n_chunks=self._n_chunks,
        )

    def _ensure_header(self) -> None:
        """Write the placeholder header once the codec is known."""
        if self._header_size is not None:
            return
        encoded = self._build_header().encode()
        self._header_size = len(encoded)
        self._sink.write(encoded)

    def write_chunk(self, chunk: np.ndarray) -> int:
        """Compress and append one chunk; returns bytes written."""
        if self._closed:
            raise InvalidInputError("writer already closed")
        arr = np.asarray(chunk).reshape(-1)
        if arr.dtype != self._dtype:
            raise InvalidInputError(
                f"chunk dtype {arr.dtype} does not match stream dtype "
                f"{self._dtype}"
            )
        if arr.size == 0:
            return 0
        analysis = analyze(arr, tau=self._config.tau)
        if self._codec is None:
            decision = self._selector.select(arr, analysis=analysis)
            self._codec = get_codec(decision.codec_name)
            self._linearization = decision.linearization
        self._ensure_header()

        raw = _little_endian_bytes(arr)
        crc = _zlib.crc32(raw)
        if analysis.improvable:
            part = partition(arr, analysis.mask, self._linearization)
            compressed = self._codec.compress(part.compressible)
            incompressible = part.incompressible
            mode = ChunkMode.PARTITIONED
        else:
            compressed = self._codec.compress(raw)
            incompressible = b""
            mode = ChunkMode.PASSTHROUGH
        meta = ChunkMetadata(
            n_elements=arr.size,
            mode=mode,
            mask=analysis.mask,
            compressed_size=len(compressed),
            incompressible_size=len(incompressible),
            raw_crc32=crc,
        )
        blob = meta.encode() + compressed + incompressible
        self._sink.write(blob)
        self._n_elements += int(arr.size)
        self._n_chunks += 1
        return len(blob)

    def close(self) -> None:
        """Patch the header with final counts and flush."""
        if self._closed:
            return
        self._ensure_header()  # empty stream: header with zero chunks
        end = self._sink.tell()
        self._sink.seek(self._header_offset)
        encoded = self._build_header().encode()
        if len(encoded) != self._header_size:
            raise ContainerFormatError(
                f"final header is {len(encoded)} bytes, placeholder was "
                f"{self._header_size}"
            )
        self._sink.write(encoded)
        self._sink.seek(end)
        self._sink.flush()
        self._closed = True

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def stream_compress(
    chunks: Iterable[np.ndarray],
    sink_path: str | os.PathLike,
    dtype: np.dtype,
    config: IsobarConfig | None = None,
) -> int:
    """Compress an iterable of chunks into a container file.

    Returns the total bytes written.  Memory use is bounded by one
    chunk regardless of the stream length.
    """
    with open(sink_path, "wb") as sink:
        writer = StreamingWriter(sink, dtype=dtype, config=config)
        for chunk in chunks:
            writer.write_chunk(chunk)
        writer.close()
        return sink.tell()


def stream_decompress(path: str | os.PathLike) -> Iterator[np.ndarray]:
    """Yield the original chunks of a container file, one at a time.

    Verifies each chunk's CRC before yielding; memory use is bounded by
    one chunk.
    """
    with open(path, "rb") as source:
        prefix = source.read(1 << 16)
        header, offset = ContainerHeader.decode(prefix)
        source.seek(offset)
        codec = get_codec(header.codec_name)
        width = header.element_width
        for _ in range(header.n_chunks):
            # Chunk metadata has bounded size; read generously then
            # seek to the payload start.
            meta_start = source.tell()
            meta_buf = source.read(64 + (width + 7) // 8)
            meta, consumed = ChunkMetadata.decode(meta_buf, 0, width)
            source.seek(meta_start + consumed)
            compressed = source.read(meta.compressed_size)
            incompressible = source.read(meta.incompressible_size)
            if (
                len(compressed) != meta.compressed_size
                or len(incompressible) != meta.incompressible_size
            ):
                raise ContainerFormatError("container truncated mid-chunk")
            if meta.mode is ChunkMode.PARTITIONED:
                comp_stream = codec.decompress(compressed)
                matrix = reassemble_matrix(
                    comp_stream, incompressible, meta.mask,
                    header.linearization, meta.n_elements,
                )
                chunk = matrix_to_elements(matrix, header.dtype)
                raw = matrix.tobytes()
            else:
                raw = codec.decompress(compressed)
                chunk = np.frombuffer(
                    raw, dtype=header.dtype.newbyteorder("<")
                ).astype(header.dtype, copy=False)
            if _zlib.crc32(raw) != meta.raw_crc32:
                raise ChecksumError("chunk CRC mismatch in stream")
            yield chunk
