"""Streaming file-to-file compression (constant-memory in-situ path).

Extreme-scale arrays do not fit in memory (Section II-D); the streaming
writer consumes an element iterator — e.g.
:func:`repro.datasets.loaders.stream_raw_chunks` — and emits a standard
ISOBAR container incrementally, holding only one chunk at a time.  The
reader streams chunks back out the same way.

Because the container's global header records the chunk count, which is
unknown until the stream ends, the writer reserves the header and
patches it on ``close()`` — the emitted file is byte-compatible with
the in-memory pipeline's output for the same configuration and
decision.

Crash safety: :meth:`StreamingWriter.open` (and
:func:`stream_compress`, which uses it) writes to a temporary file in
the destination directory and atomically renames it into place on
``close()``, so the destination path only ever holds complete
containers.  A writer that dies before ``close()`` leaves a temp file
whose header still carries the zero-count placeholder; such a stream is
recoverable chunk-by-chunk via
``stream_decompress(path, tolerate_unclosed=True)``.
"""

from __future__ import annotations

import os
import time as _time
import zlib as _zlib
from typing import BinaryIO, Iterable, Iterator

import numpy as np

from repro.analysis.bytefreq import byte_view, element_width
from repro.codecs.base import get_codec
from repro.core.analyzer import analyze_matrix
from repro.core.exceptions import (
    ContainerFormatError,
    InvalidInputError,
    IsobarError,
    SelectorError,
    TruncatedContainerError,
)
from repro.core.metadata import (
    ChunkIndexRecord,
    ChunkMetadata,
    ContainerFooter,
    ContainerHeader,
    locate_footer,
)
from repro.core.pipeline_engine import bounded_relay
from repro.core.pipeline import (
    decode_chunk_payload,
    encode_chunk_payload,
)
from repro.core.preferences import (
    IsobarConfig,
    Linearization,
    salvage_policy_for,
)
from repro.core.workspace import ChunkWorkspace
from repro.core.resilience import (
    BreakerBoard,
    DegradationEvent,
    DegradationReport,
)
from repro.core.selector import SelectorDecision, resolve_selector
from repro.observability.instruments import PipelineInstruments
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.observability.report import PipelineReport
from repro.observability.trace import NULL_TRACER, Tracer

__all__ = ["StreamingWriter", "stream_compress", "stream_decompress"]


class StreamingWriter:
    """Incrementally write an ISOBAR container to a binary file object.

    Usage::

        with open(path, "wb") as sink:
            writer = StreamingWriter(sink, dtype=np.float64)
            for chunk in chunks:
                writer.write_chunk(chunk)
            writer.close()

    The first chunk drives the EUPA-selector decision (codec and
    linearization for the whole stream).  ``close()`` seeks back and
    patches the header with the final element/chunk counts, so the sink
    must be seekable.

    With ``collect_metrics=True`` (or a shared ``metrics`` registry)
    every ``write_chunk`` records the analyze/partition/solve stages
    and chunk outcomes, and ``close()`` publishes a
    :class:`~repro.observability.PipelineReport` as
    :attr:`last_report`; the report's wall time covers only the time
    spent inside the writer, not the caller's chunk production.
    """

    def __init__(
        self,
        sink: BinaryIO,
        dtype: np.dtype,
        config: IsobarConfig | None = None,
        *,
        collect_metrics: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        self._sink = sink
        self._dtype = np.dtype(dtype)
        element_width(self._dtype)  # validate
        self._config = config or IsobarConfig()
        if metrics is not None:
            self._metrics = metrics
        elif collect_metrics:
            self._metrics = MetricsRegistry()
        else:
            self._metrics = NULL_REGISTRY
        self._instruments = PipelineInstruments(self._metrics)
        self._stream_tracer = (
            Tracer(self._metrics) if self._metrics.enabled else NULL_TRACER
        )
        self._wall_seconds = 0.0
        self._improvable_chunks = 0
        self._raw_bytes_in = 0
        self._solver_bytes = 0
        self._noise_bytes = 0
        self._last_report: PipelineReport | None = None
        # The first chunk drives one decision via the configured
        # strategy (config.selector; "eupa" default) — see
        # repro.core.selector.resolve_selector.
        self._selector = resolve_selector(
            self._config,
            metrics=self._metrics if self._metrics.enabled else None,
        )
        self._breakers = BreakerBoard(
            self._config.resilience,
            on_state_change=lambda name, state: (
                self._instruments.breaker_state.set(
                    state.gauge_value, codec=name
                )
            ),
        )
        self._degradation_events: list[DegradationEvent] = []
        self._retries = 0
        # One writer, one thread: the partition scratch is reused for
        # every chunk of the stream.
        self._workspace = ChunkWorkspace()
        self._codec = None
        self._linearization: Linearization | None = None
        self._n_elements = 0
        self._n_chunks = 0
        self._index_entries: list[ChunkIndexRecord] = []
        self._header_offset = sink.tell()
        self._closed = False
        self._header_size: int | None = None
        self._bytes_written = 0
        # Set by .open(): the writer owns its file handle and (when
        # atomic) publishes the temp file to _final_path on close().
        self._owned = False
        self._temp_path: str | None = None
        self._final_path: str | None = None
        # The header is deferred until the first chunk: the selector's
        # codec choice determines the header length, so writing a
        # placeholder earlier would risk a size mismatch on close.

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        dtype: np.dtype,
        config: IsobarConfig | None = None,
        *,
        atomic: bool = True,
        collect_metrics: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> "StreamingWriter":
        """Open a writer that manages its own file at ``path``.

        With ``atomic=True`` (the default) chunks are written to a
        temporary file next to the destination and ``close()`` fsyncs
        and atomically renames it into place — ``path`` never holds a
        half-written container, even if the process crashes mid-stream.
        A failed or aborted write leaves ``path`` untouched (any prior
        version survives).  ``abort()`` discards the temp file.
        """
        final_path = os.fspath(path)
        if atomic:
            temp_path = f"{final_path}.tmp.{os.getpid()}"
            sink = open(temp_path, "wb")
        else:
            temp_path = None
            sink = open(final_path, "wb")
        try:
            writer = cls(
                sink, dtype, config,
                collect_metrics=collect_metrics, metrics=metrics,
            )
        except BaseException:
            sink.close()
            if temp_path is not None and os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        writer._owned = True
        writer._temp_path = temp_path
        writer._final_path = final_path
        return writer

    @property
    def bytes_written(self) -> int:
        """Container bytes emitted so far (header + chunk blobs, plus
        the index footer once ``close()`` has appended it)."""
        return self._bytes_written

    @property
    def metrics(self) -> MetricsRegistry | None:
        """The registry this writer records into (``None`` if disabled)."""
        return self._metrics if self._metrics.enabled else None

    @property
    def last_report(self) -> PipelineReport | None:
        """The stream's :class:`~repro.observability.PipelineReport`,
        published by ``close()`` when metrics are enabled."""
        return self._last_report

    @property
    def degradation(self) -> DegradationReport:
        """Fault-containment record of the chunks written so far."""
        return DegradationReport(
            events=tuple(self._degradation_events), retries=self._retries
        )

    def _build_header(self) -> ContainerHeader:
        return ContainerHeader(
            dtype=self._dtype,
            n_elements=self._n_elements,
            shape=(self._n_elements,),
            codec_name=(
                self._codec.name
                if self._codec is not None
                else (self._config.codec or self._config.candidate_codecs[0])
            ),
            linearization=self._linearization or Linearization.ROW,
            preference=self._config.preference,
            tau=self._config.tau,
            chunk_elements=self._config.chunk_elements,
            n_chunks=self._n_chunks,
        )

    def _ensure_header(self) -> None:
        """Write the placeholder header once the codec is known."""
        if self._header_size is not None:
            return
        encoded = self._build_header().encode()
        self._header_size = len(encoded)
        self._sink.write(encoded)
        self._bytes_written += len(encoded)

    def write_chunk(self, chunk: np.ndarray) -> int:
        """Compress and append one chunk; returns bytes written."""
        if self._closed:
            raise InvalidInputError("writer already closed")
        arr = np.asarray(chunk).reshape(-1)
        if arr.dtype != self._dtype:
            raise InvalidInputError(
                f"chunk dtype {arr.dtype} does not match stream dtype "
                f"{self._dtype}"
            )
        if arr.size == 0:
            return 0
        enabled = self._metrics.enabled
        tracer = self._stream_tracer
        wall_start = _time.perf_counter() if enabled else 0.0

        # Zero-copy on the hot path: little-endian contiguous chunks
        # are analyzed and hashed through a view of their own bytes.
        view = byte_view(arr)
        stage_start = wall_start
        analysis = analyze_matrix(view, tau=self._config.tau)
        if enabled:
            tracer.add(
                "analyze", _time.perf_counter() - stage_start,
                bytes_in=arr.nbytes,
            )
        if self._codec is None:
            stage_start = _time.perf_counter() if enabled else 0.0
            try:
                decision = self._selector.select(arr, analysis=analysis)
            except SelectorError:
                # Every candidate evaluation failed; under a resilience
                # policy the stream must still start — fall back to the
                # configured (or first-candidate) codec and let the
                # chunk-level containment degrade its chunks.
                if self._config.resilience is None:
                    raise
                decision = SelectorDecision(
                    codec_name=(
                        self._config.codec
                        or self._config.candidate_codecs[0]
                    ),
                    linearization=(
                        self._config.linearization or Linearization.ROW
                    ),
                    preference=self._config.preference,
                    improvable=analysis.improvable,
                    candidates=(),
                    sample_elements=0,
                )
            self._codec = get_codec(decision.codec_name)
            self._linearization = decision.linearization
            if enabled:
                tracer.add("select", _time.perf_counter() - stage_start)
        self._ensure_header()

        crc = _zlib.crc32(view)
        encoded = encode_chunk_payload(
            arr, view, analysis, self._linearization, self._codec,
            policy=self._config.resilience,
            breakers=self._breakers,
            chunk_index=self._n_chunks,
            tracer=tracer,
            workspace=self._workspace,
        )
        solver_in = encoded.solver_bytes
        incompressible = encoded.incompressible
        if encoded.degraded:
            # Degraded chunks flush exactly like healthy ones; the
            # stream just remembers what happened.
            self._degradation_events.append(
                DegradationEvent(
                    chunk_index=self._n_chunks,
                    cause=encoded.cause or "error",
                    attempts=encoded.attempts,
                    encoding=encoded.encoding,
                    error=encoded.error,
                )
            )
            if enabled:
                self._instruments.chunks_degraded.inc(
                    1, cause=encoded.cause or "error"
                )
        if encoded.retries:
            self._retries += encoded.retries
            if enabled:
                self._instruments.chunk_retries.inc(encoded.retries)
        meta = ChunkMetadata(
            n_elements=arr.size,
            mode=encoded.mode,
            mask=encoded.mask,
            compressed_size=len(encoded.compressed),
            incompressible_size=len(incompressible),
            raw_crc32=crc,
        )
        # join() materialises the workspace-aliased incompressible view
        # before the workspace is reused for the next chunk.
        meta_bytes = meta.encode()
        blob = b"".join((meta_bytes, encoded.compressed, incompressible))
        stage_start = _time.perf_counter() if enabled else 0.0
        # Offsets are container-relative (the sink may not start at 0).
        self._index_entries.append(
            ChunkIndexRecord(
                payload_offset=self._bytes_written + len(meta_bytes),
                compressed_size=len(encoded.compressed),
                incompressible_size=len(incompressible),
                n_elements=int(arr.size),
            )
        )
        self._sink.write(blob)
        self._bytes_written += len(blob)
        self._n_elements += int(arr.size)
        self._n_chunks += 1
        if enabled:
            tracer.add(
                "write", _time.perf_counter() - stage_start,
                bytes_out=len(blob),
            )
            self._improvable_chunks += 1 if analysis.improvable else 0
            self._raw_bytes_in += view.nbytes
            self._solver_bytes += solver_in
            self._noise_bytes += len(incompressible)
            self._instruments.record_chunk_outcome(
                improvable=analysis.improvable,
                solver_bytes=solver_in,
                raw_bytes=len(incompressible),
                stored_bytes=len(blob),
                seconds=_time.perf_counter() - wall_start,
            )
            self._wall_seconds += _time.perf_counter() - wall_start
        return len(blob)

    def close(self) -> None:
        """Patch the header with final counts, append the chunk-index
        footer, flush and (when opened via :meth:`open`) atomically
        publish the file."""
        if self._closed:
            return
        self._ensure_header()  # empty stream: header with zero chunks
        end = self._sink.tell()
        self._sink.seek(self._header_offset)
        encoded = self._build_header().encode()
        if len(encoded) != self._header_size:
            raise ContainerFormatError(
                f"final header is {len(encoded)} bytes, placeholder was "
                f"{self._header_size}"
            )
        self._sink.write(encoded)
        self._sink.seek(end)
        # The footer is the last thing written: a crash before this
        # point leaves a footer-less (but salvageable) chunk chain,
        # never a misleading index.
        footer = ContainerFooter(entries=tuple(self._index_entries)).encode()
        self._sink.write(footer)
        self._bytes_written += len(footer)
        self._sink.flush()
        if self._owned:
            os.fsync(self._sink.fileno())
            self._sink.close()
            if self._temp_path is not None:
                os.replace(self._temp_path, self._final_path)
        self._closed = True
        if self._metrics.enabled:
            self._instruments.runs.inc(1, operation="compress")
            self._instruments.input_bytes.inc(
                self._raw_bytes_in, operation="compress"
            )
            self._instruments.output_bytes.inc(
                self._bytes_written, operation="compress"
            )
            self._last_report = PipelineReport(
                operation="compress",
                codec_name=(
                    self._codec.name if self._codec is not None else None
                ),
                linearization=(
                    self._linearization.value
                    if self._linearization is not None else None
                ),
                n_chunks=self._n_chunks,
                improvable_chunks=self._improvable_chunks,
                undetermined_chunks=self._n_chunks - self._improvable_chunks,
                solver_bytes=self._solver_bytes,
                raw_bytes=self._noise_bytes,
                input_bytes=self._raw_bytes_in,
                output_bytes=self._bytes_written,
                stage_seconds=self._stream_tracer.stage_seconds(),
                wall_seconds=self._wall_seconds,
            )

    def abort(self) -> None:
        """Discard the stream: close the handle, delete any temp file.

        Only meaningful for writers created with :meth:`open`; for a
        caller-provided sink the handle is left untouched (the caller
        owns it).  Idempotent, and a no-op after ``close()``.
        """
        if self._closed:
            return
        self._closed = True
        if not self._owned:
            return
        try:
            self._sink.close()
        finally:
            if self._temp_path is not None and os.path.exists(self._temp_path):
                os.unlink(self._temp_path)

    def __enter__(self) -> "StreamingWriter":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        # An exception mid-stream must not publish a half-written
        # container: owned writers roll back, caller-owned sinks keep
        # the legacy close-on-exit behaviour.
        if exc_type is not None and self._owned:
            self.abort()
        else:
            self.close()


def _bounded_readahead(
    chunks: Iterable[np.ndarray], depth: int
) -> Iterator[np.ndarray]:
    """Produce ``chunks`` on a helper thread through a bounded queue.

    The queue depth is the backpressure bound: at most ``depth`` chunks
    are in flight between the producer and the writer, so a slow sink
    (e.g. one busy degrading faulty chunks) stalls production instead
    of buffering the stream in memory.  A producer exception is
    re-raised at the consuming end; abandoning the generator stops the
    producer promptly.

    (Thin wrapper over the pipelined engine's
    :func:`~repro.core.pipeline_engine.bounded_relay`, kept under the
    streaming name for callers and tests.)
    """
    return bounded_relay(chunks, depth, name="isobar-stream-readahead")


def stream_compress(
    chunks: Iterable[np.ndarray],
    sink_path: str | os.PathLike,
    dtype: np.dtype,
    config: IsobarConfig | None = None,
    *,
    atomic: bool = True,
    metrics: MetricsRegistry | None = None,
    readahead_chunks: int = 0,
) -> int:
    """Compress an iterable of chunks into a container file.

    Returns the total bytes written.  Memory use is bounded by one
    chunk regardless of the stream length.  With ``atomic=True`` (the
    default) the destination path is populated by a single atomic
    rename on success, so a crash or error mid-stream never leaves a
    half-written container at ``sink_path``.  ``metrics`` optionally
    aggregates the stream's stage timings and chunk outcomes into an
    existing registry.

    ``readahead_chunks > 0`` produces chunks on a helper thread through
    a queue of that depth, overlapping chunk production with
    compression while bounding the in-flight buffer — the queue is the
    backpressure valve when the writer slows down (e.g. while the
    resilience layer retries and degrades faulty chunks).  0 (the
    default) consumes the iterable inline, exactly as before.
    """
    if readahead_chunks < 0:
        raise InvalidInputError(
            f"readahead_chunks must be >= 0, got {readahead_chunks}"
        )
    writer = StreamingWriter.open(
        sink_path, dtype, config, atomic=atomic, metrics=metrics
    )
    source = (
        _bounded_readahead(chunks, readahead_chunks)
        if readahead_chunks > 0
        else chunks
    )
    try:
        for chunk in source:
            writer.write_chunk(chunk)
        writer.close()
    except BaseException:
        writer.abort()
        raise
    return writer.bytes_written


def _stream_salvage(
    path: str | os.PathLike,
    errors: str,
    *,
    to_eof: bool,
) -> Iterator[np.ndarray]:
    """Lenient / crash-recovery read path: scan chunks via the salvage
    scanner.  Loads the file into memory (recovery is not a hot path)."""
    from repro.core.salvage import scan_chunks

    with open(path, "rb") as source:
        data = source.read()
    header, offset = ContainerHeader.decode(data)
    codec = get_codec(header.codec_name)
    ordinal = 0
    for event in scan_chunks(data, header, offset, codec, to_eof=to_eof):
        if event.kind == "gap":
            # A gap that runs to EOF on an unclosed stream is the
            # crashed writer's unfinished final chunk — tolerating it
            # is the whole point; anything else honours the policy.
            if to_eof and event.end == len(data):
                return
            if errors == "raise":
                raise ContainerFormatError(
                    f"chunk {ordinal} at byte offset {event.start}: "
                    f"unreadable chunk record: {event.cause}"
                )
            ordinal += 1
            continue
        meta = event.meta
        compressed = data[event.payload_offset:event.payload_offset
                          + meta.compressed_size]
        incompressible = data[event.payload_offset
                              + meta.compressed_size:event.end]
        try:
            chunk = decode_chunk_payload(
                header, codec, meta, compressed, incompressible,
                chunk_index=ordinal, byte_offset=event.start,
            )
        except IsobarError:
            if errors == "raise":
                raise
            if errors == "zero_fill":
                yield np.zeros(int(meta.n_elements), dtype=header.dtype)
            ordinal += 1
            continue
        yield chunk
        ordinal += 1


def stream_decompress(
    path: str | os.PathLike,
    *,
    errors: str = "raise",
    tolerate_unclosed: bool = False,
    metrics: MetricsRegistry | None = None,
    readahead_chunks: int = 0,
) -> Iterator[np.ndarray]:
    """Yield the original chunks of a container file, one at a time.

    Verifies each chunk's CRC before yielding; memory use is bounded by
    one chunk on the strict path (``1 + readahead_chunks`` with
    readahead).

    Parameters
    ----------
    errors:
        ``"raise"`` (default) aborts on the first damaged chunk;
        ``"salvage-skip"`` drops damaged chunks; ``"salvage-zero"``
        substitutes zero-element chunks of the declared length (legacy
        spellings ``"skip"`` / ``"zero_fill"`` keep working).  The
        lenient modes read the whole file into memory to allow
        resynchronization.
    tolerate_unclosed:
        Recover a stream whose final header patch never happened (the
        writer crashed before ``close()``): when the header still
        carries the zero-chunk placeholder but payload bytes follow,
        chunks are discovered by forward scan instead of trusting the
        header count.  A partial final chunk (killed mid-write) is
        dropped; every fully written chunk is recovered.
    metrics:
        Optional registry; the strict path records per-chunk ``decode``
        stage timings and the decoded-chunk counter as the generator is
        consumed.
    readahead_chunks:
        ``> 0`` reads and decodes chunks on a helper thread through a
        bounded queue of that depth, overlapping file I/O + decode with
        whatever the consumer does per chunk.  0 (the default) decodes
        inline, exactly as before.  Applies to the strict path only;
        the salvage paths stay serial (recovery is not a hot path).
    """
    if readahead_chunks < 0:
        raise InvalidInputError(
            f"readahead_chunks must be >= 0, got {readahead_chunks}"
        )
    # Canonical policy vocabulary shared by every decoder; _stream_salvage
    # speaks the salvage decoder's internal names.
    salvage_policy = salvage_policy_for(errors)
    with open(path, "rb") as source:
        prefix = source.read(1 << 16)
        if not prefix and tolerate_unclosed:
            # Writer died before anything durable was written.
            return
        header, offset = ContainerHeader.decode(prefix)
        source.seek(0, os.SEEK_END)
        file_size = source.tell()
        tail = b""
        if header.n_chunks == 0 and file_size > offset:
            # Could be a crashed writer — or a closed *empty* stream,
            # which legitimately carries a zero-entry index footer
            # after its header.  Distinguish by looking for that footer.
            source.seek(max(offset, file_size - 4096))
            tail = source.read()

    unclosed = header.n_chunks == 0 and file_size > offset
    if unclosed:
        location = locate_footer(tail)
        if (
            location.ok
            and location.footer is not None
            and location.footer.n_chunks == 0
            and file_size - (len(tail) - location.start) == offset
        ):
            return  # closed empty stream: nothing to yield
    if unclosed and not tolerate_unclosed:
        raise ContainerFormatError(
            f"header declares 0 chunks but {file_size - offset} payload "
            "bytes follow: the stream was never closed (crashed "
            "writer?); pass tolerate_unclosed=True to recover it"
        )
    if unclosed or salvage_policy != "raise":
        yield from _stream_salvage(
            path, salvage_policy, to_eof=unclosed
        )
        return

    registry = NULL_REGISTRY if metrics is None else metrics
    instruments = PipelineInstruments(registry)
    tracer = Tracer(registry) if registry.enabled else NULL_TRACER

    def _decode_chunks() -> Iterator[np.ndarray]:
        with open(path, "rb") as source:
            source.seek(offset)
            codec = get_codec(header.codec_name)
            width = header.element_width
            for index in range(header.n_chunks):
                # Chunk metadata has bounded size; read generously then
                # seek to the payload start.
                meta_start = source.tell()
                meta_buf = source.read(64 + (width + 7) // 8)
                meta, consumed = ChunkMetadata.decode(meta_buf, 0, width)
                source.seek(meta_start + consumed)
                compressed = source.read(meta.compressed_size)
                incompressible = source.read(meta.incompressible_size)
                if (
                    len(compressed) != meta.compressed_size
                    or len(incompressible) != meta.incompressible_size
                ):
                    raise TruncatedContainerError(
                        f"chunk {index} at byte offset {meta_start}: "
                        "container truncated mid-chunk"
                    )
                decode_start = (
                    _time.perf_counter() if registry.enabled else 0.0
                )
                chunk = decode_chunk_payload(
                    header, codec, meta, compressed, incompressible,
                    chunk_index=index, byte_offset=meta_start,
                )
                if registry.enabled:
                    tracer.add(
                        "decode", _time.perf_counter() - decode_start,
                        bytes_in=len(compressed) + len(incompressible),
                        bytes_out=chunk.nbytes,
                    )
                    instruments.chunks_decoded.inc()
                yield chunk

    if readahead_chunks > 0:
        yield from bounded_relay(
            _decode_chunks(), readahead_chunks,
            name="isobar-stream-decode",
        )
    else:
        yield from _decode_chunks()
