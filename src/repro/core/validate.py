"""Deep container validation (the ``isobar verify`` tool).

Archival data outlives the software that wrote it; a validator that
checks a container end-to-end — structure, metadata consistency,
payload decodability and CRC integrity — belongs next to any archival
format.  :func:`validate_container` walks an ISOBAR container and
produces a structured report instead of an exception trail, so
operators can see *everything* wrong with a file in one pass.

Checks performed per container:

* header magic, version and field sanity;
* chunk record chain: magics, monotone offsets, exact coverage of the
  declared element count;
* per chunk: payload decodability with the declared solver, stream
  length consistency with the mask geometry, and the CRC32 of the
  reconstructed raw bytes;
* chunk-index footer cross-check: a validated footer is compared
  entry-by-entry against the walked chunk chain and classified as
  ``ok`` / ``absent`` / ``rebuildable`` / ``inconsistent``;
* trailing-garbage detection (bytes after the last chunk that are not
  a valid footer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import zlib as _zlib

from repro.codecs.base import get_codec
from repro.core.exceptions import IsobarError, UnknownCodecError
from repro.core.metadata import ChunkMode, ContainerHeader, locate_footer
from repro.core.partitioner import reassemble_matrix

__all__ = ["ChunkFinding", "ValidationReport", "validate_container"]


@dataclass(frozen=True)
class ChunkFinding:
    """One problem discovered in one chunk (or the header, index -1)."""

    chunk_index: int
    severity: str  # "error" | "warning"
    message: str


@dataclass
class ValidationReport:
    """Everything the validator learned about a container."""

    valid: bool = True
    header: ContainerHeader | None = None
    n_chunks_checked: int = 0
    n_elements_recovered: int = 0
    findings: list[ChunkFinding] = field(default_factory=list)
    #: Chunk-index footer classification: ``"ok"`` (validated and
    #: consistent with the chain), ``"absent"`` (pre-footer container),
    #: ``"rebuildable"`` (lost/truncated/CRC-failed — ``isobar fsck
    #: --repair`` can rebuild it from the chain) or ``"inconsistent"``
    #: (validates but disagrees with the header or chain).
    footer_status: str = "absent"
    footer_detail: str = ""

    def error(self, chunk_index: int, message: str) -> None:
        """Record a fatal finding."""
        self.findings.append(ChunkFinding(chunk_index, "error", message))
        self.valid = False

    def warn(self, chunk_index: int, message: str) -> None:
        """Record a non-fatal finding."""
        self.findings.append(ChunkFinding(chunk_index, "warning", message))

    @property
    def errors(self) -> list[ChunkFinding]:
        """Only the fatal findings."""
        return [f for f in self.findings if f.severity == "error"]

    def summary_lines(self) -> list[str]:
        """Human-readable report body."""
        lines = []
        if self.header is not None:
            lines.append(
                f"header: {self.header.dtype}, "
                f"{self.header.n_elements} elements, "
                f"{self.header.n_chunks} chunks, "
                f"codec {self.header.codec_name}"
            )
        lines.append(
            f"checked {self.n_chunks_checked} chunks, recovered "
            f"{self.n_elements_recovered} elements"
        )
        footer_line = f"footer: {self.footer_status}"
        if self.footer_detail:
            footer_line += f" ({self.footer_detail})"
        lines.append(footer_line)
        for finding in self.findings:
            where = ("header" if finding.chunk_index < 0
                     else f"chunk {finding.chunk_index}")
            lines.append(f"[{finding.severity}] {where}: {finding.message}")
        lines.append("RESULT: " + ("VALID" if self.valid else "INVALID"))
        return lines


def validate_container(data: bytes) -> ValidationReport:
    """Walk an ISOBAR container and report every problem found.

    Never raises for content problems — all failures land in the
    report.  (Programming errors, e.g. passing a non-bytes object,
    still raise.)

    The chunk chain is walked with the salvage scanner
    (:func:`repro.core.salvage.scan_chunks`), so the validator
    resynchronizes over structurally damaged regions and reports *all*
    findings instead of stopping at the first unreadable record.
    """
    # Imported here: salvage builds on pipeline which builds on the
    # metadata layer this module also uses — keep import order simple.
    from repro.core.salvage import scan_chunks

    report = ValidationReport()

    try:
        header, offset = ContainerHeader.decode(data)
    except IsobarError as exc:
        report.error(-1, f"unreadable header: {exc}")
        return report
    report.header = header

    try:
        codec = get_codec(header.codec_name)
    except UnknownCodecError as exc:
        report.error(-1, str(exc))
        return report

    width = header.element_width
    element_cursor = 0
    index = 0
    end = offset
    chain: list[tuple[int, int, int, int]] = []
    for event in scan_chunks(data, header, offset, codec):
        end = max(end, event.end)
        if event.kind == "chunk":
            chain.append(
                (
                    event.payload_offset,
                    event.meta.compressed_size,
                    event.meta.incompressible_size,
                    event.meta.n_elements,
                )
            )
        if event.kind == "gap":
            if event.end == len(data):
                report.error(
                    index,
                    f"unreadable chunk record at byte {event.start}, no "
                    f"later chunk found: {event.cause}",
                )
            else:
                report.error(
                    index,
                    f"unreadable chunk record at byte {event.start}; "
                    f"resynchronized at byte {event.end} "
                    f"({event.end - event.start} bytes lost): {event.cause}",
                )
            index += 1
            continue
        meta = event.meta
        payload_offset = event.payload_offset
        compressed = data[payload_offset:payload_offset + meta.compressed_size]
        incompressible = data[payload_offset + meta.compressed_size:event.end]
        report.n_chunks_checked += 1

        n_comp_cols = int(np.count_nonzero(meta.mask))
        n_incomp_cols = width - n_comp_cols
        if meta.mode is ChunkMode.PARTITIONED:
            expected_incomp = meta.n_elements * n_incomp_cols
            if meta.incompressible_size != expected_incomp:
                report.error(
                    index,
                    f"incompressible stream is {meta.incompressible_size} "
                    f"bytes, mask geometry implies {expected_incomp}",
                )
                index += 1
                continue
            if n_comp_cols == 0 and meta.compressed_size == 0:
                report.warn(
                    index,
                    "chunk stored raw with an all-incompressible mask "
                    "(resilience degradation or undetermined data)",
                )
            elif n_comp_cols == 0 or n_incomp_cols == 0:
                report.warn(
                    index,
                    "partitioned chunk with a degenerate mask "
                    "(all or none compressible)",
                )
        elif meta.incompressible_size != 0:
            # PASSTHROUGH and FALLBACK_ZLIB both store a single solver
            # stream and no noise bytes.
            report.error(
                index, f"{meta.mode.name.lower()} chunk carries raw "
                "noise bytes"
            )
            index += 1
            continue

        try:
            if meta.mode is ChunkMode.PARTITIONED:
                comp_stream = (
                    codec.decompress(compressed) if compressed else b""
                )
                matrix = reassemble_matrix(
                    comp_stream, incompressible, meta.mask,
                    header.linearization, meta.n_elements,
                )
                raw = matrix.tobytes()
            elif meta.mode is ChunkMode.FALLBACK_ZLIB:
                try:
                    raw = _zlib.decompress(compressed)
                except _zlib.error as exc:
                    report.error(
                        index, f"zlib-fallback payload undecodable: {exc}"
                    )
                    index += 1
                    continue
                if len(raw) != meta.n_elements * width:
                    report.error(
                        index,
                        f"payload decodes to {len(raw)} bytes, expected "
                        f"{meta.n_elements * width}",
                    )
                    index += 1
                    continue
            else:
                raw = codec.decompress(compressed)
                if len(raw) != meta.n_elements * width:
                    report.error(
                        index,
                        f"payload decodes to {len(raw)} bytes, expected "
                        f"{meta.n_elements * width}",
                    )
                    index += 1
                    continue
        except IsobarError as exc:
            report.error(index, f"payload undecodable: {exc}")
            index += 1
            continue

        if _zlib.crc32(raw) != meta.raw_crc32:
            report.error(index, "CRC mismatch: chunk content corrupted")
            index += 1
            continue
        element_cursor += meta.n_elements
        report.n_elements_recovered += meta.n_elements
        index += 1

    if report.n_chunks_checked < header.n_chunks and not report.errors:
        report.error(
            -1,
            f"found {report.n_chunks_checked} chunk records, header "
            f"declares {header.n_chunks}",
        )
    if element_cursor != header.n_elements and not report.errors:
        report.error(
            -1,
            f"chunks cover {element_cursor} elements, header declares "
            f"{header.n_elements}",
        )
    _classify_footer(report, data, header, chain, end)
    return report


def _classify_footer(
    report: ValidationReport,
    data: bytes,
    header: ContainerHeader,
    chain: list[tuple[int, int, int, int]],
    chain_end: int,
) -> None:
    """Cross-check the index footer against the walked chunk chain.

    Sets ``report.footer_status`` to the four-way classification and
    records the trailing-garbage warning for bytes that are neither
    chunk chain nor valid footer.
    """
    location = locate_footer(data)
    if location.ok:
        footer = location.footer
        assert footer is not None
        if footer.n_chunks != header.n_chunks:
            report.footer_status = "inconsistent"
            report.footer_detail = (
                f"footer indexes {footer.n_chunks} chunks, header "
                f"declares {header.n_chunks} (stale footer after append?)"
            )
        else:
            mismatch = next(
                (
                    i
                    for i, (entry, walked) in enumerate(
                        zip(footer.entries, chain)
                    )
                    if (
                        entry.payload_offset,
                        entry.compressed_size,
                        entry.incompressible_size,
                        entry.n_elements,
                    )
                    != walked
                ),
                None,
            )
            if len(chain) != footer.n_chunks:
                report.footer_status = "inconsistent"
                report.footer_detail = (
                    f"footer indexes {footer.n_chunks} chunks, chain "
                    f"walk found {len(chain)}"
                )
            elif mismatch is not None:
                report.footer_status = "inconsistent"
                report.footer_detail = (
                    f"footer entry {mismatch} disagrees with the "
                    "chunk chain"
                )
            else:
                report.footer_status = "ok"
        if report.footer_status == "inconsistent":
            report.warn(
                -1,
                f"chunk-index footer inconsistent: {report.footer_detail}; "
                "run `isobar fsck --repair` to rebuild it",
            )
        if chain_end < location.start:
            report.warn(
                -1,
                f"{location.start - chain_end} trailing bytes between "
                "the last chunk and the footer",
            )
        return
    trailing = len(data) - chain_end
    if location.status == "absent" and trailing == 0:
        report.footer_status = "absent"
        report.footer_detail = "pre-footer container (scan-indexed open)"
        return
    # Footer damaged or replaced by debris: a forward scan still
    # reconstructs the index, so fsck can rebuild it.
    report.footer_status = "rebuildable"
    report.footer_detail = location.detail or (
        f"{trailing} trailing bytes after the last chunk are not a "
        "valid footer"
    )
    report.warn(
        -1,
        f"chunk-index footer {location.status}: {report.footer_detail}; "
        "run `isobar fsck --repair` to rebuild it",
    )
    if trailing:
        report.warn(-1, f"{trailing} trailing bytes after the last chunk")
