"""Reusable per-chunk scratch buffers for the compression hot path.

Chunked compression touches every byte of a chunk several times:
building the byte matrix, gathering the compressible/incompressible
column groups, and assembling the container record.  The byte-matrix
copy is gone (:func:`repro.analysis.bytefreq.byte_view` is zero-copy),
and :class:`ChunkWorkspace` removes the remaining per-chunk churn: the
column-gather outputs land in preallocated buffers that are reused from
chunk to chunk, and the column-index arrays derived from an analyzer
mask are memoised (in steady state every chunk of a stream produces the
same mask).

A workspace is *not* thread-safe — the parallel compressor keeps one
per worker thread.  The streams a workspace hands out alias its
buffers, so they are only valid until the next
:meth:`ChunkWorkspace.partition_streams` call; the pipeline materialises
them into the container record (or the solver's input ``bytes``) before
moving to the next chunk.
"""

from __future__ import annotations

import numpy as np

from repro.core.preferences import Linearization

__all__ = ["ChunkWorkspace"]

#: Memoised mask-index entries kept before the cache is reset (masks
#: are tiny; this only guards against adversarial mask churn).
_MASK_CACHE_LIMIT = 128


class ChunkWorkspace:
    """Scratch buffers and mask-index memoisation for chunk encoding."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._mask_cache: dict[bytes, tuple[np.ndarray, np.ndarray]] = {}

    def scratch(self, key: str, nbytes: int) -> np.ndarray:
        """A 1-D uint8 scratch view of exactly ``nbytes`` bytes.

        Buffers grow geometrically and persist across calls; two calls
        with the same ``key`` alias the same memory.
        """
        buf = self._buffers.get(key)
        if buf is None or buf.size < nbytes:
            size = max(nbytes, 2 * buf.size if buf is not None else nbytes)
            buf = np.empty(size, dtype=np.uint8)
            self._buffers[key] = buf
        return buf[:nbytes]

    def column_indices(
        self, mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(compressible, incompressible)`` column indices for ``mask``."""
        mask_arr = np.asarray(mask, dtype=bool)
        key = mask_arr.tobytes()
        cached = self._mask_cache.get(key)
        if cached is None:
            if len(self._mask_cache) >= _MASK_CACHE_LIMIT:
                self._mask_cache.clear()
            cached = (
                np.flatnonzero(mask_arr),
                np.flatnonzero(~mask_arr),
            )
            self._mask_cache[key] = cached
        return cached

    def partition_streams(
        self,
        matrix: np.ndarray,
        mask: np.ndarray,
        linearization: Linearization,
    ) -> tuple[bytes, memoryview]:
        """Split an ``(N, w)`` byte matrix into its two streams.

        Equivalent to the stream contents of
        :func:`repro.core.partitioner.partition_matrix`, but the column
        gathers land in this workspace's reusable buffers.  The
        compressible stream is materialised as ``bytes`` (it is handed
        to a solver, which may be pure Python); the incompressible
        stream is returned as a zero-copy ``memoryview`` that is only
        valid until the next call on this workspace.
        """
        n, _width = matrix.shape
        lin = Linearization.parse(linearization)
        comp_idx, incomp_idx = self.column_indices(mask)

        if comp_idx.size:
            k = comp_idx.size
            flat = self.scratch("comp", n * k)
            if lin is Linearization.ROW:
                np.take(matrix, comp_idx, axis=1, out=flat.reshape(n, k))
            else:
                np.take(matrix.T, comp_idx, axis=0, out=flat.reshape(k, n))
            compressible = flat.tobytes()
        else:
            compressible = b""

        if incomp_idx.size:
            k = incomp_idx.size
            flat = self.scratch("incomp", n * k)
            # The incompressible side is always column-major so each
            # noise column stays contiguous (matches partition_matrix).
            np.take(matrix.T, incomp_idx, axis=0, out=flat.reshape(k, n))
            incompressible = flat.data
        else:
            incompressible = memoryview(b"")
        return compressible, incompressible
