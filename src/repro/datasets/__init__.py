"""Dataset substrate: synthetic stand-ins for the paper's 24 datasets."""

from repro.datasets.loaders import (
    load_raw,
    raw_file_info,
    save_raw,
    stream_raw_chunks,
)
from repro.datasets.registry import (
    DATASETS,
    DEFAULT_ELEMENTS,
    DatasetSpec,
    PaperStats,
    dataset_names,
    generate_dataset,
    get_dataset,
    improvable_dataset_names,
)
from repro.datasets.timeseries import (
    StreamSegment,
    drifting_noise_stream,
    regime_switching_stream,
)
from repro.datasets.synthetic import (
    NOISE_KINDS,
    autocorrelated_indices,
    build_particle_ids,
    build_repetitive,
    build_structured,
    noise_column,
    smooth_pattern_values,
)

__all__ = [
    "StreamSegment",
    "drifting_noise_stream",
    "regime_switching_stream",
    "load_raw",
    "raw_file_info",
    "save_raw",
    "stream_raw_chunks",
    "DATASETS",
    "DEFAULT_ELEMENTS",
    "DatasetSpec",
    "PaperStats",
    "dataset_names",
    "generate_dataset",
    "get_dataset",
    "improvable_dataset_names",
    "NOISE_KINDS",
    "autocorrelated_indices",
    "build_particle_ids",
    "build_repetitive",
    "build_structured",
    "noise_column",
    "smooth_pattern_values",
]
