"""File-backed dataset storage and streaming.

Scientific traces arrive as flat binary dumps (the format the paper's
datasets use); these helpers write/read such dumps with a small
sidecar-free header and stream them chunk-by-chunk for in-situ style
processing without loading the whole array.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.core.exceptions import ContainerFormatError, InvalidInputError
from repro.core.preferences import DEFAULT_CHUNK_ELEMENTS

__all__ = ["save_raw", "load_raw", "stream_raw_chunks", "raw_file_info"]

_MAGIC = b"RDS1"


def save_raw(path: str | os.PathLike, values: np.ndarray) -> int:
    """Write ``values`` as a self-describing flat binary dump.

    Layout: magic, dtype string, element count, little-endian payload.
    Returns the number of bytes written.
    """
    arr = np.asarray(values).reshape(-1)
    if arr.dtype.kind not in "fiu":
        raise InvalidInputError(
            f"unsupported dtype {arr.dtype!r} for raw dataset files"
        )
    dtype_str = arr.dtype.str.encode("ascii")
    payload = np.ascontiguousarray(
        arr.astype(arr.dtype.newbyteorder("<"), copy=False)
    ).tobytes()
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<B", len(dtype_str)))
        handle.write(dtype_str)
        handle.write(struct.pack("<Q", arr.size))
        handle.write(payload)
    return 4 + 1 + len(dtype_str) + 8 + len(payload)


def _read_header(handle) -> tuple[np.dtype, int, int]:
    magic = handle.read(4)
    if magic != _MAGIC:
        raise ContainerFormatError(f"not a raw dataset file (magic {magic!r})")
    (dtype_len,) = struct.unpack("<B", handle.read(1))
    dtype_str = handle.read(dtype_len).decode("ascii")
    try:
        dtype = np.dtype(dtype_str)
    except TypeError as exc:
        raise ContainerFormatError(f"bad dtype in raw file: {dtype_str!r}") from exc
    (n_elements,) = struct.unpack("<Q", handle.read(8))
    header_len = 4 + 1 + dtype_len + 8
    return dtype, n_elements, header_len


def raw_file_info(path: str | os.PathLike) -> tuple[np.dtype, int]:
    """Read just the dtype and element count of a raw dataset file."""
    with open(path, "rb") as handle:
        dtype, n_elements, _ = _read_header(handle)
    return dtype, n_elements


def load_raw(path: str | os.PathLike) -> np.ndarray:
    """Load a file written by :func:`save_raw` into memory."""
    with open(path, "rb") as handle:
        dtype, n_elements, _ = _read_header(handle)
        payload = handle.read(n_elements * dtype.itemsize)
    if len(payload) != n_elements * dtype.itemsize:
        raise ContainerFormatError(
            f"raw file truncated: expected {n_elements} elements "
            f"({n_elements * dtype.itemsize} bytes), got {len(payload)} bytes"
        )
    little = np.frombuffer(payload, dtype=dtype.newbyteorder("<"))
    return little.astype(dtype, copy=False)


def stream_raw_chunks(
    path: str | os.PathLike,
    chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
) -> Iterator[np.ndarray]:
    """Yield chunks of a raw dataset file without loading it whole.

    Chunks are ``chunk_elements`` long except possibly the last —
    exactly the stream the in-situ workflow consumes (Figure 6).
    """
    if chunk_elements < 1:
        raise InvalidInputError(
            f"chunk_elements must be positive, got {chunk_elements}"
        )
    path = Path(path)
    with open(path, "rb") as handle:
        dtype, n_elements, _ = _read_header(handle)
        little = dtype.newbyteorder("<")
        remaining = n_elements
        while remaining > 0:
            count = min(chunk_elements, remaining)
            payload = handle.read(count * dtype.itemsize)
            if len(payload) != count * dtype.itemsize:
                raise ContainerFormatError(
                    f"raw file {path} truncated mid-chunk"
                )
            yield np.frombuffer(payload, dtype=little).astype(dtype, copy=False)
            remaining -= count
