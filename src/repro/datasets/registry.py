"""Registry of the paper's 24 evaluation datasets (Tables I, III, IV).

Each :class:`DatasetSpec` couples

* the paper-reported facts used by the benchmark tables (application,
  variable, data type, size, uniqueness/entropy/randomness from
  Table III, HTC classification from Table IV), and
* a deterministic synthetic generator reproducing the dataset's
  byte-level fingerprint (see :mod:`repro.datasets.synthetic` and
  DESIGN.md §3 for the substitution rationale).

``generate()`` defaults to one full analyzer chunk (375 000 elements),
scaled down from the paper's multi-hundred-MB traces to keep the
pure-Python benchmarks tractable; pass ``n_elements`` to override.
"""

from __future__ import annotations

import zlib as _zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.exceptions import InvalidInputError
from repro.datasets import synthetic

__all__ = [
    "PaperStats",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "get_dataset",
    "generate_dataset",
    "improvable_dataset_names",
    "DEFAULT_ELEMENTS",
]

#: Default synthetic size: one full ISOBAR chunk of doubles (Figure 8's
#: settling point), large enough for stable byte statistics.
DEFAULT_ELEMENTS = 375_000


@dataclass(frozen=True)
class PaperStats:
    """Facts the paper reports about the original dataset."""

    size_mb: float
    million_elements: float
    unique_percent: float
    shannon_entropy: float
    randomness_percent: float
    htc_bytes_percent: float
    hard_to_compress: bool
    improvable: bool


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset: paper facts plus a synthetic generator."""

    name: str
    application: str
    research_area: str
    variable: str
    description: str
    dtype: np.dtype
    paper: PaperStats
    _generator: Callable[[int, np.random.Generator], np.ndarray] = field(repr=False)

    def generate(
        self, n_elements: int = DEFAULT_ELEMENTS, seed: int | None = None
    ) -> np.ndarray:
        """Produce the synthetic stand-in, deterministically per name.

        The default seed is derived from the dataset name, so repeated
        calls (and separate processes) see identical data.
        """
        if n_elements < 1:
            raise InvalidInputError(
                f"n_elements must be positive, got {n_elements}"
            )
        if seed is None:
            seed = _zlib.crc32(self.name.encode("ascii"))
        rng = np.random.default_rng(seed)
        values = self._generator(n_elements, rng)
        if values.dtype != self.dtype:
            raise InvalidInputError(
                f"generator for {self.name} produced {values.dtype}, "
                f"spec says {self.dtype}"
            )
        return values

    @property
    def expected_noise_bytes(self) -> int:
        """Incompressible byte-columns implied by the paper's HTC %."""
        width = self.dtype.itemsize
        return round(self.paper.htc_bytes_percent / 100.0 * width)


def _structured(n_noise: int, *, kind: str = "wave", noise: str = "uniform",
                dtype=np.float64, low: float = 1.0, high: float = 2.0,
                step: float = 2.0):
    dt = np.dtype(dtype)

    def generator(n: int, rng: np.random.Generator) -> np.ndarray:
        return synthetic.build_structured(
            n, dt, n_noise, rng, noise_kind=noise, pattern_kind=kind,
            low=low, high=high, step_scale=step,
        )

    return generator


def _repetitive(n_values: int, mean_run: int, *, dtype=np.float64,
                low: float = 1.0, high: float = 2.0):
    dt = np.dtype(dtype)

    def generator(n: int, rng: np.random.Generator) -> np.ndarray:
        return synthetic.build_repetitive(
            n, dt, rng, n_values=n_values, mean_run=mean_run, low=low, high=high,
        )

    return generator


def _particle_ids(id_bits: int):
    def generator(n: int, rng: np.random.Generator) -> np.ndarray:
        return synthetic.build_particle_ids(n, rng, id_bits=id_bits)

    return generator


def _spec(name, application, area, variable, description, dtype, paper, generator):
    return DatasetSpec(
        name=name,
        application=application,
        research_area=area,
        variable=variable,
        description=description,
        dtype=np.dtype(dtype),
        paper=paper,
        _generator=generator,
    )


# Paper statistics transcribed from Tables III and IV.  HTC bytes
# percentages drive each generator's noise-column count.
DATASETS: dict[str, DatasetSpec] = {}

_ENTRIES = [
    _spec(
        "gts_phi_l", "GTS", "Fusion Plasma Core", "potential (linear)",
        "Linear potential fluctuation values from particle-based fusion "
        "plasma micro-turbulence simulation.",
        np.float64,
        PaperStats(42, 5.5, 99.9, 12.05, 99.9, 75.0, True, True),
        _structured(6, kind="wave"),
    ),
    _spec(
        "gts_phi_nl", "GTS", "Fusion Plasma Core", "potential (nonlinear)",
        "Nonlinear potential fluctuation values from the same GTS "
        "simulations.",
        np.float64,
        PaperStats(42, 5.5, 99.9, 12.05, 99.9, 75.0, True, True),
        _structured(6, kind="wave", step=3.0),
    ),
    _spec(
        "gts_chkp_zeon", "GTS", "Fusion Plasma Core", "zeon checkpoint",
        "zeon variable checkpoint/restart data for every 10th GTS "
        "time-step.",
        np.float64,
        PaperStats(18, 2.4, 99.9, 14.68, 99.9, 75.0, True, True),
        _structured(6, kind="walk"),
    ),
    _spec(
        "gts_chkp_zion", "GTS", "Fusion Plasma Core", "zion checkpoint",
        "zion variable checkpoint/restart data for every 10th GTS "
        "time-step.",
        np.float64,
        PaperStats(18, 2.4, 99.9, 15.12, 99.9, 75.0, True, True),
        _structured(6, kind="walk", step=4.0),
    ),
    _spec(
        "xgc_igid", "XGC", "Fusion Plasma Edge", "igid",
        "ID number of each particle on the fusion plasma edge.",
        np.int64,
        PaperStats(146, 19.2, 22.6, 13.81, 100.0, 37.5, True, True),
        _particle_ids(24),
    ),
    _spec(
        "xgc_iphase", "XGC", "Fusion Plasma Edge", "iphase",
        "Eight interleaved phase variables of each ion.",
        np.float64,
        PaperStats(1170, 153.4, 7.7, 12.32, 76.4, 75.0, True, True),
        _structured(6, kind="wave", step=8.0),
    ),
    _spec(
        "s3d_temp", "S3D", "Combustion", "temperature",
        "Temperature values from direct numerical simulation of "
        "turbulent combustion (single precision).",
        np.float32,
        PaperStats(77, 20.2, 45.9, 12.21, 95.4, 25.0, True, True),
        _structured(1, kind="wave", dtype=np.float32, low=800.0, high=2400.0),
    ),
    _spec(
        "s3d_vmag", "S3D", "Combustion", "vmagnitude",
        "Velocity-vector magnitudes from the S3D combustion solver "
        "(single precision).",
        np.float32,
        PaperStats(77, 20.2, 49.9, 12.81, 99.9, 50.0, True, True),
        _structured(2, kind="wave", dtype=np.float32, low=1.0, high=80.0),
    ),
    _spec(
        "flash_velx", "FLASH", "Astrophysics", "velx",
        "Fluid velocity x-component from the FLASH adaptive-mesh "
        "hydrodynamics code.",
        np.float64,
        PaperStats(520, 68.1, 100.0, 24.34, 100.0, 75.0, True, True),
        _structured(6, kind="wave", step=5.0),
    ),
    _spec(
        "flash_vely", "FLASH", "Astrophysics", "vely",
        "Fluid velocity y-component from FLASH.",
        np.float64,
        PaperStats(520, 68.1, 100.0, 25.74, 100.0, 75.0, True, True),
        _structured(6, kind="wave", step=6.0),
    ),
    _spec(
        "flash_gamc", "FLASH", "Astrophysics", "gamc",
        "gamc variable from FLASH.",
        np.float64,
        PaperStats(520, 68.1, 100.0, 11.26, 100.0, 62.5, True, True),
        _structured(5, kind="wave"),
    ),
    _spec(
        "msg_bt", "MSG", "NPB / ASCI Purple", "bt",
        "Numeric messages of the NPB computational fluid dynamics "
        "pseudo-application bt.",
        np.float64,
        PaperStats(254, 33.3, 92.9, 23.67, 94.7, 0.0, False, False),
        _structured(6, kind="wave", noise="spiked"),
    ),
    _spec(
        "msg_lu", "MSG", "NPB / ASCI Purple", "lu",
        "Numeric messages of the NPB pseudo-application lu.",
        np.float64,
        PaperStats(185, 24.2, 99.2, 24.47, 99.7, 75.0, True, True),
        _structured(6, kind="walk"),
    ),
    _spec(
        "msg_sp", "MSG", "NPB / ASCI Purple", "sp",
        "Numeric messages of the NPB pseudo-application sp.",
        np.float64,
        PaperStats(276, 36.2, 98.9, 25.03, 99.7, 62.5, True, True),
        _structured(5, kind="walk"),
    ),
    _spec(
        "msg_sppm", "MSG", "NPB / ASCI Purple", "sppm",
        "Numeric messages of the ASCI Purple solver sppm; heavily "
        "repetitive.",
        np.float64,
        PaperStats(266, 34.8, 10.2, 11.24, 44.9, 0.0, False, False),
        _repetitive(40, 48),
    ),
    _spec(
        "msg_sweep3d", "MSG", "NPB / ASCI Purple", "sweep3d",
        "Numeric messages of the ASCI Purple solver sweep3d.",
        np.float64,
        PaperStats(119, 15.7, 89.8, 23.41, 97.9, 50.0, True, True),
        _structured(4, kind="walk"),
    ),
    _spec(
        "num_brain", "NUM", "Numeric Simulation", "brain",
        "Velocity field of a human brain during head impact.",
        np.float64,
        PaperStats(135, 17.7, 94.9, 23.97, 99.5, 75.0, True, True),
        _structured(6, kind="walk", step=3.0),
    ),
    _spec(
        "num_comet", "NUM", "Numeric Simulation", "comet",
        "Simulation of comet Shoemaker-Levy 9 entering Jupiter's "
        "atmosphere.",
        np.float64,
        PaperStats(102, 13.4, 88.9, 22.04, 93.1, 37.5, True, True),
        _structured(3, kind="wave"),
    ),
    _spec(
        "num_control", "NUM", "Numeric Simulation", "control",
        "Control vector between two minimisation steps in "
        "weather-satellite data assimilation.",
        np.float64,
        PaperStats(152, 19.9, 98.5, 24.14, 99.6, 75.0, True, True),
        _structured(6, kind="walk", step=2.5),
    ),
    _spec(
        "num_plasma", "NUM", "Numeric Simulation", "plasma",
        "Simulated plasma temperature evolution of a wire-array z-pinch; "
        "tiny value dictionary.",
        np.float64,
        PaperStats(33, 4.4, 0.3, 13.65, 61.9, 0.0, False, False),
        _repetitive(24, 96),
    ),
    _spec(
        "obs_error", "OBS", "Satellite Measurements", "error",
        "Brightness-temperature errors of a weather satellite; "
        "quantised residuals.",
        np.float64,
        PaperStats(59, 7.7, 18.0, 17.80, 77.8, 0.0, False, False),
        _structured(6, kind="wave", noise="geometric"),
    ),
    _spec(
        "obs_info", "OBS", "Satellite Measurements", "info",
        "Latitude/longitude information of weather-satellite "
        "observation points.",
        np.float64,
        PaperStats(18, 2.3, 23.9, 18.07, 85.3, 75.0, True, True),
        _structured(6, kind="wave", low=10.0, high=60.0),
    ),
    _spec(
        "obs_spitzer", "OBS", "Satellite Measurements", "spitzer",
        "Spitzer Space Telescope photometry of an extra-solar planet "
        "transit.",
        np.float64,
        PaperStats(189, 24.7, 5.7, 17.36, 70.7, 0.0, False, False),
        _repetitive(96, 16),
    ),
    _spec(
        "obs_temp", "OBS", "Satellite Measurements", "temp",
        "Observed-minus-analysis temperature differences from a weather "
        "satellite.",
        np.float64,
        PaperStats(38, 4.9, 100.0, 22.25, 100.0, 75.0, True, True),
        _structured(6, kind="walk", step=1.5),
    ),
]

for _entry in _ENTRIES:
    DATASETS[_entry.name] = _entry


def dataset_names() -> tuple[str, ...]:
    """All 24 dataset names, in the paper's table order."""
    return tuple(DATASETS)


def improvable_dataset_names() -> tuple[str, ...]:
    """The 19 datasets the paper identifies as improvable."""
    return tuple(n for n, s in DATASETS.items() if s.paper.improvable)


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise InvalidInputError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None


def generate_dataset(
    name: str, n_elements: int = DEFAULT_ELEMENTS, seed: int | None = None
) -> np.ndarray:
    """Generate the synthetic stand-in for dataset ``name``."""
    return get_dataset(name).generate(n_elements=n_elements, seed=seed)
