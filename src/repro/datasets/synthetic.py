"""Synthetic generators reproducing the paper datasets' byte statistics.

The paper evaluates on 24 proprietary scientific datasets (GTS, XGC,
S3D, FLASH traces, message logs, observations) that are not publicly
archived.  ISOBAR's behaviour, however, depends only on the *byte-level
statistical fingerprint* of the data: which byte-columns carry
signal-like (skewed) distributions and which carry noise-like (near
uniform) ones, plus the repetition structure entropy coders exploit.
These generators reproduce those fingerprints exactly, so the analyzer,
partitioner and selector exercise the same code paths and the
evaluation tables keep their shape (see DESIGN.md §3).

Construction guarantees
-----------------------

* ``build_structured`` draws each element from a pool of at most
  ``n_patterns`` distinct base values.  Each pattern therefore repeats
  at least ``N / n_patterns`` times, so with
  ``n_patterns <= 256 / tau`` every non-noise byte-column's peak
  frequency provably clears the analyzer threshold ``tau*N/256`` —
  those columns are *compressible by construction*.
* The ``n_noise_bytes`` low-order byte-columns are overwritten with
  i.i.d. uniform bytes, whose peak frequency concentrates near
  ``N/256`` — *incompressible* for ``tau >= ~1.2`` with overwhelming
  probability at the chunk sizes the workflow uses.
* ``skewed`` noise kinds (geometric / spiked-mixture) keep a column
  compressible while still carrying high entropy, modelling datasets
  the paper reports as 0% HTC yet barely compressible (``msg_bt``).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bytefreq import byte_matrix, matrix_to_elements
from repro.core.exceptions import InvalidInputError

__all__ = [
    "smooth_pattern_values",
    "autocorrelated_indices",
    "noise_column",
    "build_structured",
    "build_repetitive",
    "build_particle_ids",
    "NOISE_KINDS",
]

#: Supported per-column noise distributions.
NOISE_KINDS = ("uniform", "geometric", "spiked")

#: Pattern-pool ceiling that guarantees signal columns stay above the
#: analyzer threshold for tau up to 2.0 (256 / 2.0).
MAX_GUARANTEED_PATTERNS = 128


def smooth_pattern_values(
    n_patterns: int,
    rng: np.random.Generator,
    low: float = 1.0,
    high: float = 2.0,
    kind: str = "wave",
) -> np.ndarray:
    """Generate ``n_patterns`` distinct, physically-shaped base values.

    ``kind="wave"`` samples a superposition of sinusoids (field-like
    data: potentials, velocities); ``kind="walk"`` integrates Gaussian
    steps (trajectory-like data: checkpoints, control vectors).  Values
    are affinely mapped into ``[low, high)`` so the floating-point
    exponent range — and hence the high byte-columns' spread — is
    controlled by the caller.
    """
    if n_patterns < 1:
        raise InvalidInputError(f"n_patterns must be positive, got {n_patterns}")
    if not low < high:
        raise InvalidInputError(f"need low < high, got [{low}, {high})")
    t = np.linspace(0.0, 1.0, n_patterns, endpoint=False)
    if kind == "wave":
        raw = (
            np.sin(2 * np.pi * 3.0 * t)
            + 0.5 * np.sin(2 * np.pi * 7.0 * t + 1.3)
            + 0.25 * np.sin(2 * np.pi * 13.0 * t + 2.1)
        )
    elif kind == "walk":
        raw = np.cumsum(rng.normal(size=n_patterns))
    else:
        raise InvalidInputError(f"unknown pattern kind {kind!r}")
    span = raw.max() - raw.min()
    if span == 0.0:
        span = 1.0
    scaled = low + (raw - raw.min()) / span * (high - low) * (1 - 1e-9)
    # Nudge duplicates apart so the pool really holds n_patterns
    # distinct values (ties can appear after scaling).
    scaled += np.arange(n_patterns) * np.finfo(np.float64).eps * low
    return scaled


def autocorrelated_indices(
    n: int,
    n_patterns: int,
    rng: np.random.Generator,
    step_scale: float = 2.0,
) -> np.ndarray:
    """Random-walk index sequence over the pattern pool.

    Physical fields vary smoothly in space, so consecutive elements
    reference nearby patterns; ``step_scale`` controls how far the walk
    jumps per element.  The walk reflects at the pool boundaries.
    """
    if n < 0:
        raise InvalidInputError(f"n must be non-negative, got {n}")
    if n_patterns < 1:
        raise InvalidInputError(f"n_patterns must be positive, got {n_patterns}")
    steps = rng.normal(scale=step_scale, size=n)
    walk = np.cumsum(steps) + n_patterns / 2.0
    period = 2.0 * n_patterns
    folded = np.abs(np.mod(walk, period) - n_patterns)
    return np.clip(folded.astype(np.int64), 0, n_patterns - 1)


def noise_column(
    n: int,
    rng: np.random.Generator,
    kind: str = "uniform",
) -> np.ndarray:
    """Draw one byte-column of synthetic noise.

    ``uniform`` — i.i.d. bytes, incompressible to the analyzer;
    ``geometric`` — small values dominate (quantisation residue),
    compressible but entropic;
    ``spiked`` — mostly uniform with a probability spike at 0,
    compressible by a hair (models the paper's 0%-HTC yet
    hard-to-compress datasets).
    """
    if kind == "uniform":
        return rng.integers(0, 256, size=n, dtype=np.int64).astype(np.uint8)
    if kind == "geometric":
        vals = rng.geometric(p=0.05, size=n) - 1
        return np.clip(vals, 0, 255).astype(np.uint8)
    if kind == "spiked":
        vals = rng.integers(0, 256, size=n, dtype=np.int64)
        spike = rng.random(n) < 0.04
        vals[spike] = 0
        return vals.astype(np.uint8)
    raise InvalidInputError(
        f"unknown noise kind {kind!r}; expected one of {NOISE_KINDS}"
    )


def build_structured(
    n_elements: int,
    dtype: np.dtype,
    n_noise_bytes: int,
    rng: np.random.Generator,
    *,
    n_patterns: int = MAX_GUARANTEED_PATTERNS,
    noise_kind: str = "uniform",
    pattern_kind: str = "wave",
    low: float = 1.0,
    high: float = 2.0,
    step_scale: float = 2.0,
) -> np.ndarray:
    """Field-like elements with exactly ``n_noise_bytes`` noise columns.

    The returned 1-D array of ``dtype`` elements has its ``n_noise_bytes``
    least-significant byte-columns replaced by ``noise_kind`` bytes and
    its remaining columns drawn from a pool of ``n_patterns`` smooth base
    values (see module docstring for the compressibility guarantees).
    """
    dt = np.dtype(dtype)
    width = dt.itemsize
    if not 0 <= n_noise_bytes <= width:
        raise InvalidInputError(
            f"n_noise_bytes must be in [0, {width}] for dtype {dt}, "
            f"got {n_noise_bytes}"
        )
    if n_elements < 1:
        raise InvalidInputError(f"n_elements must be positive, got {n_elements}")
    if dt.kind == "f":
        patterns = smooth_pattern_values(
            n_patterns, rng, low=low, high=high, kind=pattern_kind
        ).astype(dt)
    else:
        # Integer elements: spread patterns over a plausible magnitude.
        base = smooth_pattern_values(n_patterns, rng, low=low, high=high,
                                     kind=pattern_kind)
        patterns = (base * 1e6).astype(dt)
    indices = autocorrelated_indices(n_elements, n_patterns, rng,
                                     step_scale=step_scale)
    values = patterns[indices]
    if n_noise_bytes == 0:
        return values
    matrix = byte_matrix(values)
    for column in range(n_noise_bytes):
        matrix[:, column] = noise_column(n_elements, rng, kind=noise_kind)
    return matrix_to_elements(matrix, dt)


def build_repetitive(
    n_elements: int,
    dtype: np.dtype,
    rng: np.random.Generator,
    *,
    n_values: int = 48,
    mean_run: int = 24,
    low: float = 1.0,
    high: float = 2.0,
) -> np.ndarray:
    """Highly repetitive data: a small value dictionary with long runs.

    Models the paper's easily-compressible, non-improvable datasets
    (``msg_sppm``, ``num_plasma``, ``obs_spitzer``): every byte-column
    is skewed, the analyzer sees an all-compressible mask, and the whole
    stream passes to the solver unchanged.
    """
    if n_elements < 1:
        raise InvalidInputError(f"n_elements must be positive, got {n_elements}")
    if n_values < 1:
        raise InvalidInputError(f"n_values must be positive, got {n_values}")
    if mean_run < 1:
        raise InvalidInputError(f"mean_run must be positive, got {mean_run}")
    dt = np.dtype(dtype)
    dictionary = smooth_pattern_values(n_values, rng, low=low, high=high)
    if dt.kind == "f":
        dictionary = dictionary.astype(dt)
    else:
        dictionary = (dictionary * 1e6).astype(dt)
    # Draw run lengths until the target size is covered.
    n_runs = max(2 * n_elements // mean_run, 1)
    lengths = rng.geometric(p=1.0 / mean_run, size=n_runs)
    while int(lengths.sum()) < n_elements:
        lengths = np.concatenate(
            [lengths, rng.geometric(p=1.0 / mean_run, size=n_runs)]
        )
    choices = rng.integers(0, n_values, size=lengths.size)
    values = np.repeat(dictionary[choices], lengths)
    return values[:n_elements]


def build_particle_ids(
    n_elements: int,
    rng: np.random.Generator,
    *,
    id_bits: int = 24,
    dtype: np.dtype = np.int64,
) -> np.ndarray:
    """Particle-identifier data modelled on ``xgc_igid``.

    IDs are drawn (with replacement, giving the paper's ~23% unique
    ratio) from ``[0, 2^id_bits)``; on 8-byte integers the low
    ``id_bits/8`` byte-columns are uniform noise and the high columns
    are constant — the 37.5% HTC fingerprint of Table IV.
    """
    if n_elements < 1:
        raise InvalidInputError(f"n_elements must be positive, got {n_elements}")
    if not 8 <= id_bits <= 62:
        raise InvalidInputError(f"id_bits must be in [8, 62], got {id_bits}")
    ids = rng.integers(0, 1 << id_bits, size=n_elements)
    return ids.astype(np.dtype(dtype))
