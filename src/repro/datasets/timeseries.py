"""Stream generators with temporal structure (drift and regime switches).

The adaptive-compression experiments need inputs whose byte fingerprint
*changes over the stream*; these generators formalise the two shapes
used across tests and benchmarks:

* :func:`regime_switching_stream` — hard transitions between segments
  with different noise-byte counts (a variable moving between physical
  regimes, or a file concatenating unrelated variables);
* :func:`drifting_noise_stream` — the noise-byte count ramps gradually
  along the stream (precision requirements tightening over a
  simulation), producing a sequence of fingerprints rather than one
  jump.

Both return the concatenated stream plus the ground-truth segmentation,
so tests can assert the adaptive compressor recovers the boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import InvalidInputError
from repro.datasets.synthetic import build_structured

__all__ = ["StreamSegment", "regime_switching_stream", "drifting_noise_stream"]


@dataclass(frozen=True)
class StreamSegment:
    """Ground truth for one homogeneous run of a generated stream."""

    start: int
    stop: int
    noise_bytes: int

    @property
    def n_elements(self) -> int:
        """Elements covered by this segment."""
        return self.stop - self.start


def regime_switching_stream(
    segment_elements: int,
    noise_byte_plan: tuple[int, ...],
    rng: np.random.Generator,
    dtype=np.float64,
) -> tuple[np.ndarray, list[StreamSegment]]:
    """Concatenate equal-length segments with prescribed noise bytes.

    ``noise_byte_plan`` gives each segment's incompressible byte count;
    returns the stream and the ground-truth segments.
    """
    if segment_elements < 1:
        raise InvalidInputError(
            f"segment_elements must be positive, got {segment_elements}"
        )
    if not noise_byte_plan:
        raise InvalidInputError("noise_byte_plan may not be empty")
    pieces = []
    segments = []
    cursor = 0
    for noise in noise_byte_plan:
        piece = build_structured(segment_elements, dtype, noise, rng)
        pieces.append(piece)
        segments.append(StreamSegment(
            start=cursor, stop=cursor + segment_elements, noise_bytes=noise,
        ))
        cursor += segment_elements
    return np.concatenate(pieces), segments


def drifting_noise_stream(
    segment_elements: int,
    n_segments: int,
    rng: np.random.Generator,
    start_noise: int = 2,
    end_noise: int = 6,
    dtype=np.float64,
) -> tuple[np.ndarray, list[StreamSegment]]:
    """A stream whose noise-byte count ramps linearly across segments."""
    if n_segments < 1:
        raise InvalidInputError(f"n_segments must be positive, got {n_segments}")
    width = np.dtype(dtype).itemsize
    if not (0 <= start_noise <= width and 0 <= end_noise <= width):
        raise InvalidInputError(
            f"noise counts must be within [0, {width}] for {np.dtype(dtype)}"
        )
    plan = tuple(
        int(round(start_noise + (end_noise - start_noise) * i
                  / max(n_segments - 1, 1)))
        for i in range(n_segments)
    )
    return regime_switching_stream(segment_elements, plan, rng, dtype=dtype)
