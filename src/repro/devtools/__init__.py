"""Repo-native developer tooling: the AST invariant linter.

Entry points:

* ``python -m repro.devtools.lint [paths]`` — the standalone runner;
* ``isobar lint`` — the same runner behind the CLI facade;
* :func:`repro.devtools.lint_paths` + :func:`default_rules` — the
  programmatic API the tier-1 gate uses.
"""

from __future__ import annotations

from repro.devtools.engine import (
    LintReport,
    Rule,
    SourceModule,
    lint_modules,
    lint_paths,
    load_module,
    module_from_source,
    python_files,
)
from repro.devtools.findings import Finding, Suppression
from repro.devtools.rules import default_rules

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "SourceModule",
    "Suppression",
    "default_rules",
    "lint_modules",
    "lint_paths",
    "load_module",
    "module_from_source",
    "python_files",
]
