"""Small AST helpers shared by the rule pack."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted_name",
    "enclosing_functions",
    "walk_with_ancestors",
]


def dotted_name(node: ast.AST) -> str | None:
    """Flatten a ``Name``/``Attribute`` chain to ``"a.b.c"``.

    Returns ``None`` for chains rooted in anything else (calls,
    subscripts, literals) — rules treat those as opaque.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def walk_with_ancestors(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, tuple[ast.AST, ...]]]:
    """Depth-first walk yielding ``(node, ancestors)`` pairs.

    ``ancestors`` is ordered outermost-first and excludes the node
    itself, so guard checks can inspect every enclosing ``if``/``with``.
    """
    stack: list[tuple[ast.AST, tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + (node,)
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_ancestors))


def enclosing_functions(
    ancestors: tuple[ast.AST, ...],
) -> tuple[ast.FunctionDef | ast.AsyncFunctionDef, ...]:
    """The function definitions among ``ancestors``, outermost first."""
    return tuple(
        node for node in ancestors
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
