"""AST rule engine for the repo-native invariant linter.

The engine is deliberately small: it parses each file once into a
:class:`SourceModule`, hands the tree to every registered
:class:`Rule`, and folds the results into a :class:`LintReport`.
Rules come in two shapes:

* **module rules** implement :meth:`Rule.check_module` and see one file
  at a time (guard placement, registry mutations, exception hygiene);
* **project rules** implement :meth:`Rule.check_project` and see every
  linted file together — required for cross-module invariants such as
  encoder/decoder symmetry over :class:`~repro.core.metadata.ChunkMode`.

Suppressions
------------
A finding is silenced by a ``# isobar: ignore[RULE] reason`` comment on
the finding's line or on a comment-only line directly above it.  The
reason is **mandatory**: a suppression without one is itself reported
under rule ``ISO000``, so every intentional violation documents why it
is intentional.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.exceptions import InvalidInputError
from repro.devtools.findings import Finding, Suppression

__all__ = [
    "LintReport",
    "Rule",
    "SourceModule",
    "lint_modules",
    "lint_paths",
    "load_module",
    "module_from_source",
    "python_files",
]

#: ``# isobar: ignore[ISO001] reason`` / ``# isobar: ignore[ISO001, ISO005] ...``
_SUPPRESSION_RE = re.compile(
    r"#\s*isobar:\s*ignore\[([A-Za-z0-9*,\s]+)\]\s*(.*)$"
)

#: Rule id of the engine's own check on unexplained suppressions.
META_RULE_ID = "ISO000"

#: Rule id used for files that fail to parse.
PARSE_RULE_ID = "ISO-PARSE"


@dataclass(frozen=True)
class SourceModule:
    """One parsed Python file plus the metadata rules key off.

    ``module`` is the dotted import name (``repro.core.pipeline``)
    derived from the path; rules use it to scope themselves to hot-path
    or facade modules regardless of where the tree is checked out.
    """

    path: str
    module: str
    source: str
    tree: ast.Module
    suppressions: tuple[Suppression, ...] = ()

    @property
    def lines(self) -> tuple[str, ...]:
        """The file's source lines (1-indexed via ``lines[n - 1]``)."""
        return tuple(self.source.splitlines())

    def suppression_for(self, finding: Finding) -> Suppression | None:
        """The suppression silencing ``finding``, if any.

        Matches the finding's own line, or a comment-only line directly
        above it (the conventional placement for multi-line statements).
        """
        lines = self.source.splitlines()
        for supp in self.suppressions:
            if not supp.covers(finding.rule_id):
                continue
            if supp.line == finding.line:
                return supp
            if supp.line == finding.line - 1:
                above = lines[supp.line - 1].strip() if supp.line <= len(lines) else ""
                if above.startswith("#"):
                    return supp
        return None


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`rule_id`, :attr:`title` and :attr:`hint`, and
    override :meth:`check_module` (per-file) and/or
    :meth:`check_project` (cross-file).  Rules must be pure functions
    of the trees they are given — no filesystem access — so the test
    suite can run them against fixture snippets.
    """

    rule_id: str = ""
    title: str = ""
    hint: str = ""

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        """Yield findings for one parsed module."""
        return ()

    def check_project(
        self, mods: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        """Yield findings that need every linted module at once."""
        return ()

    def finding(
        self, mod: SourceModule, node: ast.AST | int, message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or a line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule_id=self.rule_id,
            path=mod.path,
            line=line,
            message=message,
            hint=self.hint if hint is None else hint,
        )


@dataclass
class LintReport:
    """Outcome of one lint run: active findings plus the audit trail."""

    findings: list[Finding] = field(default_factory=list)
    #: ``(finding, suppression)`` pairs silenced by an explained comment.
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)
    files_checked: int = 0
    rule_ids: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no findings survived suppression."""
        return not self.findings

    def render_text(self) -> str:
        """Human-readable report (one line per finding + a summary)."""
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        """Machine-readable report for ``--json`` / automation."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rule_ids),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [
                {"finding": finding.to_dict(), "suppression": supp.to_dict()}
                for finding, supp in self.suppressed
            ],
        }


def _parse_suppressions(path: str, source: str) -> tuple[Suppression, ...]:
    """Collect every ``# isobar: ignore[...]`` comment in ``source``."""
    found = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rule_ids = tuple(
            token.strip() for token in match.group(1).split(",")
            if token.strip()
        )
        found.append(
            Suppression(
                path=path,
                line=lineno,
                rule_ids=rule_ids,
                reason=match.group(2).strip(),
            )
        )
    return tuple(found)


def module_from_source(
    source: str, *, path: str = "<string>", module: str = "<module>"
) -> SourceModule:
    """Parse ``source`` into a :class:`SourceModule`.

    The declared ``module`` name controls which scoped rules apply —
    tests use this to run fixture snippets as if they lived in a
    hot-path or facade module.
    """
    tree = ast.parse(source)
    return SourceModule(
        path=path,
        module=module,
        source=source,
        tree=tree,
        suppressions=_parse_suppressions(path, source),
    )


def _module_name_for(path: str) -> str:
    """Dotted import name for ``path``, anchored at the ``repro`` package.

    Files outside a ``repro`` tree fall back to their stem, so the
    scoped rules simply never match them.
    """
    parts = list(os.path.normpath(path).split(os.sep))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    else:
        parts = parts[-1:]
    return ".".join(part for part in parts if part) or "<module>"


def load_module(path: str) -> SourceModule:
    """Read and parse one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return module_from_source(
        source, path=path, module=_module_name_for(path)
    )


def python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` (files or directory trees)."""
    for root in paths:
        if os.path.isfile(root):
            if root.endswith(".py"):
                yield root
            continue
        if not os.path.isdir(root):
            raise InvalidInputError(f"lint path does not exist: {root!r}")
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in {"__pycache__", ".git"} and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def lint_modules(
    mods: Sequence[SourceModule], rules: Sequence[Rule]
) -> LintReport:
    """Run ``rules`` over parsed modules and fold in suppressions."""
    report = LintReport(
        files_checked=len(mods),
        rule_ids=tuple(rule.rule_id for rule in rules),
    )
    raw: list[tuple[SourceModule, Finding]] = []
    for rule in rules:
        for mod in mods:
            for finding in rule.check_module(mod):
                raw.append((mod, finding))
        for finding in rule.check_project(mods):
            # Attribute the finding to the module it points at, so its
            # suppressions apply; fall back to the first module.
            owner = next((m for m in mods if m.path == finding.path), None)
            if owner is None and mods:
                owner = mods[0]
            if owner is not None:
                raw.append((owner, finding))
    for mod, finding in raw:
        supp = mod.suppression_for(finding)
        if supp is None:
            report.findings.append(finding)
        else:
            report.suppressed.append((finding, supp))
    # Engine-level check: every suppression must explain itself.
    for mod in mods:
        for supp in mod.suppressions:
            if not supp.explained:
                report.findings.append(
                    Finding(
                        rule_id=META_RULE_ID,
                        path=mod.path,
                        line=supp.line,
                        message=(
                            "suppression "
                            f"`isobar: ignore[{', '.join(supp.rule_ids)}]` "
                            "carries no reason"
                        ),
                        hint="append a short justification after the bracket",
                    )
                )
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return report


def lint_paths(
    paths: Sequence[str], rules: Sequence[Rule]
) -> LintReport:
    """Lint every Python file under ``paths`` with ``rules``.

    Unparseable files surface as ``ISO-PARSE`` findings instead of
    aborting the run, so one syntax error cannot hide other findings.
    """
    mods: list[SourceModule] = []
    parse_failures: list[Finding] = []
    count = 0
    for file_path in python_files(paths):
        count += 1
        try:
            mods.append(load_module(file_path))
        except SyntaxError as exc:
            parse_failures.append(
                Finding(
                    rule_id=PARSE_RULE_ID,
                    path=file_path,
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
    report = lint_modules(mods, rules)
    report.files_checked = count
    report.findings.extend(parse_failures)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return report
