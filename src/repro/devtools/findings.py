"""Finding and suppression records produced by the invariant linter.

A :class:`Finding` pins one invariant violation to a ``file:line`` with
the rule id that fired and a fix hint; a :class:`Suppression` records
one ``# isobar: ignore[RULE] reason`` comment.  Both serialize to plain
dictionaries so the runner can emit machine-readable reports
(``python -m repro.devtools.lint --json``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["Finding", "Suppression"]


@dataclass(frozen=True)
class Finding:
    """One invariant violation located in the source tree."""

    rule_id: str
    path: str
    line: int
    message: str
    #: How to fix it (or how to suppress it when intentional).
    hint: str = ""

    def render(self) -> str:
        """One-line ``path:line: RULE message`` report form."""
        text = f"{self.path}:{self.line}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for the JSON report."""
        return asdict(self)


@dataclass(frozen=True)
class Suppression:
    """One ``# isobar: ignore[RULE] reason`` comment found in a file.

    Suppressions without a ``reason`` are themselves reported (rule
    ``ISO000``): an unexplained suppression hides an invariant
    violation from future readers.
    """

    path: str
    line: int
    rule_ids: tuple[str, ...]
    reason: str

    @property
    def explained(self) -> bool:
        """Whether the suppression carries a non-empty reason."""
        return bool(self.reason.strip())

    def covers(self, rule_id: str) -> bool:
        """Whether this suppression silences ``rule_id``."""
        return rule_id in self.rule_ids or "*" in self.rule_ids

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form for the JSON report."""
        return {
            "path": self.path,
            "line": self.line,
            "rule_ids": list(self.rule_ids),
            "reason": self.reason,
        }
