"""Runner for the repo invariant linter.

Usage::

    python -m repro.devtools.lint [paths ...] [--json]

With no paths it lints the ``repro`` package it was imported from.
Exit status is 0 when clean, 1 when any finding survives suppression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

import repro
from repro.devtools.engine import LintReport, lint_paths
from repro.devtools.rules import default_rules

__all__ = ["default_lint_root", "main", "run"]


def default_lint_root() -> str:
    """The installed ``repro`` package directory (the default target)."""
    return os.path.dirname(os.path.abspath(repro.__file__))


def run(paths: Sequence[str]) -> LintReport:
    """Lint ``paths`` with the full rule pack."""
    return lint_paths(list(paths), default_rules())


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Check repo invariants (rules ISO001-ISO011).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    args = parser.parse_args(argv)
    paths = args.paths or [default_lint_root()]
    report = run(paths)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
