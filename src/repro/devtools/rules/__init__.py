"""The repo-invariant rule pack.

Each module contributes one (or two, for the exception rules) concrete
:class:`~repro.devtools.engine.Rule`.  :func:`default_rules` builds the
pack the runner and the tier-1 gate use; tests instantiate individual
rules with fixture-scoped module names instead.
"""

from __future__ import annotations

from repro.devtools.engine import Rule
from repro.devtools.rules.metrics_guard import MetricsGuardRule
from repro.devtools.rules.registry_lock import RegistryLockRule
from repro.devtools.rules.mode_symmetry import ChunkModeSymmetryRule
from repro.devtools.rules.facade import FacadeContractRule
from repro.devtools.rules.exception_rules import (
    ErrorHierarchyRule,
    ExceptSwallowRule,
)
from repro.devtools.rules.service_errors import ServiceStatusMapRule
from repro.devtools.rules.selector_contract import SelectorContractRule
from repro.devtools.rules.lock_order import LockOrderRule
from repro.devtools.rules.async_blocking import AsyncBlockingRule
from repro.devtools.rules.resource_lifecycle import ResourceLifecycleRule

__all__ = [
    "AsyncBlockingRule",
    "ChunkModeSymmetryRule",
    "ErrorHierarchyRule",
    "ExceptSwallowRule",
    "FacadeContractRule",
    "LockOrderRule",
    "MetricsGuardRule",
    "RegistryLockRule",
    "ResourceLifecycleRule",
    "SelectorContractRule",
    "ServiceStatusMapRule",
    "default_rules",
]


def default_rules() -> tuple[Rule, ...]:
    """The full rule pack, in rule-id order."""
    return (
        MetricsGuardRule(),
        RegistryLockRule(),
        ChunkModeSymmetryRule(),
        FacadeContractRule(),
        ExceptSwallowRule(),
        ErrorHierarchyRule(),
        ServiceStatusMapRule(),
        SelectorContractRule(),
        LockOrderRule(),
        AsyncBlockingRule(),
        ResourceLifecycleRule(),
    )
