"""ISO010 — service event-loop handlers must never block.

One blocked callback stalls *every* connection an asyncio service
owns, so the service package holds a hard rule: ``async def`` bodies
in ``repro.service.*`` may not perform blocking work inline.  Blocking
work belongs on the executor (``loop.run_in_executor``, the service's
``_run_with_deadline`` helper, ``asyncio.to_thread``) or behind the
deadline shim (:func:`repro.core.resilience.call_with_deadline`).

What counts as blocking
-----------------------
* a call from the denylist — ``time.sleep``, ``open``, ``input``,
  ``subprocess.*``, ``os.system``/``os.wait*``, ``socket.create_connection``,
  ``Future.result``-style ``.result()`` calls, and the repo's own
  synchronous compression entry points (``.compress(...)`` /
  ``.decompress(...)`` / ``compress_detailed`` / ``salvage_decompress``
  / ``stream_compress`` / ``stream_decompress``);
* acquiring a thread lock: ``with <…lock…>:`` or ``<…lock…>.acquire()``
  — a contended ``threading.Lock`` parks the whole loop;
* calling a synchronous function *of the same module or class* that
  does any of the above, transitively (the rule closes the local call
  graph, so hiding the lock one helper deep does not pass).

Deferred bodies are exempt: nested ``def``/``lambda`` inside the
handler do not run on the loop at definition time — they are exactly
how work is shipped to the executor — and calls that are *arguments*
to an executor-routing call are the approved escape hatch.

The runtime twin of this rule is the event-loop stall probe
(:mod:`repro.devtools.sanitizer.loopwatch`), which measures what this
rule predicts.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.astutil import dotted_name
from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["AsyncBlockingRule"]

#: Dotted call names that always block.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "open",
        "input",
        "os.system",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "salvage_decompress",
        "stream_compress",
        "stream_decompress",
    }
)

#: Attribute leaves that block regardless of the receiver: synchronous
#: codec/pipeline entry points and future joins.
_BLOCKING_ATTRS = frozenset(
    {"compress", "decompress", "compress_detailed", "result"}
)

#: Call names that route their function arguments off the loop.
_EXECUTOR_ROUTERS = frozenset(
    {"run_in_executor", "call_with_deadline", "to_thread"}
)


def _is_lock_like(name: str | None) -> bool:
    """Whether a dotted name plausibly denotes a thread lock."""
    if name is None:
        return False
    leaf = name.split(".")[-1].lower()
    return "lock" in leaf or "mutex" in leaf


def _blocking_call_reason(node: ast.Call) -> str | None:
    """Why ``node`` blocks, or ``None`` when it does not."""
    name = dotted_name(node.func)
    if name is not None:
        if name in _BLOCKING_CALLS:
            return f"`{name}(...)` blocks"
        leaf = name.split(".")[-1]
        if f"{leaf}" in _BLOCKING_CALLS:
            return f"`{leaf}(...)` blocks"
    if isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _BLOCKING_ATTRS:
            receiver = dotted_name(node.func.value) or "<expr>"
            return f"`{receiver}.{attr}(...)` is synchronous"
        if attr == "acquire" and _is_lock_like(
            dotted_name(node.func.value)
        ):
            receiver = dotted_name(node.func.value)
            return f"`{receiver}.acquire()` parks the loop"
    return None


def _sync_with_lock(node: ast.With) -> str | None:
    """The lock-like name a plain ``with`` acquires, if any."""
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        name = dotted_name(expr)
        if _is_lock_like(name):
            return name
    return None


class _FunctionScan:
    """Blocking evidence found directly in one function body."""

    def __init__(self) -> None:
        #: (line, reason) pairs of direct blocking operations.
        self.direct: list[tuple[int, str]] = []
        #: Locally-resolvable sync calls: (callee simple name, line).
        self.local_calls: list[tuple[str, int]] = []


def _scan_body(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    class_name: str | None,
) -> _FunctionScan:
    """Collect blocking evidence from ``fn``, skipping deferred bodies."""
    scan = _FunctionScan()

    def _walk(node: ast.AST, routed: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # deferred body: runs elsewhere
            child_routed = routed
            if isinstance(child, ast.Call):
                name = dotted_name(child.func)
                leaf = name.split(".")[-1] if name else ""
                if leaf in _EXECUTOR_ROUTERS:
                    # Arguments of a router call run off the loop.
                    child_routed = True
                elif not routed:
                    reason = _blocking_call_reason(child)
                    if reason is not None:
                        scan.direct.append((child.lineno, reason))
                    elif name is not None:
                        parts = name.split(".")
                        if (
                            len(parts) == 2
                            and parts[0] in ("self", "cls")
                            and class_name is not None
                        ):
                            scan.local_calls.append(
                                (f"{class_name}.{parts[1]}", child.lineno)
                            )
                        elif len(parts) == 1:
                            scan.local_calls.append((parts[0], child.lineno))
            elif isinstance(child, ast.With) and not routed:
                lock = _sync_with_lock(child)
                if lock is not None:
                    scan.direct.append(
                        (
                            child.lineno,
                            f"`with {lock}:` takes a thread lock",
                        )
                    )
            _walk(child, child_routed)

    _walk(fn, False)
    return scan


class AsyncBlockingRule(Rule):
    """ISO010: no blocking work inline in service ``async def`` bodies."""

    rule_id = "ISO010"
    title = "service async handlers must not block the event loop"
    hint = (
        "route the blocking work through loop.run_in_executor / "
        "_run_with_deadline / asyncio.to_thread (see docs/service.md)"
    )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not mod.module.startswith("repro.service"):
            return
        # Index every function with its scan, keyed by local qualname
        # (``func`` or ``Class.func``), to close the local call graph.
        scans: dict[str, _FunctionScan] = {}
        kinds: dict[str, str] = {}
        nodes: dict[str, ast.AST] = {}

        def _index(body: Iterable[ast.stmt], cls: str | None) -> None:
            for stmt in body:
                if isinstance(stmt, ast.ClassDef):
                    _index(stmt.body, stmt.name)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    key = f"{cls}.{stmt.name}" if cls else stmt.name
                    scans[key] = _scan_body(stmt, class_name=cls)
                    kinds[key] = (
                        "async"
                        if isinstance(stmt, ast.AsyncFunctionDef)
                        else "sync"
                    )
                    nodes[key] = stmt

        _index(mod.tree.body, None)

        # Fixpoint: which *sync* functions block (directly or via other
        # local sync functions).  Async callees are excluded — they are
        # awaited and audited on their own.
        blocking_why: dict[str, str] = {}
        for key, scan in scans.items():
            if kinds[key] == "sync" and scan.direct:
                line, reason = scan.direct[0]
                blocking_why[key] = reason
        changed = True
        while changed:
            changed = False
            for key, scan in scans.items():
                if kinds[key] != "sync" or key in blocking_why:
                    continue
                for callee, _line in scan.local_calls:
                    if kinds.get(callee) == "sync" and callee in blocking_why:
                        blocking_why[key] = (
                            f"calls `{callee}`, which "
                            f"{blocking_why[callee]}"
                        )
                        changed = True
                        break

        for key in sorted(scans):
            if kinds[key] != "async":
                continue
            scan = scans[key]
            for line, reason in scan.direct:
                yield self.finding(
                    mod,
                    line,
                    f"`{key}` blocks the event loop: {reason}",
                )
            for callee, line in scan.local_calls:
                if kinds.get(callee) == "sync" and callee in blocking_why:
                    yield self.finding(
                        mod,
                        line,
                        f"`{key}` blocks the event loop: `{callee}` "
                        f"{blocking_why[callee]}",
                    )
