"""ISO005/ISO006 — exception hygiene for the core and codec layers.

ISO005 targets the classic salvage-era bug: a broad ``except`` that
swallows the error and leaves no trace.  Broad handlers are fine — the
fault-containment layer is built on them — as long as the handler
visibly does *something* with the failure: re-raises, logs, records a
``DegradationEvent``, or binds the exception and threads it onward.

ISO006 keeps the error surface navigable: code under ``repro``
raises exceptions from the repo hierarchy (``IsobarError`` and
friends, which also subclass the matching builtins), never bare
builtins, so callers can catch ``IsobarError`` and get everything.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.astutil import dotted_name
from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["ErrorHierarchyRule", "ExceptSwallowRule"]

DEFAULT_SWALLOW_PREFIXES = ("repro.core.", "repro.codecs.")

#: Broad exception types that trigger the swallow check.
_BROAD_TYPES = frozenset({"Exception", "BaseException"})

#: Logger-ish call attributes that count as recording the failure.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical", "log"}
)

#: Calls that record the failure into the degradation ledger.
_DEGRADATION_NAMES = frozenset(
    {"DegradationEvent", "record_degradation", "record_chunk_outcome"}
)

DEFAULT_HIERARCHY_PREFIXES = ("repro.",)

#: Builtin exceptions that must not be raised directly under repro.
_FORBIDDEN_BUILTINS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


def _module_in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == prefix.rstrip(".") or module.startswith(prefix)
        for prefix in prefixes
    )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    name = dotted_name(handler.type)
    return name is not None and name.split(".")[-1] in _BROAD_TYPES


def _handler_accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """Whether a broad handler visibly does something with the error."""
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if bound is not None and isinstance(node, ast.Name) and node.id == bound:
            if isinstance(node.ctx, ast.Load):
                return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            terminal = name.split(".")[-1]
            if terminal in _DEGRADATION_NAMES:
                return True
            if terminal in _LOG_METHODS and "." in name:
                return True
    return False


class ExceptSwallowRule(Rule):
    """ISO005: broad ``except`` that silently swallows the failure."""

    rule_id = "ISO005"
    title = "broad except handlers must not swallow failures silently"
    hint = (
        "re-raise, log, record a DegradationEvent, or bind the "
        "exception and thread it onward"
    )

    def __init__(self, module_prefixes: Iterable[str] | None = None):
        self.module_prefixes = tuple(
            DEFAULT_SWALLOW_PREFIXES if module_prefixes is None
            else module_prefixes
        )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not _module_in_scope(mod.module, self.module_prefixes):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _handler_accounts_for_failure(node):
                continue
            caught = (
                "bare except" if node.type is None
                else f"except {dotted_name(node.type)}"
            )
            yield self.finding(
                mod,
                node,
                f"{caught} swallows the failure without re-raising, "
                "logging, or recording a degradation",
            )


class ErrorHierarchyRule(Rule):
    """ISO006: raising a bare builtin instead of the repo hierarchy."""

    rule_id = "ISO006"
    title = "repro code raises exceptions from the repo error hierarchy"
    hint = (
        "raise the matching repro.core.exceptions type (e.g. "
        "InvalidInputError subclasses ValueError)"
    )

    def __init__(self, module_prefixes: Iterable[str] | None = None):
        self.module_prefixes = tuple(
            DEFAULT_HIERARCHY_PREFIXES if module_prefixes is None
            else module_prefixes
        )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not _module_in_scope(mod.module, self.module_prefixes):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name is not None and name in _FORBIDDEN_BUILTINS:
                yield self.finding(
                    mod,
                    node,
                    f"raises builtin `{name}` directly instead of a "
                    "repro error hierarchy type",
                )
