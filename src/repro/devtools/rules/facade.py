"""ISO004 — the public facade keeps its call-shape contract.

``repro.api`` (re-exported from ``repro``) promises two things:

* every public function takes at most one positional argument, so
  options can be added, renamed and reordered without breaking
  callers (``compress(values, level=3)`` — never
  ``compress(values, 3)``);
* any ``errors=`` policy string is validated through
  :func:`repro.core.preferences.normalize_errors` (directly, or by
  forwarding ``errors=`` to a layer that does) before it can steer a
  decode.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.astutil import dotted_name
from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["FacadeContractRule"]

DEFAULT_FACADE_MODULES = frozenset({"repro", "repro.api"})


def _routes_errors(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether ``fn`` validates or forwards its ``errors`` parameter."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == "normalize_errors":
            return True
        for keyword in node.keywords:
            if keyword.arg == "errors":
                return True
    return False


class FacadeContractRule(Rule):
    """ISO004: facade function breaks the keyword-only/errors contract."""

    rule_id = "ISO004"
    title = "facade functions are keyword-only past the first argument"
    hint = (
        "insert `*` after the first parameter; route `errors` through "
        "normalize_errors or forward it as an `errors=` keyword"
    )

    def __init__(self, facade_modules: Iterable[str] | None = None):
        self.facade_modules = frozenset(
            DEFAULT_FACADE_MODULES if facade_modules is None else facade_modules
        )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if mod.module not in self.facade_modules:
            return
        for stmt in mod.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            positional = stmt.args.posonlyargs + stmt.args.args
            if len(positional) > 1:
                extra = ", ".join(arg.arg for arg in positional[1:])
                yield self.finding(
                    mod,
                    stmt,
                    f"public facade function `{stmt.name}` accepts "
                    f"positional parameter(s) `{extra}` past the first "
                    "argument",
                )
            param_names = {
                arg.arg
                for arg in positional + stmt.args.kwonlyargs
            }
            if "errors" in param_names and not _routes_errors(stmt):
                yield self.finding(
                    mod,
                    stmt,
                    f"`{stmt.name}` takes an `errors` policy but neither "
                    "calls normalize_errors nor forwards `errors=` onward",
                )
