"""ISO009 — the repo-wide lock-acquisition graph must stay acyclic.

Deadlocks need no broken code, only two correct critical sections that
nest the same locks in opposite orders on different threads.  No
per-file check can see that: the rule therefore runs as a *project*
rule, building one directed graph over every lock in the linted tree
and flagging each elementary cycle with the full acquisition path.

What counts as a lock
---------------------
* a module-level ``NAME = threading.Lock()`` / ``RLock`` /
  ``Condition`` (canonical id ``module.NAME``);
* an instance attribute ``self._x = threading.Lock()`` assigned in a
  class body's methods (canonical id ``module.Class._x``) — every
  instance shares one graph node, which is exactly the discipline a
  lock *hierarchy* requires.

How edges form
--------------
* **Lexical nesting**: ``with A: ... with B:`` adds ``A -> B`` for
  every lock held by an enclosing ``with``.
* **Call nesting**: a call made while holding ``A`` to a function the
  rule can resolve (same-class method via ``self.``/``cls.``, a
  module-level function, an imported name, or a class constructor)
  adds ``A -> B`` for every lock that callee can transitively acquire.
  Resolution is name-based and conservative: an unresolvable call adds
  no edges.

A self-edge on a non-reentrant ``threading.Lock`` (acquiring a lock
while already holding it) is reported as a one-node cycle — with a
plain ``Lock`` that is not a deadlock risk, it is a deadlock.
``RLock`` self-edges are legal and ignored.

The runtime twin of this rule is
:mod:`repro.devtools.sanitizer.lockgraph`, which watches the same
graph built from *actual* acquisitions instead of the AST.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.devtools.astutil import dotted_name
from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["LockGraphBuilder", "LockOrderRule"]

#: ``threading`` constructors that build a lock-like object.
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition"})


def _lock_ctor_kind(value: ast.AST) -> str | None:
    """``"Lock"``/``"RLock"``/``"Condition"`` when ``value`` builds one."""
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    leaf = name.split(".")[-1]
    return leaf if leaf in _LOCK_CTORS else None


@dataclass
class _FunctionInfo:
    """Summary of one function the graph builder collected."""

    qualname: str
    module: str
    path: str
    #: Locks acquired directly by a ``with`` in this body: (lock, line).
    acquires: list[tuple[str, int]] = field(default_factory=list)
    #: Calls made in this body: (callee key candidates, line, held locks).
    calls: list[tuple[tuple[str, ...], int, tuple[str, ...]]] = field(
        default_factory=list
    )
    #: Lexical ``A -> B`` edges with the nested acquisition's line.
    nest_edges: list[tuple[str, str, int]] = field(default_factory=list)


@dataclass(frozen=True)
class _Edge:
    """One ``src -> dst`` ordering observation and where it was made."""

    src: str
    dst: str
    path: str
    line: int
    via: str  # the function whose body established the edge


class LockGraphBuilder:
    """Builds the project lock graph from parsed modules.

    Exposed separately from the rule so tests (and the sanitizer docs)
    can inspect the graph of a fixture tree directly.
    """

    def __init__(self, mods: Sequence[SourceModule]):
        self._mods = mods
        #: canonical lock id -> constructor kind ("Lock"/"RLock"/...)
        self.locks: dict[str, str] = {}
        self._functions: dict[str, _FunctionInfo] = {}
        self._collect()

    # -- collection -------------------------------------------------------

    def _collect(self) -> None:
        for mod in self._mods:
            imports = self._import_map(mod)
            module_locks = self._module_locks(mod)
            class_locks = self._class_locks(mod)
            visitor = _ModuleVisitor(
                mod, imports, module_locks, class_locks, self
            )
            visitor.visit(mod.tree)

    @staticmethod
    def _import_map(mod: SourceModule) -> dict[str, str]:
        """Local name -> dotted module/object it refers to."""
        mapping: dict[str, str] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mapping[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                base = node.module
                if node.level:
                    # Relative import: anchor at the current package.
                    parts = mod.module.split(".")
                    parts = parts[: max(len(parts) - node.level, 0)]
                    base = ".".join(parts + [node.module])
                for alias in node.names:
                    mapping[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        return mapping

    def _module_locks(self, mod: SourceModule) -> dict[str, str]:
        """Top-level lock assignments: local name -> canonical id."""
        found: dict[str, str] = {}
        for stmt in mod.tree.body:
            targets: list[ast.expr] = []
            value: ast.AST | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            kind = _lock_ctor_kind(value)
            if kind is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    lock_id = f"{mod.module}.{target.id}"
                    found[target.id] = lock_id
                    self.locks[lock_id] = kind
        return found

    def _class_locks(self, mod: SourceModule) -> dict[str, dict[str, str]]:
        """Class name -> {attribute -> canonical id} for self-lock attrs."""
        found: dict[str, dict[str, str]] = {}
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            attrs: dict[str, str] = {}
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Assign):
                    continue
                kind = _lock_ctor_kind(node.value)
                if kind is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        lock_id = f"{mod.module}.{stmt.name}.{target.attr}"
                        attrs[target.attr] = lock_id
                        self.locks[lock_id] = kind
            if attrs:
                found[stmt.name] = attrs
        return found

    # -- graph ------------------------------------------------------------

    def add_function(self, info: _FunctionInfo) -> None:
        self._functions[info.qualname] = info

    def _closure(self) -> dict[str, set[str]]:
        """Fixpoint: every lock each function can transitively acquire."""
        acquired: dict[str, set[str]] = {
            name: {lock for lock, _ in info.acquires}
            for name, info in self._functions.items()
        }
        changed = True
        while changed:
            changed = False
            for name, info in self._functions.items():
                for candidates, _line, _held in info.calls:
                    for callee in candidates:
                        extra = acquired.get(callee)
                        if extra and not extra <= acquired[name]:
                            acquired[name] |= extra
                            changed = True
                        if extra is not None:
                            break  # first resolvable candidate wins
        return acquired

    def edges(self) -> list[_Edge]:
        """Every ordering edge in the project, deterministic order."""
        closure = self._closure()
        out: list[_Edge] = []
        for name in sorted(self._functions):
            info = self._functions[name]
            for src, dst, line in info.nest_edges:
                out.append(_Edge(src, dst, info.path, line, name))
            for candidates, line, held in info.calls:
                if not held:
                    continue
                callee_locks: set[str] | None = None
                for callee in candidates:
                    if callee in closure:
                        callee_locks = closure[callee]
                        break
                if not callee_locks:
                    continue
                for src in held:
                    for dst in sorted(callee_locks):
                        out.append(_Edge(src, dst, info.path, line, name))
        return out

    def cycles(self) -> list[tuple[list[str], list[_Edge]]]:
        """Elementary cycles as (lock path, witness edges).

        Reports one cycle per distinct lock set: ``[A, B]`` means
        ``A -> B`` and ``B -> A`` both exist.  Self-edges on plain
        ``Lock`` objects surface as single-node cycles.
        """
        edges = self.edges()
        graph: dict[str, dict[str, _Edge]] = {}
        for edge in edges:
            if edge.src == edge.dst:
                continue  # handled as self-cycles below
            graph.setdefault(edge.src, {}).setdefault(edge.dst, edge)
        found: list[tuple[list[str], list[_Edge]]] = []
        seen_sets: set[frozenset[str]] = set()
        for edge in edges:
            if edge.src == edge.dst:
                if self.locks.get(edge.src) == "Lock":
                    key = frozenset((edge.src,))
                    if key not in seen_sets:
                        seen_sets.add(key)
                        found.append(([edge.src, edge.src], [edge]))
                continue
        # DFS from each node, path-tracking, to find elementary cycles.
        def _dfs(start: str) -> None:
            stack: list[tuple[str, list[str], list[_Edge]]] = [
                (start, [start], [])
            ]
            while stack:
                node, path, trail = stack.pop()
                for nxt, edge in sorted(graph.get(node, {}).items()):
                    if nxt == start and len(path) > 1:
                        key = frozenset(path)
                        if key not in seen_sets:
                            seen_sets.add(key)
                            found.append(
                                (path + [start], trail + [edge])
                            )
                    elif nxt not in path and nxt > start:
                        # Only walk nodes ordered after the start so each
                        # cycle is discovered from its smallest node once.
                        stack.append(
                            (nxt, path + [nxt], trail + [edge])
                        )
        for node in sorted(graph):
            _dfs(node)
        found.sort(key=lambda item: item[0])
        return found


class _ModuleVisitor(ast.NodeVisitor):
    """Walks one module, filling the builder's function summaries."""

    def __init__(
        self,
        mod: SourceModule,
        imports: dict[str, str],
        module_locks: dict[str, str],
        class_locks: dict[str, dict[str, str]],
        builder: LockGraphBuilder,
    ) -> None:
        self._mod = mod
        self._imports = imports
        self._module_locks = module_locks
        self._class_locks = class_locks
        self._builder = builder
        self._class_stack: list[str] = []
        self._func_stack: list[_FunctionInfo] = []
        self._held_stack: list[tuple[str, int]] = []

    # -- lock resolution --------------------------------------------------

    def _resolve_lock(self, expr: ast.AST) -> str | None:
        """Canonical lock id for a ``with`` context expression."""
        if isinstance(expr, ast.Call):  # e.g. Condition.__enter__ via call
            return None
        name = dotted_name(expr)
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            return self._module_locks.get(parts[0]) or (
                self._imported_lock(parts[0])
            )
        if parts[0] in ("self", "cls") and len(parts) == 2:
            if self._class_stack:
                attrs = self._class_locks.get(self._class_stack[-1], {})
                return attrs.get(parts[1])
            return None
        # ``module.LOCK`` through an import alias.
        base = self._imports.get(parts[0])
        if base is not None and len(parts) == 2:
            candidate = f"{base}.{parts[1]}"
            if candidate in self._builder.locks:
                return candidate
        return None

    def _imported_lock(self, local: str) -> str | None:
        target = self._imports.get(local)
        if target is not None and target in self._builder.locks:
            return target
        return None

    def _callee_candidates(self, func: ast.AST) -> tuple[str, ...]:
        """Possible qualnames for a call target, best first."""
        name = dotted_name(func)
        if name is None:
            return ()
        parts = name.split(".")
        module = self._mod.module
        out: list[str] = []
        if parts[0] in ("self", "cls") and len(parts) == 2:
            if self._class_stack:
                cls = self._class_stack[-1]
                out.append(f"{module}.{cls}.{parts[1]}")
        elif len(parts) == 1:
            local = parts[0]
            target = self._imports.get(local)
            if target is not None:
                out.append(target)
                out.append(f"{target}.__init__")
            out.append(f"{module}.{local}")
            out.append(f"{module}.{local}.__init__")
        else:
            base = self._imports.get(parts[0])
            if base is not None:
                dotted = ".".join([base] + parts[1:])
                out.append(dotted)
                out.append(f"{dotted}.__init__")
        return tuple(out)

    # -- visitor ----------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        qual = ".".join(
            [self._mod.module, *self._class_stack, node.name]
        )
        info = _FunctionInfo(
            qualname=qual, module=self._mod.module, path=self._mod.path
        )
        self._builder.add_function(info)
        self._func_stack.append(info)
        held_before = self._held_stack
        # A nested function body does not run under the outer ``with``.
        self._held_stack = []
        self.generic_visit(node)
        self._held_stack = held_before
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        if not self._func_stack:
            self.generic_visit(node)
            return
        info = self._func_stack[-1]
        acquired: list[tuple[str, int]] = []
        for item in node.items:
            lock = self._resolve_lock(item.context_expr)
            if lock is None:
                continue
            acquired.append((lock, node.lineno))
            info.acquires.append((lock, node.lineno))
            for held, _line in self._held_stack:
                info.nest_edges.append((held, lock, node.lineno))
        self._held_stack.extend(acquired)
        self.generic_visit(node)
        del self._held_stack[len(self._held_stack) - len(acquired):]

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Call(self, node: ast.Call) -> None:
        if self._func_stack:
            info = self._func_stack[-1]
            candidates = self._callee_candidates(node.func)
            if candidates:
                held = tuple(lock for lock, _line in self._held_stack)
                info.calls.append((candidates, node.lineno, held))
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda body is deferred work: calls inside it do not run
        # under the locks held at its definition site.
        held_before = self._held_stack
        self._held_stack = []
        self.generic_visit(node)
        self._held_stack = held_before


class LockOrderRule(Rule):
    """ISO009: no cycles in the project-wide lock acquisition graph."""

    rule_id = "ISO009"
    title = "lock acquisition order must be globally consistent"
    hint = (
        "pick one order for these locks and restructure the critical "
        "sections (copy state out of the first lock before taking the "
        "second, or merge the sections under one lock)"
    )

    def check_project(
        self, mods: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        builder = LockGraphBuilder(mods)
        for path_locks, witness in builder.cycles():
            if len(set(path_locks)) == 1:
                lock = path_locks[0]
                edge = witness[0]
                yield Finding(
                    rule_id=self.rule_id,
                    path=edge.path,
                    line=edge.line,
                    message=(
                        f"non-reentrant lock `{lock}` may be re-acquired "
                        f"while already held (via `{edge.via}`)"
                    ),
                    hint="switch to RLock or hoist the inner acquisition",
                )
                continue
            first = witness[0]
            cycle = " -> ".join(path_locks)
            sites = "; ".join(
                f"{e.src.rsplit('.', 1)[-1]}->{e.dst.rsplit('.', 1)[-1]} "
                f"at {e.path}:{e.line} in `{e.via}`"
                for e in witness
            )
            yield Finding(
                rule_id=self.rule_id,
                path=first.path,
                line=first.line,
                message=(
                    f"lock-order cycle {cycle} "
                    f"(acquisition sites: {sites})"
                ),
                hint=self.hint,
            )
