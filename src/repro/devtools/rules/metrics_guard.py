"""ISO001 — metrics/tracer calls on hot paths must cost nothing when off.

The observability layer's contract (PR 2, ``docs/observability.md``) is
*zero overhead when disabled*: hot-path modules only talk to metrics
through null objects (``NULL_TRACER`` / ``NULL_REGISTRY`` /
``PipelineInstruments`` over a null registry) or behind an explicit
``if <registry>.enabled`` guard.  A metric call on a receiver that is
neither provably a null object nor guarded re-introduces per-chunk
overhead for every caller that never asked for metrics — exactly the
regression class this rule exists to stop.

The null-object proof is intraprocedural but covers the repo's idioms:

* names assigned an expression mentioning ``NULL_TRACER`` or
  ``NULL_REGISTRY`` (including conditional expressions);
* names assigned ``PipelineInstruments(...)`` (null over a null
  registry);
* parameters whose default is one of the null objects;
* names assigned from a call to a local factory whose body can return
  a null object (e.g. ``tracer = self._tracer()``);
* names copied from any of the above (fixpoint over assignments).

Subclasses (``ParallelIsobarPipeline``) inherit ``self._instruments``
and ``self._tracer()`` from ``repro.core.pipeline`` without re-binding
them, so the analysis cannot see their construction.  Those two are
declared null-safe via the ``inherited_null_attrs`` /
``inherited_factories`` seeds — the base class is itself linted, so
the proof still bottoms out in checked code.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.astutil import walk_with_ancestors
from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["MetricsGuardRule"]

#: Modules whose per-chunk loops must stay metric-free when disabled.
DEFAULT_HOT_MODULES = frozenset(
    {
        "repro.core.pipeline",
        "repro.core.parallel",
        "repro.core.stream",
        "repro.analysis.bytefreq",
    }
)

#: Receiver tokens that mark a call as metrics/tracing machinery.
_RECEIVER_RE = re.compile(r"^_?(instruments|metrics|tracer|stream_tracer|registry)$")

#: Recording methods on instruments, tracers and registries.
_METRIC_METHODS = frozenset(
    {
        "inc",
        "observe",
        "set",
        "add",
        "record_chunk_outcome",
        "counter",
        "gauge",
        "histogram",
    }
)

#: Names whose appearance in an assigned expression proves null-object
#: behaviour when metrics are disabled.
_NULL_OBJECTS = frozenset({"NULL_TRACER", "NULL_REGISTRY"})

#: Constructors that wrap a (possibly null) registry in null-safe
#: instruments.
_NULL_SAFE_CONSTRUCTORS = frozenset({"PipelineInstruments"})

#: Names in a guard test that prove the metrics path is opt-in.
_GUARD_NAMES = frozenset({"enabled", "metrics", "collect_metrics"})

#: Attributes seeded null-safe by the base pipeline's constructor.
DEFAULT_INHERITED_NULL_ATTRS = frozenset({"_instruments"})

#: Inherited factory methods that return a null object when disabled.
DEFAULT_INHERITED_FACTORIES = frozenset({"_tracer"})


def _call_chain(func: ast.AST) -> list[str] | None:
    """Flatten ``a.b().c.d`` into ``["a", "b", "c", "d"]``.

    Unlike :func:`~repro.devtools.astutil.dotted_name` this walks
    through intermediate calls, so ``registry.counter("x").inc`` keeps
    its full receiver chain.
    """
    parts: list[str] = []
    node = func
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return list(reversed(parts))
        else:
            return None


def _mentions_null_object(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id in _NULL_OBJECTS
        for sub in ast.walk(node)
    )


def _target_names(target: ast.AST) -> Iterator[str]:
    """Safe-set keys for an assignment target (``x`` or ``self.x``)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Attribute):
        yield target.attr
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _value_terminal(node: ast.AST) -> str | None:
    """Terminal token of a plain copy (``x`` / ``self.x``), else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class MetricsGuardRule(Rule):
    """ISO001: unguarded metrics/tracer call in a hot-path module."""

    rule_id = "ISO001"
    title = "hot-path metrics calls must be null-object or guard protected"
    hint = (
        "route the call through a null-object receiver (NULL_TRACER / "
        "PipelineInstruments) or wrap it in `if <registry>.enabled:`"
    )

    def __init__(
        self,
        hot_modules: Iterable[str] | None = None,
        inherited_null_attrs: Iterable[str] | None = None,
        inherited_factories: Iterable[str] | None = None,
    ):
        self.hot_modules = frozenset(
            DEFAULT_HOT_MODULES if hot_modules is None else hot_modules
        )
        self.inherited_null_attrs = frozenset(
            DEFAULT_INHERITED_NULL_ATTRS if inherited_null_attrs is None
            else inherited_null_attrs
        )
        self.inherited_factories = frozenset(
            DEFAULT_INHERITED_FACTORIES if inherited_factories is None
            else inherited_factories
        )

    # -- null-object analysis ---------------------------------------------

    def _factory_names(self, tree: ast.Module) -> set[str]:
        """Functions that can return a null object (tracer factories)."""
        factories: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Return)
                        and sub.value is not None
                        and _mentions_null_object(sub.value)
                    ):
                        factories.add(node.name)
                        break
        return factories

    def _null_safe_names(self, tree: ast.Module) -> set[str]:
        """Fixpoint set of names proven to be null objects when off."""
        safe: set[str] = set(self.inherited_null_attrs)
        factories = self._factory_names(tree) | self.inherited_factories
        assignments: list[tuple[ast.AST, ast.AST]] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    assignments.append((target, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                assignments.append((node.target, node.value))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                pos = args.posonlyargs + args.args
                defaults = args.defaults
                for arg, default in zip(pos[len(pos) - len(defaults):], defaults):
                    if _mentions_null_object(default):
                        safe.add(arg.arg)
                for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                    if default is not None and _mentions_null_object(default):
                        safe.add(arg.arg)
        changed = True
        while changed:
            changed = False
            for target, value in assignments:
                is_safe = _mentions_null_object(value)
                if not is_safe and isinstance(value, ast.Call):
                    chain = _call_chain(value.func)
                    if chain is not None and (
                        chain[-1] in _NULL_SAFE_CONSTRUCTORS
                        or chain[-1] in factories
                    ):
                        is_safe = True
                if not is_safe:
                    terminal = _value_terminal(value)
                    is_safe = terminal is not None and terminal in safe
                if is_safe:
                    for name in _target_names(target):
                        if name not in safe:
                            safe.add(name)
                            changed = True
        return safe

    # -- guard analysis ---------------------------------------------------

    def _test_guards_metrics(self, test: ast.AST) -> bool:
        """Whether an ``if`` test proves the metrics path is opt-in."""
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and (
                sub.attr == "enabled" or _RECEIVER_RE.match(sub.attr)
            ):
                return True
            if isinstance(sub, ast.Name) and (
                sub.id in _GUARD_NAMES or _RECEIVER_RE.match(sub.id)
            ):
                return True
        return False

    def _is_guarded(self, ancestors: tuple[ast.AST, ...]) -> bool:
        for node in ancestors:
            if isinstance(node, (ast.If, ast.IfExp)) and (
                self._test_guards_metrics(node.test)
            ):
                return True
        return False

    # -- rule entry point -------------------------------------------------

    def _is_metric_call(self, node: ast.AST, safe: set[str]) -> bool:
        if not isinstance(node, ast.Call):
            return False
        chain = _call_chain(node.func)
        if chain is None or len(chain) < 2:
            return False
        method = chain[-1]
        receiver = chain[:-1]
        if method not in _METRIC_METHODS:
            return False
        if not any(_RECEIVER_RE.match(token) for token in receiver):
            return False
        return not any(
            token in safe for token in receiver if token != "self"
        )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if mod.module not in self.hot_modules:
            return
        safe = self._null_safe_names(mod.tree)
        for node, ancestors in walk_with_ancestors(mod.tree):
            if not self._is_metric_call(node, safe):
                continue
            # `registry.counter("x").inc()` matches twice (inner and
            # outer call); report only the outermost expression.
            if any(self._is_metric_call(outer, safe) for outer in ancestors):
                continue
            if self._is_guarded(ancestors):
                continue
            chain = _call_chain(node.func) or []
            yield self.finding(
                mod,
                node,
                f"metrics call `{'.'.join(chain)}(...)` on the hot path is "
                "neither null-object backed nor guarded by an enabled check",
            )
