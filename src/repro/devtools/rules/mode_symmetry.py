"""ISO003 — every ``ChunkMode`` is handled by encoder *and* decoder.

The container format is only round-trippable if the chunk encoder and
decoder agree on the mode set: a member produced by
``encode_chunk_payload`` (or the fallback path) that
``decode_chunk_payload`` never names is a silent data-loss bug waiting
for its first chunk.  This is a cross-module invariant — the enum
lives in ``core.metadata`` while both codecs live in
``core.pipeline`` — so the rule runs at project scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["ChunkModeSymmetryRule"]

DEFAULT_ENCODER_FUNCTIONS = frozenset({"encode_chunk_payload", "_fallback_streams"})
DEFAULT_DECODER_FUNCTIONS = frozenset({"decode_chunk_payload"})


def _enum_members(cls: ast.ClassDef) -> list[tuple[str, int]]:
    """``(member, line)`` pairs for an enum class body."""
    members: list[tuple[str, int]] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    members.append((target.id, stmt.lineno))
    return members


def _member_refs(fn: ast.AST, enum_name: str) -> set[str]:
    """Enum members referenced as ``<enum_name>.<member>`` inside ``fn``."""
    refs: set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == enum_name
        ):
            refs.add(node.attr)
    return refs


class ChunkModeSymmetryRule(Rule):
    """ISO003: a ``ChunkMode`` member missing from encoder or decoder."""

    rule_id = "ISO003"
    title = "chunk modes must be matched by both encoder and decoder"
    hint = (
        "name the member explicitly in the missing side (an implicit "
        "`else` does not count as handling it)"
    )

    def __init__(
        self,
        enum_name: str = "ChunkMode",
        encoder_functions: Iterable[str] | None = None,
        decoder_functions: Iterable[str] | None = None,
    ):
        self.enum_name = enum_name
        self.encoder_functions = frozenset(
            DEFAULT_ENCODER_FUNCTIONS if encoder_functions is None
            else encoder_functions
        )
        self.decoder_functions = frozenset(
            DEFAULT_DECODER_FUNCTIONS if decoder_functions is None
            else decoder_functions
        )

    def check_project(
        self, mods: Sequence[SourceModule]
    ) -> Iterable[Finding]:
        members: list[tuple[str, int]] = []
        encoders: list[tuple[SourceModule, ast.AST]] = []
        decoders: list[tuple[SourceModule, ast.AST]] = []
        for mod in mods:
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.ClassDef) and node.name == self.enum_name:
                    members.extend(_enum_members(node))
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if node.name in self.encoder_functions:
                        encoders.append((mod, node))
                    elif node.name in self.decoder_functions:
                        decoders.append((mod, node))
        # Only meaningful when the whole triangle is in view — linting a
        # single unrelated file must not flag every member as missing.
        if not members or not encoders or not decoders:
            return
        encoder_refs: set[str] = set()
        for mod, fn in encoders:
            encoder_refs |= _member_refs(fn, self.enum_name)
        decoder_refs: set[str] = set()
        for mod, fn in decoders:
            decoder_refs |= _member_refs(fn, self.enum_name)
        for member, _line in members:
            for side, refs, fns in (
                ("encoder", encoder_refs, encoders),
                ("decoder", decoder_refs, decoders),
            ):
                if member not in refs:
                    anchor_mod, anchor_fn = fns[0]
                    yield self.finding(
                        anchor_mod,
                        anchor_fn,
                        f"`{self.enum_name}.{member}` is never matched on "
                        f"the {side} side "
                        f"(`{getattr(anchor_fn, 'name', side)}`)",
                    )
