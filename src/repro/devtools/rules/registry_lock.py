"""ISO002 — module-level registries mutate only under a lock.

The repo keeps several process-wide registries in module-level
dictionaries and sets (the codec registry, the chaos shadow, the
dataset catalogue, the deprecation-warning dedup set).  They are read
from worker threads, so any mutation reachable after import must hold
the registry's lock.  Populating a registry at module top level is
exempt: imports are serialized by the interpreter's import lock.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.astutil import dotted_name, enclosing_functions, walk_with_ancestors
from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["RegistryLockRule"]

#: Mutating methods on dicts and sets.
_MUTATORS = frozenset(
    {
        "pop",
        "update",
        "clear",
        "setdefault",
        "popitem",
        "add",
        "discard",
        "remove",
    }
)

#: Constructor calls that build a mutable registry container.
_CONTAINER_CALLS = frozenset({"dict", "set", "defaultdict", "OrderedDict"})


def _is_container_value(value: ast.AST) -> bool:
    if isinstance(value, (ast.Dict, ast.Set, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name is not None and name.split(".")[-1] in _CONTAINER_CALLS
    return False


def _module_level_registries(tree: ast.Module) -> set[str]:
    """Names bound to a mutable dict/set at module top level."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _is_container_value(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(stmt, ast.AnnAssign)
            and stmt.value is not None
            and isinstance(stmt.target, ast.Name)
            and _is_container_value(stmt.value)
        ):
            names.add(stmt.target.id)
    return names


def _holds_lock(ancestors: tuple[ast.AST, ...]) -> bool:
    """Whether any enclosing ``with`` acquires something lock-like."""
    for node in ancestors:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                name = dotted_name(expr)
                if name is not None and "lock" in name.lower():
                    return True
    return False


def _mutated_registry(node: ast.AST, registries: set[str]) -> str | None:
    """The registry name ``node`` mutates, or None."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                name = dotted_name(target.value)
                if name in registries:
                    return name
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                name = dotted_name(target.value)
                if name in registries:
                    return name
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            name = dotted_name(node.func.value)
            if name in registries:
                return name
    return None


class RegistryLockRule(Rule):
    """ISO002: module-level registry mutated without holding a lock."""

    rule_id = "ISO002"
    title = "module-level registry mutations must hold the registry lock"
    hint = (
        "wrap the mutation in `with <REGISTRY>_LOCK:` (or add the "
        "function to the rule's allowlist if single-threaded by design)"
    )

    def __init__(self, allowlist: Iterable[str] | None = None):
        #: Function names permitted to mutate registries lock-free.
        self.allowlist = frozenset(allowlist or ())

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        registries = _module_level_registries(mod.tree)
        if not registries:
            return
        for node, ancestors in walk_with_ancestors(mod.tree):
            name = _mutated_registry(node, registries)
            if name is None:
                continue
            funcs = enclosing_functions(ancestors)
            if not funcs:
                continue  # top-level population runs under the import lock
            if any(fn.name in self.allowlist for fn in funcs):
                continue
            if _holds_lock(ancestors):
                continue
            yield self.finding(
                mod,
                node,
                f"module-level registry `{name}` mutated in "
                f"`{funcs[-1].name}` without holding a lock",
            )
