"""ISO011 — executors and shared memory must have a reachable release.

Thread/process pools leave worker threads and child processes behind;
``multiprocessing.shared_memory`` segments outlive the process in
``/dev/shm`` until *someone* calls ``unlink``.  Under millions of
requests, "usually cleaned up" is a leak.  The rule demands that every
creation of a :class:`ThreadPoolExecutor`, :class:`ProcessPoolExecutor`
or :class:`SharedMemory` has a release that stays reachable on
exception paths:

* ``with Executor(...) as x:`` — the context manager is always fine;
* a **local variable** must be released (``shutdown``/``close``/
  ``unlink``, a helper whose name says so, or an
  ``add_done_callback`` whose callback releases it) with at least one
  of those releases inside a ``finally`` or ``except`` block — a
  straight-line ``x.shutdown()`` leaks the pool the moment anything
  between creation and release raises;
* an **instance attribute** (``self._x = Executor(...)``) must have a
  sibling method of the same class that releases it (the class owns
  the lifecycle — e.g. a ``close``/``drain``/``shutdown`` method);
* a **module global** (``global _POOL`` rebinding) must have some
  function in the module that releases it (typically the
  ``atexit``-registered teardown).

``SharedMemory(create=True)`` additionally needs ``unlink`` (or a
release helper), not just ``close``: closing only drops the mapping,
the segment itself stays allocated.

The runtime twin of this rule is the leak tracker
(:mod:`repro.devtools.sanitizer.leaks`), which counts live executors
and segments at teardown.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.astutil import dotted_name, walk_with_ancestors
from repro.devtools.engine import Finding, Rule, SourceModule

__all__ = ["ResourceLifecycleRule"]

#: Constructor leaf names the rule tracks, with the release verbs each
#: resource accepts.
_RESOURCES: dict[str, frozenset[str]] = {
    "ThreadPoolExecutor": frozenset({"shutdown"}),
    "ProcessPoolExecutor": frozenset({"shutdown"}),
    "SharedMemory": frozenset({"close", "unlink"}),
}

#: Helper-function name fragments that count as releasing an argument.
_RELEASE_HINTS = ("release", "close", "shutdown", "unlink", "teardown")


def _resource_kind(node: ast.AST) -> str | None:
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    leaf = name.split(".")[-1]
    return leaf if leaf in _RESOURCES else None


def _creates_segment(node: ast.Call) -> bool:
    """Whether a ``SharedMemory(...)`` call creates (vs attaches)."""
    for kw in node.keywords:
        if kw.arg == "create":
            return not (
                isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            )
    return False


def _release_hint_name(name: str | None) -> bool:
    if name is None:
        return False
    leaf = name.split(".")[-1].lower()
    return any(hint in leaf for hint in _RELEASE_HINTS)


class _ReleaseScan:
    """Release evidence for one tracked name within a region of code."""

    def __init__(self) -> None:
        self.verbs: set[str] = set()  # shutdown/close/unlink seen
        self.helper = False           # passed to a release-named helper
        self.guarded = False          # some release sits in finally/except


def _scan_releases(
    region: ast.AST, target: str, *, attr_root: str | None = None
) -> _ReleaseScan:
    """Find releases of ``target`` (a simple name or ``self.attr``)."""
    scan = _ReleaseScan()
    wanted = f"{attr_root}.{target}" if attr_root else target
    for node, ancestors in walk_with_ancestors(region):
        if not isinstance(node, ast.Call):
            continue
        hit = False
        if isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value)
            if receiver == wanted and node.func.attr in (
                "shutdown", "close", "unlink", "terminate",
            ):
                scan.verbs.add(node.func.attr)
                hit = True
            elif receiver == wanted and node.func.attr == "add_done_callback":
                # The registered callback releases the resource iff it
                # references a release-named call on/with the target.
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call) and sub is not node:
                        if _release_hint_name(dotted_name(sub.func)):
                            scan.helper = True
                            hit = True
        if not hit and _release_hint_name(dotted_name(node.func)):
            for arg in node.args:
                if dotted_name(arg) == wanted:
                    scan.helper = True
                    hit = True
        if hit and any(
            isinstance(anc, (ast.Try,)) for anc in ancestors
        ):
            # Inside a try: count as guarded when within a handler or
            # finalbody (the exception path), not merely the try body.
            for anc in ancestors:
                if isinstance(anc, ast.ExceptHandler):
                    scan.guarded = True
            # finalbody statements have the Try as ancestor but are not
            # inside any handler; detect by position.
            for anc in ancestors:
                if isinstance(anc, ast.Try):
                    for final_stmt in anc.finalbody:
                        if node in ast.walk(final_stmt):
                            scan.guarded = True
        if hit and any(
            isinstance(anc, (ast.With, ast.AsyncWith)) for anc in ancestors
        ):
            scan.guarded = True
        if hit and any(
            isinstance(anc, ast.Lambda) for anc in ancestors
        ):
            # A done-callback lambda fires on completion regardless of
            # which path submitted the work.
            scan.guarded = True
    return scan


def _required_verbs(kind: str, node: ast.Call) -> frozenset[str]:
    if kind == "SharedMemory" and not _creates_segment(node):
        return frozenset({"close"})  # attach-only: closing suffices
    return _RESOURCES[kind]


def _satisfied(scan: _ReleaseScan, required: frozenset[str]) -> bool:
    return scan.helper or required <= scan.verbs


class ResourceLifecycleRule(Rule):
    """ISO011: pools and shared memory need an exception-safe release."""

    rule_id = "ISO011"
    title = "executor/shared-memory lifecycle must be release-complete"
    hint = (
        "use a `with` block, release in a finally/except (or a "
        "*_release helper / done-callback), or give the owning class "
        "a teardown method that shuts the resource down"
    )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        for node, ancestors in walk_with_ancestors(mod.tree):
            kind = _resource_kind(node)
            if kind is None:
                continue
            assert isinstance(node, ast.Call)
            finding = self._check_creation(mod, node, kind, ancestors)
            if finding is not None:
                yield finding

    # -- creation-site classification -------------------------------------

    def _check_creation(
        self,
        mod: SourceModule,
        node: ast.Call,
        kind: str,
        ancestors: tuple[ast.AST, ...],
    ) -> Finding | None:
        required = _required_verbs(kind, node)
        parent = ancestors[-1] if ancestors else None

        # `with Executor(...) as x:` — structurally safe.
        if isinstance(parent, ast.withitem):
            return None

        # Assignment?  Find the binding target.
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            func = self._enclosing_function(ancestors)
            if isinstance(target, ast.Name) and func is not None:
                if self._is_global(func, target.id):
                    return self._check_global(
                        mod, node, kind, target.id, required
                    )
                return self._check_local(
                    mod, node, kind, func, target.id, required
                )
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls = self._enclosing_class(ancestors)
                if cls is not None:
                    return self._check_attribute(
                        mod, node, kind, cls, target.attr, required
                    )
        return self.finding(
            mod,
            node,
            f"`{kind}` created without a trackable owner "
            "(bind it to a name, attribute or `with` block so a "
            "release is possible)",
        )

    @staticmethod
    def _enclosing_function(
        ancestors: tuple[ast.AST, ...],
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for anc in reversed(ancestors):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    @staticmethod
    def _enclosing_class(
        ancestors: tuple[ast.AST, ...],
    ) -> ast.ClassDef | None:
        for anc in reversed(ancestors):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    @staticmethod
    def _is_global(
        func: ast.FunctionDef | ast.AsyncFunctionDef, name: str
    ) -> bool:
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Global) and name in stmt.names:
                return True
        return False

    # -- ownership checks --------------------------------------------------

    def _check_local(
        self,
        mod: SourceModule,
        node: ast.Call,
        kind: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        name: str,
        required: frozenset[str],
    ) -> Finding | None:
        scan = _scan_releases(func, name)
        if _satisfied(scan, required) and scan.guarded:
            return None
        if _satisfied(scan, required):
            return self.finding(
                mod,
                node,
                f"`{kind}` `{name}` is released only on the happy "
                "path — an exception between creation and release "
                "leaks it (move the release into a finally/except)",
            )
        missing = ", ".join(sorted(required - scan.verbs))
        return self.finding(
            mod,
            node,
            f"`{kind}` `{name}` has no reachable release "
            f"(needs {missing or 'a release'}) in `{func.name}`",
        )

    def _check_attribute(
        self,
        mod: SourceModule,
        node: ast.Call,
        kind: str,
        cls: ast.ClassDef,
        attr: str,
        required: frozenset[str],
    ) -> Finding | None:
        scan = _scan_releases(cls, attr, attr_root="self")
        if _satisfied(scan, required):
            return None
        missing = ", ".join(sorted(required - scan.verbs))
        return self.finding(
            mod,
            node,
            f"`{kind}` `self.{attr}` has no releasing method on "
            f"`{cls.name}` (needs {missing or 'a release'}; give the "
            "class a teardown that calls it)",
        )

    def _check_global(
        self,
        mod: SourceModule,
        node: ast.Call,
        kind: str,
        name: str,
        required: frozenset[str],
    ) -> Finding | None:
        scan = _scan_releases(mod.tree, name)
        if _satisfied(scan, required):
            return None
        missing = ", ".join(sorted(required - scan.verbs))
        return self.finding(
            mod,
            node,
            f"module-global `{kind}` `{name}` has no releasing "
            f"function in this module (needs {missing or 'a release'}; "
            "add an atexit-registered teardown)",
        )
