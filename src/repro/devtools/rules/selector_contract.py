"""ISO008 — the selector strategy registry and failure funnel.

The pluggable ``selector=`` API (see ``docs/selector.md``) rests on two
invariants this rule enforces statically:

* the strategy registry — any name ending in ``_STRATEGIES`` — mutates
  only inside a ``with <LOCK>:`` block, *including* at module top
  level: registrations must go through
  :func:`repro.core.selector.register_selector_strategy`, which takes
  the lock, rather than poking the dict (strategies register lazily at
  first resolve, so the import lock is no shield here);
* selector modules (``repro.core.selector*``) funnel failures through
  :class:`~repro.core.exceptions.SelectorError`: an ``except`` handler
  that catches ``SelectorError`` or a broad ``Exception`` may re-raise
  (bare ``raise``) or raise ``SelectorError``, but never translate the
  failure into a different exception type — every caller of a strategy
  sees selection failures as ``SelectorError``, whatever the strategy.

Degrading without raising (the predict-path containment that falls back
to the timing probe) is fine by this rule; ISO005 separately requires
such handlers to account for the swallowed exception.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.astutil import dotted_name, walk_with_ancestors
from repro.devtools.engine import Finding, Rule, SourceModule
from repro.devtools.rules.exception_rules import _module_in_scope

__all__ = ["SelectorContractRule"]

DEFAULT_SELECTOR_PREFIXES = ("repro.core.selector",)

#: Registry names covered by the under-lock requirement.
_REGISTRY_SUFFIX = "_STRATEGIES"

#: Handlers catching these types are held to the funnel contract.
_FUNNEL_TYPES = frozenset({"SelectorError", "Exception", "BaseException"})

#: Mutating methods on the registry dict.
_MUTATORS = frozenset(
    {"pop", "update", "clear", "setdefault", "popitem"}
)


def _holds_lock(ancestors: tuple[ast.AST, ...]) -> bool:
    """Whether any enclosing ``with`` acquires something lock-like."""
    for node in ancestors:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                name = dotted_name(expr)
                if name is not None and "lock" in name.lower():
                    return True
    return False


def _mutated_registry(node: ast.AST) -> str | None:
    """The strategy-registry name ``node`` mutates, or None."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript):
                name = dotted_name(target.value)
                if name is not None and name.endswith(_REGISTRY_SUFFIX):
                    return name
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                name = dotted_name(target.value)
                if name is not None and name.endswith(_REGISTRY_SUFFIX):
                    return name
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _MUTATORS:
            name = dotted_name(node.func.value)
            if name is not None and name.endswith(_REGISTRY_SUFFIX):
                return name
    return None


def _catches_funnel_type(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in nodes:
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in _FUNNEL_TYPES:
            return True
    return False


def _escaping_raises(handler: ast.ExceptHandler) -> Iterable[ast.Raise]:
    """``raise`` statements in ``handler`` that leave the funnel.

    A bare re-raise and ``raise SelectorError(...)`` stay inside the
    funnel; raising any other constructed type translates the failure
    away from it.
    """
    for node in ast.walk(handler):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc)
        if name is None or name.split(".")[-1] != "SelectorError":
            yield node


class SelectorContractRule(Rule):
    """ISO008: locked strategy registry, SelectorError failure funnel."""

    rule_id = "ISO008"
    title = "selector strategies register under lock and fail as SelectorError"
    hint = (
        "register via register_selector_strategy (it holds the lock); "
        "inside selector except-handlers raise SelectorError or re-raise"
    )

    def __init__(self, module_prefixes: Iterable[str] | None = None):
        self.module_prefixes = tuple(
            DEFAULT_SELECTOR_PREFIXES if module_prefixes is None
            else module_prefixes
        )

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        # The registry check applies everywhere: a module elsewhere in
        # the tree reaching into `selector._STRATEGIES` is exactly the
        # bypass this rule exists to catch.
        for node, ancestors in walk_with_ancestors(mod.tree):
            name = _mutated_registry(node)
            if name is not None and not _holds_lock(ancestors):
                yield self.finding(
                    mod,
                    node,
                    f"strategy registry `{name}` mutated without holding "
                    "a lock; use register_selector_strategy",
                )
        if not _module_in_scope(mod.module, self.module_prefixes):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _catches_funnel_type(node):
                continue
            for raise_node in _escaping_raises(node):
                yield self.finding(
                    mod,
                    raise_node,
                    "selector except-handler raises a type other than "
                    "SelectorError, escaping the failure funnel",
                )
