"""ISO007 — the service maps exceptions through the status funnel.

:mod:`repro.service.errors` is the single place where exceptions
become HTTP status codes.  This rule keeps it that way:

* an ``except`` handler in service code that catches a repo exception
  (or a broad ``Exception``/``BaseException``) must visibly resolve
  it — re-raise, call the funnel (``status_for_exception`` /
  ``error_body``), or thread the bound exception onward;
* no service module outside the funnel may hard-code a ``500`` status
  into a response call — 500 exists only as the funnel's mapped
  fallback for non-Isobar bugs, never as a handler's shortcut.

The repo exception names are enumerated from the live
:class:`~repro.core.exceptions.IsobarError` hierarchy at rule
construction, so new service error types are covered the moment they
are defined.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.core.exceptions import IsobarError
from repro.devtools.astutil import dotted_name
from repro.devtools.engine import Finding, Rule, SourceModule
from repro.devtools.rules.exception_rules import _module_in_scope

__all__ = ["ServiceStatusMapRule"]

DEFAULT_SERVICE_PREFIXES = ("repro.service.",)

#: The funnel module itself is exempt — it defines the mapping.
DEFAULT_EXEMPT_MODULES = frozenset({"repro.service.errors"})

#: Catching these always triggers the check.
_BROAD_TYPES = frozenset({"Exception", "BaseException"})

#: Calls that count as resolving an exception through the funnel.
_FUNNEL_CALLS = frozenset(
    {"status_for_exception", "error_body", "retry_after_for_exception"}
)

#: Response-building calls whose status argument is checked.
_RESPONSE_CALLS = frozenset(
    {"write_response", "write_chunked_preamble", "error_body"}
)


def _repo_exception_names() -> frozenset[str]:
    """Every name in the live ``IsobarError`` hierarchy."""
    # Importing the service error types registers their subclasses.
    import repro.service.errors  # noqa: F401  (side effect only)

    names = {IsobarError.__name__}
    stack = [IsobarError]
    while stack:
        for sub in stack.pop().__subclasses__():
            if sub.__name__ not in names:
                names.add(sub.__name__)
                stack.append(sub)
    return frozenset(names)


def _caught_names(handler: ast.ExceptHandler) -> tuple[str, ...]:
    """Terminal names of the exception types a handler catches."""
    if handler.type is None:
        return ("BaseException",)
    nodes = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    names = []
    for node in nodes:
        name = dotted_name(node)
        if name is not None:
            names.append(name.split(".")[-1])
    return tuple(names)


def _handler_resolves(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises, funnels, or threads the error."""
    bound = handler.name
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] in _FUNNEL_CALLS:
                return True
        if (
            bound is not None
            and isinstance(node, ast.Name)
            and node.id == bound
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False


def _status_is_500(call: ast.Call) -> bool:
    """Whether a response call hard-codes status 500."""
    candidates = list(call.args[:2])
    candidates.extend(
        kw.value for kw in call.keywords if kw.arg == "status"
    )
    return any(
        isinstance(arg, ast.Constant) and arg.value == 500
        for arg in candidates
    )


class ServiceStatusMapRule(Rule):
    """ISO007: service code resolves errors via the status funnel."""

    rule_id = "ISO007"
    title = "service handlers map exceptions through the status funnel"
    hint = (
        "re-raise, or resolve via repro.service.errors "
        "(status_for_exception/error_body); never hard-code a 500"
    )

    def __init__(
        self,
        module_prefixes: Iterable[str] | None = None,
        *,
        exempt_modules: Iterable[str] | None = None,
    ):
        self.module_prefixes = tuple(
            DEFAULT_SERVICE_PREFIXES if module_prefixes is None
            else module_prefixes
        )
        self.exempt_modules = frozenset(
            DEFAULT_EXEMPT_MODULES if exempt_modules is None
            else exempt_modules
        )
        self._repo_names = _repo_exception_names()

    def check_module(self, mod: SourceModule) -> Iterable[Finding]:
        if not _module_in_scope(mod.module, self.module_prefixes):
            return
        if mod.module in self.exempt_modules:
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ExceptHandler):
                caught = _caught_names(node)
                triggering = [
                    name for name in caught
                    if name in _BROAD_TYPES or name in self._repo_names
                ]
                if not triggering or _handler_resolves(node):
                    continue
                yield self.finding(
                    mod,
                    node,
                    f"except {', '.join(triggering)} neither re-raises "
                    "nor resolves the error through the status funnel",
                )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                if name.split(".")[-1] not in _RESPONSE_CALLS:
                    continue
                if _status_is_500(node):
                    yield self.finding(
                        mod,
                        node,
                        "hard-codes status 500 into a response; only the "
                        "funnel's fallback may produce a 500",
                    )
