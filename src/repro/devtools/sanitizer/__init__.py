"""tsan-lite: runtime concurrency instrumentation for the repo.

The static rules (ISO009–ISO011) reason about the *source*; this
package watches the *process*.  Three probes, each cheap enough to run
under the full tier-1 suite:

* :mod:`~repro.devtools.sanitizer.lockgraph` — ``instrumented_lock()``
  wrappers record per-thread acquisition stacks into a process-wide
  lock-order graph; a cycle in that graph is a latent deadlock even if
  this run never interleaved badly enough to hang.
* :mod:`~repro.devtools.sanitizer.loopwatch` — an event-loop stall
  probe: a heartbeat callback plus a watchdog thread that flags any
  gap between heartbeats longer than a threshold, attributed to the
  handler that was active.
* :mod:`~repro.devtools.sanitizer.leaks` — a resource leak tracker
  that counts executors and shared-memory segments still alive at
  teardown.

:mod:`~repro.devtools.sanitizer.harness` ties them together behind
``isobar sanitize`` and the ``sanitizer`` pytest fixture.
"""

from __future__ import annotations

from repro.devtools.sanitizer.lockgraph import (
    InstrumentedLock,
    LockCycle,
    LockOrderGraph,
    global_lock_graph,
    instrumented_lock,
)
from repro.devtools.sanitizer.loopwatch import LoopStallProbe, StallEvent
from repro.devtools.sanitizer.leaks import LiveResource, ResourceLeakTracker
from repro.devtools.sanitizer.harness import SanitizeReport, run_smoke

__all__ = [
    "InstrumentedLock",
    "LiveResource",
    "LockCycle",
    "LockOrderGraph",
    "LoopStallProbe",
    "ResourceLeakTracker",
    "SanitizeReport",
    "StallEvent",
    "global_lock_graph",
    "instrumented_lock",
    "run_smoke",
]
