"""The ``isobar sanitize`` harness: run real code under the probes.

Two modes share one report shape:

* **smoke** (``isobar sanitize --smoke``) — a fixed set of scenarios
  that exercise the concurrency-heavy subsystems directly: the
  pipelined parallel compressor, the process-pool shared-memory path,
  and a live service with the event-loop stall probe attached, plus a
  deterministic lock-discipline scenario on instrumented locks.
  ``--seed-inversion`` adds a scenario that acquires two locks in
  opposite orders from two threads — the report must then contain the
  cycle, which is how the harness proves it can see one.
* **full** (``isobar sanitize``) — runs the tier-1 pytest suite in a
  subprocess with ``ISOBAR_SANITIZE=1``; the suite's ``conftest``
  calls :func:`install_suite_instrumentation` at session start, which
  wraps the repo's module-global locks in
  :class:`~repro.devtools.sanitizer.lockgraph.InstrumentedLock` and
  installs the leak tracker, then writes the probe report at session
  end for the harness to merge.

The report is JSON (``--json``); exit status is 0 iff no lock cycle,
no leak, and no stall was observed (and, in full mode, the suite
passed).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
from dataclasses import dataclass, field

from repro.core.exceptions import SanitizerError
from repro.devtools.sanitizer.leaks import ResourceLeakTracker
from repro.devtools.sanitizer.lockgraph import (
    InstrumentedLock,
    LockOrderGraph,
    global_lock_graph,
    instrumented_lock,
    reset_global_lock_graph,
)

__all__ = [
    "SanitizeReport",
    "install_suite_instrumentation",
    "main",
    "run_smoke",
]

#: Module-global locks wrapped during an instrumented suite run.  Each
#: entry is ``(module, attribute)``; the wrapper keeps the original
#: lock object, so waiting threads and held state are unaffected.
SUITE_LOCKS: tuple[tuple[str, str], ...] = (
    ("repro.codecs.base", "_REGISTRY_LOCK"),
    ("repro.codecs.procpool", "_POOL_LOCK"),
    ("repro.core.selector", "_STRATEGY_LOCK"),
    ("repro.core.pipeline", "_DEPRECATION_LOCK"),
)


@dataclass
class SanitizeReport:
    """Everything one sanitize run observed."""

    mode: str
    scenarios: list[str] = field(default_factory=list)
    lock_cycles: list[dict] = field(default_factory=list)
    loop_stalls: list[dict] = field(default_factory=list)
    leaks: list[dict] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    tests: dict | None = None

    @property
    def ok(self) -> bool:
        if self.lock_cycles or self.leaks or self.loop_stalls:
            return False
        if self.errors:
            return False
        if self.tests is not None and self.tests.get("returncode", 1) != 0:
            return False
        return True

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "mode": self.mode,
            "ok": self.ok,
            "scenarios": list(self.scenarios),
            "lock_cycles": list(self.lock_cycles),
            "loop_stalls": list(self.loop_stalls),
            "leaks": list(self.leaks),
            "errors": list(self.errors),
        }
        if self.tests is not None:
            payload["tests"] = dict(self.tests)
        return payload

    def render_text(self) -> str:
        lines = [f"sanitize ({self.mode} mode)"]
        if self.scenarios:
            lines.append(f"  scenarios : {', '.join(self.scenarios)}")
        if self.tests is not None:
            lines.append(
                f"  tests     : exit {self.tests.get('returncode')}"
            )
        lines.append(f"  lock cycles : {len(self.lock_cycles)}")
        for cycle in self.lock_cycles:
            arrows = " -> ".join(cycle["path"] + [cycle["path"][0]])
            lines.append(f"    DEADLOCK ORDER {arrows}")
            for witness in cycle["witnesses"]:
                lines.append(
                    f"      held {witness['held']} at "
                    f"{witness['held_at']}, acquired "
                    f"{witness['acquired']} at {witness['acquired_at']} "
                    f"[{witness['thread']}]"
                )
        lines.append(f"  loop stalls : {len(self.loop_stalls)}")
        for stall in self.loop_stalls:
            lines.append(
                f"    {stall['handler']}: loop held for "
                f"{stall['stalled_seconds']}s"
            )
        lines.append(f"  leaks       : {len(self.leaks)}")
        for leak in self.leaks:
            lines.append(
                f"    {leak['kind']} from {leak['created_at']} awaiting "
                f"{', '.join(leak['pending_release'])}"
            )
        for error in self.errors:
            lines.append(f"  error       : {error}")
        lines.append("  verdict     : " + ("CLEAN" if self.ok else "DIRTY"))
        return "\n".join(lines)


# -- smoke scenarios --------------------------------------------------------


def _scenario_lock_discipline(graph: LockOrderGraph) -> None:
    """Two locks taken in one consistent order from two threads."""
    alpha = instrumented_lock("smoke.alpha", graph=graph)
    beta = instrumented_lock("smoke.beta", graph=graph)

    def _ordered() -> None:
        with alpha:
            with beta:
                pass

    worker = threading.Thread(target=_ordered, name="sanitize-ordered")
    worker.start()
    worker.join()
    _ordered()  # main thread agrees on the order


def _scenario_seeded_inversion(graph: LockOrderGraph) -> None:
    """Acquire two locks in opposite orders — the planted deadlock.

    The two threads run *sequentially* (each joined before the next
    starts), so the scenario can never actually deadlock; the graph
    still records ``alpha -> beta`` and ``beta -> alpha``, which is
    the whole point: lock-order analysis flags the latent cycle
    without needing the fatal interleaving.
    """
    alpha = instrumented_lock("seeded.alpha", graph=graph)
    beta = instrumented_lock("seeded.beta", graph=graph)

    def _forward() -> None:
        with alpha:
            with beta:
                pass

    def _backward() -> None:
        with beta:
            with alpha:
                pass

    for target, name in ((_forward, "sanitize-fwd"), (_backward, "sanitize-bwd")):
        worker = threading.Thread(target=target, name=name)
        worker.start()
        worker.join()


def _scenario_parallel_roundtrip(_graph: LockOrderGraph) -> None:
    """Pipelined compressor under the leak tracker."""
    import numpy as np

    from repro.core.parallel import ParallelIsobarCompressor
    from repro.core.preferences import IsobarConfig

    values = np.linspace(0.0, 1.0, 20_000, dtype=np.float64)
    compressor = ParallelIsobarCompressor(
        IsobarConfig(chunk_elements=4_096), 2
    )
    blob = compressor.compress(values)
    restored = compressor.decompress(blob)
    if not np.array_equal(restored, values):
        raise SanitizerError("parallel roundtrip mismatch")


def _scenario_procpool_shm(_graph: LockOrderGraph) -> None:
    """Shared-memory transfer to a codec child, then full teardown."""
    from repro.codecs import procpool
    from repro.codecs.base import get_codec

    codec = procpool.worker_codec_for(get_codec("rle"), 2)
    payload = bytes(64) * ((procpool.SHM_THRESHOLD_BYTES // 64) + 16)
    blob = codec.compress(payload)
    if codec.decompress(blob) != payload:
        raise SanitizerError("procpool roundtrip mismatch")
    procpool.shutdown_codec_pool()
    live = procpool.live_block_count()
    if live:
        raise SanitizerError(f"{live} shared-memory block(s) left tracked")


def _scenario_service_roundtrip(
    _graph: LockOrderGraph, *, stall_threshold_seconds: float
) -> list[dict]:
    """A live service answering requests with the stall probe attached."""
    from repro.service.app import ServiceConfig, ServiceThread
    from repro.service.client import ServiceClient

    handle = ServiceThread(
        ServiceConfig(
            stall_probe_threshold_seconds=stall_threshold_seconds
        )
    )
    host, port = handle.start()
    try:
        client = ServiceClient(host, port, max_retries=0)
        body = bytes(range(256)) * 32
        response = client.request(
            "POST", "/v1/compress", body,
            headers={"X-Isobar-Dtype": "float64"},
        )
        if response.status != 200:
            raise SanitizerError(
                f"/v1/compress answered {response.status}"
            )
        restored = client.request(
            "POST", "/v1/decompress", response.body
        )
        if restored.status != 200 or restored.body != body:
            raise SanitizerError("service roundtrip mismatch")
        if client.request("GET", "/healthz").status != 200:
            raise SanitizerError("/healthz not OK")
    finally:
        handle.stop()
    probe = handle.service.stall_probe
    return [event.to_dict() for event in probe.events()] if probe else []


def run_smoke(
    *,
    seed_inversion: bool = False,
    stall_threshold_seconds: float = 1.0,
    metrics: object | None = None,
) -> SanitizeReport:
    """Run the smoke scenarios under a fresh graph and leak tracker."""
    report = SanitizeReport(mode="smoke")
    graph = LockOrderGraph()
    tracker = ResourceLeakTracker()
    scenarios = [
        ("lock_discipline", _scenario_lock_discipline),
        ("parallel_roundtrip", _scenario_parallel_roundtrip),
        ("procpool_shm", _scenario_procpool_shm),
    ]
    if seed_inversion:
        scenarios.append(("seeded_inversion", _scenario_seeded_inversion))
    tracker.install()
    try:
        for name, scenario in scenarios:
            report.scenarios.append(name)
            try:
                scenario(graph)
            except Exception as exc:
                report.errors.append(f"{name}: {exc!r}")
        report.scenarios.append("service_roundtrip")
        try:
            report.loop_stalls.extend(
                _scenario_service_roundtrip(
                    graph, stall_threshold_seconds=stall_threshold_seconds
                )
            )
        except Exception as exc:
            report.errors.append(f"service_roundtrip: {exc!r}")
    finally:
        tracker.uninstall()
    report.lock_cycles = [c.to_dict() for c in graph.find_cycles()]
    report.leaks = [r.to_dict() for r in tracker.live()]
    _count_cycles(metrics, len(report.lock_cycles))
    return report


def _count_cycles(metrics: object | None, n: int) -> None:
    if metrics is None or n == 0:
        return
    metrics.counter(
        "isobar_sanitizer_lock_cycles_total",
        "lock-order cycles detected by the runtime sanitizer",
    ).inc(n)


# -- full-suite instrumentation ---------------------------------------------


class _SuiteInstrumentation:
    """Probe state for one instrumented pytest session."""

    def __init__(self) -> None:
        self.tracker = ResourceLeakTracker()
        self._originals: list[tuple[object, str, object]] = []

    def install(self) -> "_SuiteInstrumentation":
        import importlib

        reset_global_lock_graph()
        self.tracker.install()
        graph = global_lock_graph()
        for module_name, attr in SUITE_LOCKS:
            module = importlib.import_module(module_name)
            original = getattr(module, attr)
            self._originals.append((module, attr, original))
            setattr(
                module,
                attr,
                InstrumentedLock(
                    f"{module_name}.{attr}", lock=original, graph=graph
                ),
            )
        return self

    def finish(self, report_path: str | None) -> None:
        """Collect probe results, restore patches, write the report."""
        from repro.codecs.procpool import shutdown_codec_pool

        shutdown_codec_pool()  # the pool is atexit-owned, not a leak
        for module, attr, original in reversed(self._originals):
            setattr(module, attr, original)
        self._originals.clear()
        self.tracker.uninstall()
        payload = {
            "lock_cycles": [
                c.to_dict() for c in global_lock_graph().find_cycles()
            ],
            "leaks": [r.to_dict() for r in self.tracker.live()],
        }
        if report_path:
            with open(report_path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)


def install_suite_instrumentation() -> _SuiteInstrumentation:
    """Entry point for ``conftest.py`` under ``ISOBAR_SANITIZE=1``."""
    return _SuiteInstrumentation().install()


def run_tests(pytest_args: list[str] | None = None) -> SanitizeReport:
    """Run the tier-1 suite in a subprocess under instrumentation."""
    report = SanitizeReport(mode="full")
    if not os.path.isdir("tests"):
        report.errors.append(
            "full mode needs the repo checkout (no tests/ directory here); "
            "use --smoke outside the repo"
        )
        return report
    with tempfile.TemporaryDirectory(prefix="isobar-sanitize-") as tmp:
        probe_path = os.path.join(tmp, "probes.json")
        env = dict(os.environ)
        env["ISOBAR_SANITIZE"] = "1"
        env["ISOBAR_SANITIZE_REPORT"] = probe_path
        command = [sys.executable, "-m", "pytest", "-x", "-q"]
        command.extend(pytest_args or [])
        proc = subprocess.run(command, env=env)
        report.tests = {"command": command, "returncode": proc.returncode}
        try:
            with open(probe_path, encoding="utf-8") as fh:
                probes = json.load(fh)
            report.lock_cycles = probes.get("lock_cycles", [])
            report.leaks = probes.get("leaks", [])
        except FileNotFoundError:
            report.errors.append(
                "instrumented run produced no probe report "
                "(is tests/conftest.py wired for ISOBAR_SANITIZE?)"
            )
    return report


# -- CLI entry --------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="isobar sanitize",
        description="run the tsan-lite concurrency sanitizer",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the fixed smoke scenarios instead of the full suite",
    )
    parser.add_argument(
        "--seed-inversion", action="store_true",
        help="plant a two-thread lock inversion (the report must then "
             "flag the cycle; used to self-test the sanitizer)",
    )
    parser.add_argument(
        "--stall-threshold-ms", type=float, default=1000.0,
        help="loop-stall threshold for the service scenario "
             "(default: 1000)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="extra arguments for pytest in full mode",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_smoke(
            seed_inversion=args.seed_inversion,
            stall_threshold_seconds=args.stall_threshold_ms / 1000.0,
        )
    else:
        report = run_tests(args.pytest_args)
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
