"""Resource leak tracker — the dynamic twin of lint rule ISO011.

While installed, the tracker patches the constructors and release
methods of the three resource types the static rule watches —
``ThreadPoolExecutor``, ``ProcessPoolExecutor`` and
``multiprocessing.shared_memory.SharedMemory`` — and keeps a ledger of
every instance created in this process with the ``file:line`` that
created it.  A resource leaves the ledger when its release verbs have
all been called (``shutdown`` for pools; ``close`` for attached
segments, ``close`` *and* ``unlink`` for created ones, matching the
static rule's required-verbs table).  Whatever is still on the ledger
at teardown is a leak, and the ledger says who allocated it.

Patching is process-local and reversible; spawned pool children
re-import the stdlib fresh and are never instrumented.
"""

from __future__ import annotations

import sys
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.exceptions import SanitizerError

try:  # pragma: no cover - absent only on exotic builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

__all__ = ["LiveResource", "ResourceLeakTracker"]


def _creation_site() -> str:
    """``file:line`` of the nearest frame outside this module/stdlib."""
    frame = sys._getframe(1)
    while frame is not None:
        name = frame.f_globals.get("__name__", "")
        if name != __name__ and not name.startswith("concurrent.futures"):
            if not name.startswith("multiprocessing"):
                return f"{frame.f_code.co_filename}:{frame.f_lineno}"
        frame = frame.f_back
    return "<unknown>"


@dataclass
class LiveResource:
    """One tracked allocation awaiting its release verbs."""

    kind: str
    site: str
    pending: set[str]

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "created_at": self.site,
            "pending_release": sorted(self.pending),
        }


class ResourceLeakTracker:
    """Ledger of live executors and shared-memory segments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: dict[int, LiveResource] = {}
        self._originals: list[tuple[type, str, object]] = []
        self._installed = False

    # -- ledger ------------------------------------------------------------

    def _register(self, obj: object, kind: str, pending: set[str]) -> None:
        with self._lock:
            self._live[id(obj)] = LiveResource(
                kind=kind, site=_creation_site(), pending=pending
            )

    def _released(self, obj: object, verb: str) -> None:
        with self._lock:
            entry = self._live.get(id(obj))
            if entry is None:
                return
            entry.pending.discard(verb)
            if not entry.pending:
                del self._live[id(obj)]

    def live(self) -> tuple[LiveResource, ...]:
        """Resources created under tracking and not fully released."""
        with self._lock:
            return tuple(self._live.values())

    def assert_clean(self) -> None:
        leaks = self.live()
        if leaks:
            detail = "; ".join(
                f"{r.kind} from {r.site} (awaiting "
                f"{', '.join(sorted(r.pending))})"
                for r in leaks
            )
            raise SanitizerError(f"{len(leaks)} leaked resource(s): {detail}")

    def clear(self) -> None:
        with self._lock:
            self._live.clear()

    # -- patching ----------------------------------------------------------

    def _patch(self, cls: type, attr: str, wrapper: object) -> None:
        self._originals.append((cls, attr, getattr(cls, attr)))
        setattr(cls, attr, wrapper)

    def _wrap_ctor(self, cls: type, kind: str, pending: frozenset[str]):
        original = cls.__init__
        tracker = self

        def __init__(obj, *args, **kwargs):  # noqa: N807
            original(obj, *args, **kwargs)
            tracker._register(obj, kind, set(pending))

        return __init__

    def _wrap_release(self, cls: type, attr: str):
        original = getattr(cls, attr)
        tracker = self

        def _release(obj, *args, **kwargs):
            try:
                return original(obj, *args, **kwargs)
            finally:
                tracker._released(obj, attr)

        return _release

    def install(self) -> "ResourceLeakTracker":
        """Start tracking; idempotent.  Pair with :meth:`uninstall`."""
        if self._installed:
            return self
        self._installed = True
        for cls in (ThreadPoolExecutor, ProcessPoolExecutor):
            self._patch(
                cls,
                "__init__",
                self._wrap_ctor(cls, cls.__name__, frozenset({"shutdown"})),
            )
            self._patch(cls, "shutdown", self._wrap_release(cls, "shutdown"))
        if _shared_memory is not None:
            shm = _shared_memory.SharedMemory
            original = shm.__init__
            tracker = self

            def _shm_init(obj, name=None, create=False, *args, **kwargs):
                original(obj, name, create, *args, **kwargs)
                # Creators own the segment: close drops the mapping but
                # only unlink frees it.  Attachers just need close.
                pending = {"close", "unlink"} if create else {"close"}
                tracker._register(obj, "SharedMemory", pending)

            self._patch(shm, "__init__", _shm_init)
            self._patch(shm, "close", self._wrap_release(shm, "close"))
            self._patch(shm, "unlink", self._wrap_release(shm, "unlink"))
        return self

    def uninstall(self) -> None:
        """Restore the patched classes; idempotent."""
        if not self._installed:
            return
        for cls, attr, original in reversed(self._originals):
            setattr(cls, attr, original)
        self._originals.clear()
        self._installed = False

    def __enter__(self) -> "ResourceLeakTracker":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()
